bench/exp_accuracy.ml: Afl Brute_force Config Exp_common Hashtbl Kondo_baselines Kondo_core Kondo_workload List Metrics Pipeline Program Simple_convex Suite
