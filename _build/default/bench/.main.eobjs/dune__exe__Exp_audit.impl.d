bench/exp_audit.ml: Array Datafile Exp_common Filename Float Kondo_audit Kondo_dataarray Kondo_h5 Kondo_workload List Program Stencils Sys Tracer
