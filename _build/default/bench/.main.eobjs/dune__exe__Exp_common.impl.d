bench/exp_common.ml: Config Kondo_core Kondo_workload List Metrics Pipeline Printf Program Schedule Suite Unix
