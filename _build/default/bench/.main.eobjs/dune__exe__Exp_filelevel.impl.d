bench/exp_filelevel.ml: Config Datafile Exp_common Filename Index_set Kondo_core Kondo_dataarray Kondo_workload List Pipeline Program Shape Stencils Sys
