bench/exp_idioms.ml: Brute_force Exp_common Index_set Kondo_baselines Kondo_dataarray Kondo_workload List Program Shape Suite
