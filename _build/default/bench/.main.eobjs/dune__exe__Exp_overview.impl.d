bench/exp_overview.ml: Array Carver Config Exp_common Filename Index_set Kondo_core Kondo_dataarray Kondo_workload List Printf Program Render Shape Stencils String Suite Svg Sys Unix
