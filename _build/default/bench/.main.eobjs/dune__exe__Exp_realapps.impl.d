bench/exp_realapps.ml: Brute_force Config Exp_common Kondo_baselines Kondo_core Kondo_dataarray Kondo_workload List Metrics Pipeline Printf Program Shape Suite
