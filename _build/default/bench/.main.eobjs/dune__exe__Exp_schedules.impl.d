bench/exp_schedules.ml: Array Buffer Carver Config Exp_common Kondo_core Kondo_dataarray Kondo_workload List Printf Program Schedule Stencils
