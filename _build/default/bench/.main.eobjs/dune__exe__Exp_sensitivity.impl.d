bench/exp_sensitivity.ml: Carver Config Exp_common Kondo_baselines Kondo_core Kondo_dataarray Kondo_interval Kondo_workload List Metrics Pipeline Printf Program Schedule Stencils
