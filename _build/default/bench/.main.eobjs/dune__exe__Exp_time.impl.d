bench/exp_time.ml: Afl Exp_common Float Index_set Kondo_baselines Kondo_core Kondo_dataarray Kondo_workload List Metrics Pipeline Program Schedule Suite
