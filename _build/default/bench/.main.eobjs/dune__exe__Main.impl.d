bench/main.ml: Array Exp_accuracy Exp_audit Exp_filelevel Exp_idioms Exp_overview Exp_realapps Exp_schedules Exp_sensitivity Exp_time List Microbench Printf Sys Unix
