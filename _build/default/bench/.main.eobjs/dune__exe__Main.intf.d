bench/main.mli:
