(* Figure 7 (recall at a fixed budget), Figure 8 (precision per program),
   Figure 9 (identified bloat), and the §V-D1 missed-valuation rates. *)

open Kondo_workload
open Kondo_baselines
open Kondo_core
open Exp_common

(* Per-program evaluation budget: what Kondo needs to converge (§V-C). *)
let budgets = Hashtbl.create 16

let budget_for p =
  match Hashtbl.find_opt budgets p.Program.name with
  | Some b -> b
  | None ->
    let b = kondo_reference_budget p in
    Hashtbl.add budgets p.Program.name b;
    b

let bf_at_budget p budget = (Brute_force.run ~max_evals:budget p).Brute_force.indices

let afl_avg ?(seeds = 2) p budget =
  mean
    (List.init seeds (fun s ->
         recall_of p (Afl.run ~seed:(s + 1) ~max_execs:budget p).Afl.indices))

let afl_precision_avg ?(seeds = 2) p budget =
  mean
    (List.init seeds (fun s ->
         precision_of p (Afl.run ~seed:(s + 1) ~max_execs:budget p).Afl.indices))

let fig7 () =
  header "Figure 7" "Average recall for a fixed budget: Kondo vs BF vs AFL (per micro-benchmark family)";
  row "%-8s %10s %18s %10s %10s\n" "family" "budget" "Kondo (mean±std)" "BF" "AFL";
  let all = Suite.all11 () in
  let acc = ref [] in
  List.iter
    (fun (family, programs) ->
      let k_recalls = ref [] and bf_recalls = ref [] and afl_recalls = ref [] in
      let budget_sum = ref 0 in
      List.iter
        (fun p ->
          let budget = budget_for p in
          budget_sum := !budget_sum + budget;
          let (kr, _), _, _ = kondo_avg ~seeds:10 ~budget p in
          k_recalls := kr :: !k_recalls;
          bf_recalls := recall_of p (bf_at_budget p budget) :: !bf_recalls;
          afl_recalls := afl_avg p budget :: !afl_recalls)
        programs;
      let k = mean !k_recalls and b = mean !bf_recalls and a = mean !afl_recalls in
      acc := (k, b, a) :: !acc;
      row "%-8s %10d %12.3f       %10.3f %10.3f\n" family
        (!budget_sum / max 1 (List.length programs))
        k b a)
    (group_by_family all);
  let ks, bs, as_ = List.fold_left (fun (x, y, z) (k, b, a) -> (k :: x, b :: y, a :: z)) ([], [], []) !acc in
  row "%-8s %10s %12.3f       %10.3f %10.3f\n" "MEAN" "" (mean ks) (mean bs) (mean as_);
  row "  paper: Kondo consistently highest (avg 0.98); BF below Kondo, worse in 3D; AFL lowest\n"

let fig8_fig9 () =
  header "Figure 8 + 9" "Precision per program (Kondo/BF/AFL/SC) and identified bloat (Kondo vs truth)";
  row "%-7s %8s | %9s %7s %7s %7s | %11s %11s\n" "program" "budget" "Kondo" "BF" "AFL" "SC"
    "bloat-Kondo" "bloat-truth";
  let k_precisions = ref [] and k_bloats = ref [] and truth_bloats = ref [] in
  let sc_precisions = ref [] in
  List.iter
    (fun p ->
      let budget = budget_for p in
      let truth = Program.ground_truth p in
      let _, (kp, _), (kb, _) = kondo_avg ~seeds:10 ~budget p in
      let bfp = precision_of p (bf_at_budget p budget) in
      let aflp = afl_precision_avg p budget in
      let scp =
        mean
          (List.init 10 (fun s ->
               let config =
                 { Config.default with Config.seed = s + 1; max_iter = budget; stop_iter = budget }
               in
               precision_of p (Simple_convex.run ~config p).Simple_convex.approx))
      in
      let tb = Metrics.bloat_fraction truth in
      k_precisions := kp :: !k_precisions;
      sc_precisions := scp :: !sc_precisions;
      k_bloats := kb :: !k_bloats;
      truth_bloats := tb :: !truth_bloats;
      row "%-7s %8d | %9.3f %7.3f %7.3f %7.3f | %10.1f%% %10.1f%%\n" p.Program.name budget kp bfp
        aflp scp (pct kb) (pct tb))
    (Suite.all11 ());
  row "%-7s %8s | %9.3f %7s %7s %7.3f | %10.1f%% %10.1f%%\n" "MEAN" "" (mean !k_precisions) ""
    "" (mean !sc_precisions) (pct (mean !k_bloats)) (pct (mean !truth_bloats));
  row "  paper: Kondo avg precision 0.87 and avg identified bloat 63%%; BF/AFL precision always 1;\n";
  row "         SC precision clearly below Kondo; LDC/RDC at 1.0; PRL and sparse CS variants below 1\n"

let missed_rates () =
  header "§V-D1" "Percentage of parameter valuations with at least one missed access";
  row "%-7s %10s %14s\n" "program" "budget" "missed rate";
  let rates = ref [] in
  List.iter
    (fun p ->
      let budget = budget_for p in
      let r = kondo_run ~seed:1 ~budget p in
      let rate = Metrics.missed_valuation_rate p ~approx:r.Pipeline.approx in
      rates := rate :: !rates;
      row "%-7s %10d %13.2f%%\n" p.Program.name budget (pct rate))
    (Suite.all11 ());
  row "%-7s %10s %13.2f%%\n" "MEAN" "" (pct (mean !rates));
  row "  paper: between 0.0%% and 0.8%% of valuations hit a missed access\n"

let run () =
  fig7 ();
  fig8_fig9 ();
  missed_rates ()
