(* §V-D6: overhead of I/O event auditing, across increasing file sizes. *)

open Kondo_audit
open Kondo_workload
open Exp_common

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

(* Measure one program on one real KH5 file: wall time of its plan's
   reads without and with the tracer wrapped around the port. *)
let measure p v ~reps =
  let path = Filename.temp_file "kondo_bench_audit" ".kh5" in
  Datafile.write_for ~path p;
  let time tracer =
    (* repeat and take the median to damp filesystem noise *)
    let samples =
      List.init 5 (fun _ ->
          let f = Kondo_h5.File.open_file ?tracer path in
          let t0 = now () in
          for _ = 1 to reps do
            ignore (Program.run_io p f v)
          done;
          let dt = now () -. t0 in
          Kondo_h5.File.close f;
          dt)
    in
    median samples
  in
  let plain = time None in
  let tracer = Tracer.create () in
  let audited = time (Some tracer) in
  Sys.remove path;
  let events = Tracer.event_count tracer in
  (plain, audited, events)

let run () =
  header "§V-D6" "I/O event audit overhead across file sizes";
  row "%-10s %-8s %10s %10s %10s %10s\n" "program" "dims" "plain" "audited" "overhead" "events";
  let cases =
    [ (Stencils.cs ~n:64 1, [| 1.0; 1.0 |]);
      (Stencils.cs ~n:128 1, [| 1.0; 1.0 |]);
      (Stencils.cs ~n:256 1, [| 1.0; 1.0 |]);
      (Stencils.prl2d ~n:128 (), [| 20.0; 24.0 |]);
      (Stencils.prl2d ~n:256 (), [| 40.0; 48.0 |]);
      (Stencils.ldc2d ~n:128 (), [| 24.0; 24.0 |]);
      (Stencils.ldc2d ~n:256 (), [| 48.0; 48.0 |]);
      (Stencils.rdc2d ~n:256 (), [| 48.0; 48.0 |]);
      (Stencils.prl3d ~m:48 (), [| 10.0; 10.0; 10.0 |]);
      (Stencils.ldc3d ~m:48 (), [| 10.0; 10.0; 10.0 |]) ]
  in
  let overheads = ref [] in
  List.iter
    (fun (p, v) ->
      let plain, audited, events = measure p v ~reps:40 in
      let overhead = (audited -. plain) /. Float.max 1e-9 plain in
      overheads := overhead :: !overheads;
      row "%-10s %-8s %8.2fms %8.2fms %9.1f%% %10d\n" p.Program.name
        (Kondo_dataarray.Shape.to_string p.Program.shape)
        (1000.0 *. plain) (1000.0 *. audited) (pct overhead) events)
    cases;
  row "%-10s %-8s %10s %10s %9.1f%%\n" "MEAN" "" "" "" (pct (mean !overheads));
  row "  paper: average auditing overhead ~31%%; I/O-bound programs pay more than compute-bound\n"
