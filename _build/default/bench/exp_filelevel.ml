(* Extension: offset-level vs file-level debloating.

   The paper's motivation (§I, §II): classic lineage systems detect only
   files that are never accessed, which "leads to a pessimistic amount
   of debloating" — any file the application touches at all must ship in
   full.  This experiment quantifies that gap on a two-file container
   (the Fig. 2 scenario: D1 is read, D2 never), comparing bytes shipped
   under (a) no debloating, (b) file-level lineage debloating, and
   (c) Kondo's offset-level debloating. *)

open Kondo_dataarray
open Kondo_workload
open Kondo_core
open Exp_common

let run () =
  header "File-level" "Offset-level vs file-level lineage debloating (the SecI motivation)";
  let used = Program.with_dataset (Stencils.ldc2d ~n:128 ()) "d1" in
  let unused = Program.with_dataset (Stencils.prl2d ~n:128 ()) "d2" in
  let src = Filename.temp_file "kondo_fl_src" ".kh5" in
  let dst = Filename.temp_file "kondo_fl_dst" ".kh5" in
  Datafile.write_many ~path:src [ used; unused ];
  (* only d1's program runs: d2 is the Fig. 2 D2 case *)
  let reports = Pipeline.debloat_file_many ~config:Config.default [ used ] ~src ~dst in
  let size path =
    let ic = open_in_bin path in
    let s = in_channel_length ic in
    close_in ic;
    s
  in
  let full = size src in
  let d1_bytes = Shape.nelems used.Program.shape * 16 in
  let d2_bytes = Shape.nelems unused.Program.shape * 16 in
  (* file-level lineage keeps every byte of the accessed d1 and drops d2 *)
  let file_level = full - d2_bytes in
  let kondo = size dst in
  row "  container data : %d KiB (d1 %d KiB + d2 %d KiB + headers)\n" (full / 1024)
    (d1_bytes / 1024) (d2_bytes / 1024);
  row "  file-level     : %d KiB shipped (drops only the never-read d2) — %.1f%% saved\n"
    (file_level / 1024)
    (pct (1.0 -. (float_of_int file_level /. float_of_int full)));
  row "  Kondo          : %d KiB shipped (offset-level subset of d1)   — %.1f%% saved\n"
    (kondo / 1024)
    (pct (1.0 -. (float_of_int kondo /. float_of_int full)));
  let report = List.assoc used.Program.name reports in
  row "  d1 subset      : %d of %d indices (%.1f%% of d1 carved away)\n"
    (Index_set.cardinal report.Pipeline.approx)
    (Shape.nelems used.Program.shape)
    (pct (1.0 -. Index_set.fraction report.Pipeline.approx));
  Sys.remove src;
  Sys.remove dst
