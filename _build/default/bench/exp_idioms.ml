(* Extension: the subsetting idioms of Lofstead et al. and Tang et al.
   that the paper's introduction builds on (§I-A) — plane reads, fixed
   sub-volumes, variable subsets, and VPIC's attribute-threshold idiom
   via a sorted index.  Checks Kondo handles each idiom the paper claims
   applicability to ("our approach is in principle applicable to most of
   the data subsetting idioms seen in real applications"). *)

open Kondo_dataarray
open Kondo_workload
open Kondo_baselines
open Exp_common

let run () =
  header "Idioms" "Kondo on the real-application subsetting idioms (§I-A)";
  row "%-8s %-10s %10s | %9s %9s %9s | %9s\n" "idiom" "dims" "truth" "K-prec" "K-recall"
    "K-bloat" "BF-recall";
  List.iter
    (fun p ->
      let truth = Program.ground_truth p in
      let budget = kondo_reference_budget p in
      let (rm, _), (pm, _), (bm, _) = kondo_avg ~seeds:5 ~budget p in
      let bf = Brute_force.run ~max_evals:budget p in
      row "%-8s %-10s %9.1f%% | %9.3f %9.3f %8.1f%% | %9.3f\n" p.Program.name
        (Shape.to_string p.Program.shape)
        (pct (Index_set.fraction truth))
        pm rm (pct bm)
        (recall_of p bf.Brute_force.indices))
    (Suite.extended ());
  row "  expectation: high recall on every idiom; THRESH/SUBVOL near-perfect precision\n"
