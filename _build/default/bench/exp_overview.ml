(* Table I, Table II, Figure 1, Figure 6. *)

open Kondo_dataarray
open Kondo_workload
open Kondo_core
open Exp_common

let table1 () =
  header "Table I" "Types of stencils (ASCII depiction of each kernel's ground-truth subset)";
  List.iter
    (fun p ->
      Printf.printf "\n--- %s: %s ---\n" p.Program.name p.Program.description;
      print_string (Render.ascii ~cols:48 ~rows:20 (Program.ground_truth p)))
    (Suite.micro ())

let theta_string p =
  "("
  ^ String.concat ", "
      (Array.to_list
         (Array.map (fun (lo, hi) -> Printf.sprintf "%g-%g" lo hi) p.Program.param_space))
  ^ ")"

let table2 () =
  header "Table II" "The 11 micro-benchmark and synthetic programs";
  row "%-7s %8s %-24s %10s %12s %10s\n" "program" "#params" "Theta" "|Theta|" "truth-frac" "dims";
  List.iter
    (fun p ->
      let truth = Program.ground_truth p in
      row "%-7s %8d %-24s %10d %11.1f%% %10s\n" p.Program.name (Program.arity p) (theta_string p)
        (Program.param_count p)
        (pct (Index_set.fraction truth))
        (Shape.to_string p.Program.shape))
    (Suite.all11 ())

let artifacts_dir () =
  let dir = "artifacts" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let fig1 () =
  header "Figure 1" "Data read by the cross-stencil program in three runs";
  let p = Stencils.cs ~n:10 1 in
  let runs = [ ('#', [| 1.0; 1.0 |]); ('o', [| 0.0; 1.0 |]); ('x', [| 1.0; 2.0 |]) ] in
  List.iter
    (fun (mark, v) ->
      Printf.printf "  mark '%c': stepX=%g stepY=%g -> %d indices\n" mark v.(0) v.(1)
        (Index_set.cardinal (Program.access p v)))
    runs;
  let overlays = List.map (fun (mark, v) -> (mark, Program.access p v)) runs in
  print_string (Render.overlay ~cols:10 ~rows:10 p.Program.shape overlays);
  let svg_layers =
    List.map2
      (fun (_, v) color -> Svg.points ~color (Program.access p v))
      runs [ "#222222"; "#2255cc"; "#cc3322" ]
  in
  let out = Filename.concat (artifacts_dir ()) "fig1_cross_stencil.svg" in
  Svg.save out ~width:400.0 ~height:400.0 svg_layers;
  Printf.printf "  (svg saved to %s)\n" out

let fig6 () =
  header "Figure 6" "The bottom-up merge algorithm vs one global hull";
  (* three clusters of points: two close (merge), one distant (stays) *)
  let rect x0 y0 x1 y1 =
    let pts = ref [] in
    for x = x0 to x1 do
      for y = y0 to y1 do
        pts := [| x; y |] :: !pts
      done
    done;
    !pts
  in
  let pts = rect 2 2 14 14 @ rect 20 2 32 14 @ rect 90 90 110 110 in
  let shape = Shape.create [| 128; 128 |] in
  let input = Index_set.of_list shape pts in
  let config = { Config.default with Config.cell_size = Some 8 } in
  let carve = Carver.carve ~config input in
  let merged_raster = Carver.rasterize shape carve.Carver.hulls in
  let single =
    match Carver.single_hull input with
    | Some h -> Carver.rasterize shape [ h ]
    | None -> Index_set.create shape
  in
  let prec s =
    let inter = Index_set.inter_cardinal input s in
    float_of_int inter /. float_of_int (max 1 (Index_set.cardinal s))
  in
  row "  (A) per-cell hulls before merging : %d hulls\n" carve.Carver.initial_cells;
  row "  (B) one global convex hull        : covers %d indices, precision vs input %.3f\n"
    (Index_set.cardinal single) (prec single);
  row "  (C/D) after bottom-up merging     : %d hulls (%d merges, %d sweeps), covers %d indices, precision %.3f\n"
    (List.length carve.Carver.hulls) carve.Carver.merges carve.Carver.merge_rounds
    (Index_set.cardinal merged_raster) (prec merged_raster);
  row "  expected: merged hulls keep the distant region separate; the single hull bridges it\n";
  let out = Filename.concat (artifacts_dir ()) "fig6_hull_merge.svg" in
  Svg.save out ~width:500.0 ~height:500.0
    (Svg.points ~color:"#555555" input
    :: List.map (fun h -> Svg.hull_outline ~stroke:"#cc2200" ~fill:"#cc2200" h) carve.Carver.hulls);
  row "  (svg saved to %s)\n" out

let run () =
  table1 ();
  table2 ();
  fig1 ();
  fig6 ()
