(* Table III: programs derived from real applications (ARD, MSI). *)

open Kondo_dataarray
open Kondo_workload
open Kondo_baselines
open Kondo_core
open Exp_common

let run () =
  header "Table III" "Kondo on programs derived from real applications (scaled; DESIGN.md §5)";
  row "%-24s %16s %16s\n" "" "ARD" "MSI";
  let programs = Suite.real () in
  let results =
    List.map
      (fun p ->
        let budget = 4.0 (* seconds, shared Kondo/BF, scaled from the paper's 2h *) in
        let truth = Program.ground_truth p in
        let config =
          { Config.default with
            Config.time_budget = Some budget;
            max_iter = 100_000;
            stop_iter = 100_000 }
        in
        let k = Pipeline.approximate ~config p in
        let ka = Metrics.accuracy ~truth ~approx:k.Pipeline.approx in
        let bf = Brute_force.run ~time_budget:budget p in
        let bfr = Metrics.recall ~truth ~approx:bf.Brute_force.indices in
        (p, ka, bfr, bf.Brute_force.evaluations, k))
      programs
  in
  let line label f =
    row "%-24s" label;
    List.iter (fun r -> row " %16s" (f r)) results;
    row "\n"
  in
  line "# of parameters" (fun (p, _, _, _, _) -> string_of_int (Program.arity p));
  line "data dims (scaled)" (fun (p, _, _, _, _) -> Shape.to_string p.Program.shape);
  line "|Theta|" (fun (p, _, _, _, _) -> string_of_int (Program.param_count p));
  line "Kondo precision" (fun (_, ka, _, _, _) -> Printf.sprintf "%.2f" ka.Metrics.precision);
  line "Kondo recall" (fun (_, ka, _, _, _) -> Printf.sprintf "%.2f" ka.Metrics.recall);
  line "BF precision" (fun _ -> "1.00");
  line "BF recall" (fun (_, _, bfr, _, _) -> Printf.sprintf "%.2f" bfr);
  line "BF evaluations" (fun (_, _, _, e, _) -> string_of_int e);
  line "Kondo %debloat" (fun (_, ka, _, _, _) -> Printf.sprintf "%.2f%%" (pct ka.Metrics.bloat));
  row "  paper: Kondo 1&1 on both; BF recall 0.24 (ARD) / 0.78 (MSI); debloat 97.20%% / 96.24%%\n"
