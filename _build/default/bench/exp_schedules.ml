(* Figure 4: exploit/explore vs boundary-based exploit/explore.

   The paper contrasts where fuzzed parameter values land after 1500 runs
   of each schedule on a cross-stencil variant with disjoint valid
   regions.  We render the parameter-space scatter ('|' useful, '-' not
   useful, following the figure's marks) and quantify boundary
   densification: the fraction of evaluations within distance 3 of the
   usefulness boundary of Θ. *)

open Kondo_workload
open Kondo_core
open Exp_common

let boundary_cells p =
  (* usefulness grid over the integer Θ, then cells adjacent to the
     opposite class *)
  let lo k = int_of_float (fst p.Program.param_space.(k)) in
  let hi k = int_of_float (snd p.Program.param_space.(k)) in
  let w = hi 0 - lo 0 + 1 and h = hi 1 - lo 1 + 1 in
  let useful = Array.make_matrix w h false in
  for a = 0 to w - 1 do
    for b = 0 to h - 1 do
      useful.(a).(b) <-
        Program.is_useful p [| float_of_int (a + lo 0); float_of_int (b + lo 1) |]
    done
  done;
  let boundary = Array.make_matrix w h false in
  for a = 0 to w - 1 do
    for b = 0 to h - 1 do
      let neighbours =
        [ (a - 1, b); (a + 1, b); (a, b - 1); (a, b + 1) ]
        |> List.filter (fun (x, y) -> x >= 0 && x < w && y >= 0 && y < h)
      in
      if List.exists (fun (x, y) -> useful.(x).(y) <> useful.(a).(b)) neighbours then
        boundary.(a).(b) <- true
    done
  done;
  (useful, boundary, lo 0, lo 1, w, h)

let near_boundary boundary w h radius a b =
  let hit = ref false in
  for x = max 0 (a - radius) to min (w - 1) (a + radius) do
    for y = max 0 (b - radius) to min (h - 1) (b + radius) do
      if boundary.(x).(y) then hit := true
    done
  done;
  !hit

let scatter trace w h lo0 lo1 =
  let raster = Array.make_matrix (min 32 w) (min 64 h) ' ' in
  let rows = Array.length raster and cols = Array.length raster.(0) in
  List.iter
    (fun (o : Schedule.outcome) ->
      let a = int_of_float o.Schedule.params.(0) - lo0 in
      let b = int_of_float o.Schedule.params.(1) - lo1 in
      let r = a * rows / w and c = b * cols / h in
      if r >= 0 && r < rows && c >= 0 && c < cols then
        raster.(r).(c) <- (if o.Schedule.useful then '|' else '-'))
    trace;
  let b = Buffer.create 1024 in
  Array.iter
    (fun line ->
      Buffer.add_string b "  ";
      Array.iter (Buffer.add_char b) line;
      Buffer.add_char b '\n')
    raster;
  Buffer.contents b

let run () =
  header "Figure 4" "EE vs boundary-based EE schedules (1500 runs each)";
  let p = Stencils.cs ~n:64 5 in
  (* CS5: two distant valid step windows *)
  let budget = 1500 in
  let base =
    { Config.default with Config.max_iter = budget; stop_iter = budget; seed = 7 }
  in
  let useful, boundary, lo0, lo1, w, h = boundary_cells p in
  ignore useful;
  let frac_near trace =
    let near = ref 0 and n = ref 0 in
    List.iter
      (fun (o : Schedule.outcome) ->
        incr n;
        let a = int_of_float o.Schedule.params.(0) - lo0 in
        let b = int_of_float o.Schedule.params.(1) - lo1 in
        if a >= 0 && a < w && b >= 0 && b < h && near_boundary boundary w h 3 a b then incr near)
      trace;
    float_of_int !near /. float_of_int (max 1 !n)
  in
  let run_one kind =
    Schedule.run ~config:{ base with Config.schedule = kind } p
  in
  let ee = run_one Config.Ee in
  let bee = run_one Config.Boundary_ee in
  Printf.printf "\n  plain EE schedule ('|' useful, '-' not useful):\n%s"
    (scatter ee.Schedule.trace w h lo0 lo1);
  Printf.printf "\n  boundary-based EE schedule:\n%s" (scatter bee.Schedule.trace w h lo0 lo1);
  row "\n  evaluations near the usefulness boundary (radius 3):\n";
  row "    EE          : %5.1f%%  (%d evals, %d useful)\n" (pct (frac_near ee.Schedule.trace))
    ee.Schedule.evaluations ee.Schedule.useful_count;
  row "    boundary-EE : %5.1f%%  (%d evals, %d useful)\n" (pct (frac_near bee.Schedule.trace))
    bee.Schedule.evaluations bee.Schedule.useful_count;
  let truth = Kondo_workload.Program.ground_truth p in
  row "  index-space recall after the same 1500 runs: EE %.3f, boundary-EE %.3f\n"
    (Kondo_core.Metrics.recall ~truth ~approx:ee.Schedule.indices)
    (Kondo_core.Metrics.recall ~truth ~approx:bee.Schedule.indices);
  (* end-to-end: after carving, averaged over 5 seeds *)
  let carved kind =
    let tr = ref 0.0 and tp = ref 0.0 in
    for s = 1 to 5 do
      let config = { base with Config.schedule = kind; seed = s } in
      let r = Schedule.run ~config p in
      let carve = Carver.carve ~config r.Schedule.indices in
      let approx = Carver.rasterize p.Kondo_workload.Program.shape carve.Carver.hulls in
      Kondo_dataarray.Index_set.union_into approx r.Schedule.indices;
      tr := !tr +. Kondo_core.Metrics.recall ~truth ~approx;
      tp := !tp +. Kondo_core.Metrics.precision ~truth ~approx
    done;
    (!tr /. 5.0, !tp /. 5.0)
  in
  let er, ep = carved Config.Ee in
  let br, bp = carved Config.Boundary_ee in
  row "  after carving (5-seed mean): EE recall %.3f prec %.3f | boundary-EE recall %.3f prec %.3f\n"
    er ep br bp
