(* Figure 11a (accuracy vs data size), Figures 11b/c (sensitivity to the
   hull-merge thresholds), and the design-choice ablations DESIGN.md
   calls out. *)

open Kondo_workload
open Kondo_core
open Exp_common

let fig11a () =
  header "Figure 11a" "Precision/recall of CS3 as the data file grows (256KB..64MB)";
  row "%-10s %10s | %16s %16s\n" "dims" "file" "precision (±std)" "recall (±std)";
  List.iter
    (fun n ->
      let p = Stencils.cs ~n 3 in
      let seeds = if n >= 1024 then 3 else 5 in
      let budget = 2000 in
      let (rm, rs), (pm, ps), _ = kondo_avg ~seeds ~budget p in
      let bytes = n * n * 16 in
      row "%-10s %9dK | %8.3f ±%5.3f %8.3f ±%5.3f\n"
        (Printf.sprintf "%dx%d" n n)
        (bytes / 1024) pm ps rm rs)
    [ 128; 256; 512; 1024; 2048 ];
  row "  paper: recall stays stable; precision improves (and its variance shrinks) with size\n"

let fig11bc () =
  header "Figure 11b/c" "Precision & recall vs center_d_thresh (hull-merge sensitivity)";
  row "  (swept under the Both merge policy, where the center criterion binds;\n";
  row "   under the default Either policy the boundary criterion dominates — see the ablation)\n";
  row "%-16s" "center_d_thresh";
  let thresholds = [ 5.0; 10.0; 20.0; 40.0; 80.0; 160.0 ] in
  List.iter (fun t -> row " %10.0f" t) thresholds;
  row "\n";
  List.iter
    (fun (pname, p) ->
      let truth = Program.ground_truth p in
      (* fuzzing is independent of the carver: fuzz once per seed, carve
         per threshold *)
      let seeds = 5 in
      let fuzzes =
        List.init seeds (fun s ->
            let config = { Config.default with Config.seed = s + 1 } in
            Schedule.run ~config p)
      in
      let metrics_at thresh =
        let accs =
          List.map
            (fun (f : Schedule.result) ->
              let config =
                { Config.default with
                  Config.center_d_thresh = thresh;
                  merge_policy = Config.Both }
              in
              let carve = Carver.carve ~config f.Schedule.indices in
              let approx = Carver.rasterize p.Program.shape carve.Carver.hulls in
              Kondo_dataarray.Index_set.union_into approx f.Schedule.indices;
              Metrics.accuracy ~truth ~approx)
            fuzzes
        in
        ( mean (List.map (fun (a : Metrics.accuracy) -> a.Metrics.precision) accs),
          mean (List.map (fun (a : Metrics.accuracy) -> a.Metrics.recall) accs) )
      in
      let results = List.map metrics_at thresholds in
      row "%-16s" (pname ^ " prec");
      List.iter (fun (p, _) -> row " %10.3f" p) results;
      row "\n%-16s" (pname ^ " recall");
      List.iter (fun (_, r) -> row " %10.3f" r) results;
      row "\n")
    [ ("CS3", Stencils.cs ~n:128 3); ("PRL2D", Stencils.prl2d ~n:128 ()) ];
  row "  paper: raising the threshold lifts recall and drops precision; recall stays above 0.75\n"

let ablation () =
  header "Ablation" "Design choices: merge policy, schedule kind, restarts, cell size";
  let programs = [ Stencils.cs ~n:128 3; Stencils.ldc2d ~n:128 (); Stencils.prl2d ~n:128 () ] in
  let eval_with config p =
    let truth = Program.ground_truth p in
    let accs =
      List.init 5 (fun s ->
          let r = Pipeline.approximate ~config:(Config.with_seed config (s + 1)) p in
          Metrics.accuracy ~truth ~approx:r.Pipeline.approx)
    in
    ( mean (List.map (fun (a : Metrics.accuracy) -> a.Metrics.precision) accs),
      mean (List.map (fun (a : Metrics.accuracy) -> a.Metrics.recall) accs) )
  in
  row "\n  -- merge policy (Alg. 2 CLOSE predicate; DESIGN.md §4) --\n";
  row "%-14s" "policy";
  List.iter (fun p -> row " %9s-P %9s-R" p.Program.name p.Program.name) programs;
  row "\n";
  List.iter
    (fun policy ->
      row "%-14s" (Config.merge_policy_name policy);
      List.iter
        (fun p ->
          let prec, rec_ = eval_with { Config.default with Config.merge_policy = policy } p in
          row " %11.3f %11.3f" prec rec_)
        programs;
      row "\n")
    [ Config.Either; Config.Both; Config.Center_only; Config.Boundary_only ];
  row "\n  -- schedule kind (epsilon decay on/off) --\n";
  List.iter
    (fun kind ->
      row "%-14s" (Config.schedule_name kind);
      List.iter
        (fun p ->
          let prec, rec_ = eval_with { Config.default with Config.schedule = kind } p in
          row " %11.3f %11.3f" prec rec_)
        programs;
      row "\n")
    [ Config.Ee; Config.Boundary_ee ];
  row "\n  -- random restart period --\n";
  List.iter
    (fun (label, restart) ->
      row "%-14s" label;
      List.iter
        (fun p ->
          let prec, rec_ = eval_with { Config.default with Config.restart = restart } p in
          row " %11.3f %11.3f" prec rec_)
        programs;
      row "\n")
    [ ("restart=100", 100); ("restart=250", 250); ("restart=1000", 1000); ("no restart", max_int) ];
  row "\n  -- carver cell size --\n";
  List.iter
    (fun cell ->
      row "%-14s" (Printf.sprintf "cell=%d" cell);
      List.iter
        (fun p ->
          let prec, rec_ = eval_with { Config.default with Config.cell_size = Some cell } p in
          row " %11.3f %11.3f" prec rec_)
        programs;
      row "\n")
    [ 4; 8; 16; 32 ];
  row "\n  -- physical layout of the debloated file (paper SecVI: chunked offset math) --\n";
  row "%-14s %10s %14s %14s\n" "layout" "runs" "stored-bytes" "of-logical";
  let p = Stencils.prl2d ~n:128 () in
  let report = Pipeline.approximate ~config:Config.default p in
  let logical = Kondo_dataarray.Shape.nelems p.Program.shape * 16 in
  List.iter
    (fun (label, layout) ->
      let keep = Pipeline.keep_intervals p report.Pipeline.approx ~layout in
      row "%-14s %10d %14d %13.1f%%\n" label
        (Kondo_interval.Interval_set.cardinal keep)
        (Kondo_interval.Interval_set.total_length keep)
        (pct
           (float_of_int (Kondo_interval.Interval_set.total_length keep)
           /. float_of_int logical)))
    [ ("contiguous", Kondo_dataarray.Layout.Contiguous);
      ("chunked 8x8", Kondo_dataarray.Layout.Chunked [| 8; 8 |]);
      ("chunked 16x16", Kondo_dataarray.Layout.Chunked [| 16; 16 |]);
      ("chunked 32x32", Kondo_dataarray.Layout.Chunked [| 32; 32 |]) ];
  row "\n  -- hybrid recall booster (SecVI future work: Kondo + AFL union) --\n";
  row "%-14s %12s %12s %12s\n" "program" "kondo-recall" "hybrid-recall" "afl-extra";
  List.iter
    (fun p ->
      let truth = Program.ground_truth p in
      let config = { Config.default with Config.max_iter = 300; stop_iter = 300; seed = 2 } in
      let h = Kondo_baselines.Hybrid.run ~config ~afl_budget:3000 p in
      row "%-14s %12.3f %12.3f %12d\n" p.Program.name
        (Metrics.recall ~truth ~approx:h.Kondo_baselines.Hybrid.kondo.Pipeline.approx)
        (Metrics.recall ~truth ~approx:h.Kondo_baselines.Hybrid.approx)
        h.Kondo_baselines.Hybrid.afl_extra)
    [ Stencils.cs ~n:128 3; Stencils.prl2d ~n:128 () ]

let run () =
  fig11a ();
  fig11bc ();
  ablation ()
