(* Figure 10: time (and debloat tests) the baselines need to reach the
   recall Kondo reaches within its own budget. *)

open Kondo_dataarray
open Kondo_workload
open Kondo_baselines
open Kondo_core
open Exp_common

(* Run BF until its recall reaches [target] (checking periodically),
   reporting evaluations and wall time, or the cap. *)
let bf_until p ~target ~cap =
  let truth = Program.ground_truth p in
  let indices = Index_set.create p.Program.shape in
  let evals = ref 0 in
  let reached = ref None in
  let t0 = now () in
  (try
     Program.iter_param_space p (fun v ->
         if !evals >= cap then raise Exit;
         incr evals;
         List.iter (fun slab -> Index_set.add_slab indices slab) (p.Program.plan v);
         if !evals land 127 = 0 && Metrics.recall ~truth ~approx:indices >= target then begin
           reached := Some (!evals, now () -. t0);
           raise Exit
         end)
   with Exit -> ());
  if !reached = None && Metrics.recall ~truth ~approx:indices >= target then
    reached := Some (!evals, now () -. t0);
  match !reached with
  | Some (e, t) -> (true, e, t, Metrics.recall ~truth ~approx:indices)
  | None -> (false, !evals, now () -. t0, Metrics.recall ~truth ~approx:indices)

(* AFL with a periodic recall checkpoint, via its exec budget: run in
   slices and test recall between slices. *)
let afl_until p ~target ~cap =
  let truth = Program.ground_truth p in
  let t0 = now () in
  let rec grow budget =
    let r = Afl.run ~seed:1 ~max_execs:budget p in
    let recall = Metrics.recall ~truth ~approx:r.Afl.indices in
    if recall >= target then (true, r.Afl.executions, now () -. t0, recall)
    else if budget >= cap then (false, r.Afl.executions, now () -. t0, recall)
    else grow (budget * 2)
  in
  grow 2048

let run () =
  header "Figure 10" "Budget needed by BF and AFL to reach Kondo's recall";
  row "%-8s %14s | %22s | %22s\n" "family" "Kondo" "BF (to Kondo recall)" "AFL (to Kondo recall)";
  row "%-8s %6s %7s | %8s %6s %7s | %8s %6s %7s\n" "" "evals" "recall" "evals" "time" "recall"
    "execs" "time" "recall";
  List.iter
    (fun (family, programs) ->
      let k_evals = ref [] and k_recall = ref [] in
      let bf_evals = ref [] and bf_time = ref [] and bf_rec = ref [] and bf_hit = ref true in
      let afl_execs = ref [] and afl_time = ref [] and afl_rec = ref [] and afl_hit = ref true in
      List.iter
        (fun p ->
          let budget = kondo_reference_budget p in
          let r = kondo_run ~seed:1 ~budget p in
          let target = recall_of p r.Pipeline.approx in
          (* match the paper: targets are Kondo's achieved recall *)
          let target = Float.min target 0.999 in
          k_evals := float_of_int r.Pipeline.fuzz.Schedule.evaluations :: !k_evals;
          k_recall := target :: !k_recall;
          let cap = max (Program.param_count p) 1 in
          let hit, e, t, rc = bf_until p ~target ~cap in
          bf_hit := !bf_hit && hit;
          bf_evals := float_of_int e :: !bf_evals;
          bf_time := t :: !bf_time;
          bf_rec := rc :: !bf_rec;
          let acap = if Program.arity p >= 3 then 60_000 else 400_000 in
          let hit, e, t, rc = afl_until p ~target ~cap:acap in
          afl_hit := !afl_hit && hit;
          afl_execs := float_of_int e :: !afl_execs;
          afl_time := t :: !afl_time;
          afl_rec := rc :: !afl_rec)
        programs;
      row "%-8s %6.0f %7.3f | %8.0f %5.2fs %6.3f%s | %8.0f %5.2fs %6.3f%s\n" family
        (mean !k_evals) (mean !k_recall) (mean !bf_evals) (mean !bf_time) (mean !bf_rec)
        (if !bf_hit then "" else "*")
        (mean !afl_execs) (mean !afl_time) (mean !afl_rec)
        (if !afl_hit then "" else "*"))
    (group_by_family (Suite.all11 ()));
  row "  (* = recall target not reached within the cap; stable recall reported instead)\n";
  row "  paper: BF reaches Kondo's recall with ~30x more budget; AFL reaches it only on CS,\n";
  row "         elsewhere it stabilizes lower after 100s-1000s of times Kondo's budget\n"
