(* Bechamel micro-benchmarks of the performance-critical substrates. *)

open Bechamel
open Toolkit

let rng = Kondo_prng.Rng.create 2024

let random_points_2d n range =
  List.init n (fun _ -> [| Kondo_prng.Rng.int rng range; Kondo_prng.Rng.int rng range |])

let random_points_3d n range =
  List.init n (fun _ ->
      [| Kondo_prng.Rng.int rng range;
         Kondo_prng.Rng.int rng range;
         Kondo_prng.Rng.int rng range |])

let hull2d_points = random_points_2d 1000 512
let hull3d_points = random_points_3d 400 64

let test_hull2d =
  Test.make ~name:"hull2d-1000pts" (Staged.stage (fun () -> Kondo_geometry.Hull.of_int_points hull2d_points))

let test_hull3d =
  Test.make ~name:"hull3d-400pts" (Staged.stage (fun () -> Kondo_geometry.Hull.of_int_points hull3d_points))

let hull_a = Kondo_geometry.Hull.of_int_points (random_points_2d 200 64)
let hull_b = Kondo_geometry.Hull.of_int_points (List.map (fun p -> [| p.(0) + 70; p.(1) |]) (random_points_2d 200 64))

let test_hull_merge =
  Test.make ~name:"hull-merge" (Staged.stage (fun () -> Kondo_geometry.Hull.merge hull_a hull_b))

let test_btree_insert =
  Test.make ~name:"interval-btree-insert-10k"
    (Staged.stage (fun () ->
         let t = Kondo_interval.Interval_btree.create () in
         for i = 0 to 9_999 do
           Kondo_interval.Interval_btree.insert t
             (Kondo_interval.Interval.make (i * 7 mod 65536) ((i * 7 mod 65536) + 16))
             i
         done;
         t))

let query_tree =
  let t = Kondo_interval.Interval_btree.create () in
  for i = 0 to 99_999 do
    Kondo_interval.Interval_btree.insert t
      (Kondo_interval.Interval.make (i * 13 mod 1_000_000) ((i * 13 mod 1_000_000) + 32))
      i
  done;
  t

let test_btree_query =
  Test.make ~name:"interval-btree-stab-100k"
    (Staged.stage (fun () -> Kondo_interval.Interval_btree.stab query_tree 500_000))

let bitset_a = Kondo_dataarray.Bitset.create 1_000_000
let bitset_b = Kondo_dataarray.Bitset.create 1_000_000

let () =
  for i = 0 to 999_999 do
    if i mod 3 = 0 then Kondo_dataarray.Bitset.set bitset_a i;
    if i mod 5 = 0 then Kondo_dataarray.Bitset.set bitset_b i
  done

let test_bitset_inter =
  Test.make ~name:"bitset-inter-1M"
    (Staged.stage (fun () -> Kondo_dataarray.Bitset.inter_cardinal bitset_a bitset_b))

let kh5_bytes =
  let p = Kondo_workload.Stencils.cs ~n:128 1 in
  Kondo_workload.Datafile.bytes_for p

let kh5_file = Kondo_h5.File.open_port (Kondo_audit.Io_port.of_bytes ~path:"mem" kh5_bytes)

let kh5_audited =
  let tracer = Kondo_audit.Tracer.create () in
  Kondo_h5.File.open_port
    (Kondo_audit.Tracer.wrap tracer ~pid:1 (Kondo_audit.Io_port.of_bytes ~path:"mem" kh5_bytes))

let row_slab = Kondo_dataarray.Hyperslab.block_at [| 64; 0 |] [| 1; 128 |]

let test_kh5_read =
  Test.make ~name:"kh5-row-read" (Staged.stage (fun () -> Kondo_h5.File.read_slab kh5_file "data" row_slab (fun _ _ -> ())))

let test_kh5_read_audited =
  Test.make ~name:"kh5-row-read-audited"
    (Staged.stage (fun () -> Kondo_h5.File.read_slab kh5_audited "data" row_slab (fun _ _ -> ())))

let blob = Bytes.init 262_144 (fun i -> Char.chr (i * 131 mod 256))

let test_cdc =
  Test.make ~name:"merkle-chunk-256K" (Staged.stage (fun () -> Kondo_container.Merkle.chunk_bytes blob))

let fuzz_program = Kondo_workload.Stencils.ldc2d ~n:64 ()

let test_debloat_test =
  Test.make ~name:"debloat-test-eval"
    (Staged.stage (fun () -> Kondo_workload.Program.access fuzz_program [| 12.0; 12.0 |]))

let tests =
  Test.make_grouped ~name:"kondo"
    [ test_hull2d;
      test_hull3d;
      test_hull_merge;
      test_btree_insert;
      test_btree_query;
      test_bitset_inter;
      test_kh5_read;
      test_kh5_read_audited;
      test_cdc;
      test_debloat_test ]

let run () =
  Exp_common.header "Microbench" "Bechamel micro-benchmarks of the substrates (ns/run, OLS fit)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | Some (e :: _) -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "  %-28s %14s\n" name "n/a"
      else if ns > 1_000_000.0 then Printf.printf "  %-28s %11.2f ms\n" name (ns /. 1e6)
      else if ns > 1_000.0 then Printf.printf "  %-28s %11.2f us\n" name (ns /. 1e3)
      else Printf.printf "  %-28s %11.0f ns\n" name ns)
    rows
