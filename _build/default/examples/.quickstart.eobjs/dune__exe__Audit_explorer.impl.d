examples/audit_explorer.ml: Datafile Event Filename Interval Interval_set Kondo_audit Kondo_h5 Kondo_interval Kondo_provenance Kondo_workload List Printf Program Stencils String Sys Tracer
