examples/audit_explorer.mli:
