examples/container_debloat.mli:
