examples/invariants.ml: Carver Config Index_set Invariant Kondo_core Kondo_dataarray Kondo_workload List Pipeline Printf Program Shape Stencils
