examples/invariants.mli:
