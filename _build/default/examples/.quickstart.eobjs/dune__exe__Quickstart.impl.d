examples/quickstart.ml: Carver Config Datafile Filename Kondo_core Kondo_dataarray Kondo_h5 Kondo_workload List Metrics Pipeline Printf Program Schedule Stencils Sys
