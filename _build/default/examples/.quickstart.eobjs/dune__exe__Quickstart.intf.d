examples/quickstart.mli:
