examples/schedule_comparison.ml: Carver Config Index_set Kondo_core Kondo_dataarray Kondo_workload List Metrics Printf Program Render Schedule Stencils String
