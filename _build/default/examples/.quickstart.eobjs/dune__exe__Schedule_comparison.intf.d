examples/schedule_comparison.mli:
