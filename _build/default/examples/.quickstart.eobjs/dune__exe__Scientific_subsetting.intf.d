examples/scientific_subsetting.mli:
