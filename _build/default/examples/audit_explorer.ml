(* Exploring the fine-grained audit layer and the lineage graph.

   Reproduces the paper's §IV-C worked example (four events from two
   processes merging to two offset ranges), then audits a real program
   execution and derives coarse- and fine-grained lineage from it.

     dune exec examples/audit_explorer.exe *)

open Kondo_interval
open Kondo_audit
open Kondo_workload

let () =
  (* ---- the §IV-C example ------------------------------------------- *)
  print_endline "=== paper §IV-C example ===";
  let t = Tracer.create () in
  List.iter
    (fun (pid, off, sz) ->
      let e = Tracer.record t ~pid ~path:"d_file" ~op:Event.Read ~offset:off ~size:sz in
      Printf.printf "  logged %s\n" (Event.to_string e))
    [ (1, 0, 110); (2, 70, 30); (1, 130, 20); (1, 90, 30) ];
  Printf.printf "  merged accessed offsets: %s (paper: (0,120) and (130,150))\n"
    (Interval_set.to_string (Tracer.offsets_of_path t ~path:"d_file"));
  Printf.printf "  P1 alone: %s | P2 alone: %s\n"
    (Interval_set.to_string (Tracer.offsets t ~pid:1 ~path:"d_file"))
    (Interval_set.to_string (Tracer.offsets t ~pid:2 ~path:"d_file"));
  let hits = Tracer.lookup t ~pid:1 ~path:"d_file" (Interval.make 100 140) in
  Printf.printf "  interval-B-tree lookup [100,140) for P1: %d overlapping event ranges\n"
    (List.length hits);

  (* ---- auditing a real program run ---------------------------------- *)
  print_endline "\n=== auditing a PRL2D run ===";
  let p = Stencils.prl2d ~n:64 () in
  let path = Filename.temp_file "audit_demo" ".kh5" in
  Datafile.write_for ~path p;
  let tracer = Tracer.create () in
  let f = Kondo_h5.File.open_file ~tracer ~pid:42 path in
  let elems = Program.run_io p f [| 12.0; 14.0 |] in
  Kondo_h5.File.close f;
  Printf.printf "  run read %d elements via %d audited events\n" elems (Tracer.event_count tracer);
  let offs = Tracer.offsets tracer ~pid:42 ~path in
  Printf.printf "  coalesced byte ranges: %d runs covering %d bytes\n"
    (Interval_set.cardinal offs) (Interval_set.total_length offs);

  (* ---- lineage ------------------------------------------------------ *)
  print_endline "\n=== lineage graph ===";
  let g = Kondo_provenance.Lineage.of_tracer ~names:(fun _ -> "PRL2D") tracer in
  List.iter
    (fun (proc : Kondo_provenance.Lineage.process) ->
      Printf.printf "  process %d (%s) used: %s\n" proc.Kondo_provenance.Lineage.pid
        proc.Kondo_provenance.Lineage.name
        (String.concat ", "
           (Kondo_provenance.Lineage.files_used_by g ~pid:proc.Kondo_provenance.Lineage.pid)))
    (Kondo_provenance.Lineage.processes g);
  (* what file-level lineage debloating would miss: the whole file was
     "used", yet most bytes were not *)
  let ds_bytes =
    let f = Kondo_h5.File.open_file path in
    let n = Kondo_h5.Dataset.logical_bytes (Kondo_h5.File.find f "data") in
    Kondo_h5.File.close f;
    n
  in
  Printf.printf "  file-level lineage keeps %d bytes; offset-level lineage shows only %d touched\n"
    ds_bytes (Interval_set.total_length offs);
  Printf.printf "\n  graphviz:\n%s" (Kondo_provenance.Lineage.to_dot g);
  Sys.remove path
