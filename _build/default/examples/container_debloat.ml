(* The full container story of the paper's introduction.

   Alice ships a containerized stencil application with its data file;
   Bob pulls and runs it.  Kondo debloats the data layer before Bob's
   pull, the Merkle transfer accounting shows what Bob downloads, and
   the user-side runtime demonstrates both the data-missing exception
   and the remote-fetch fallback of §VI.

     dune exec examples/container_debloat.exe *)

open Kondo_container
open Kondo_workload
open Kondo_core

let read_file path =
  let ic = open_in_bin path in
  let b = Bytes.create (in_channel_length ic) in
  really_input ic b 0 (Bytes.length b);
  close_in ic;
  b

let mib n = float_of_int n /. (1024.0 *. 1024.0)

let () =
  (* ---- Alice: build the container ---------------------------------- *)
  let program = Stencils.rdc2d ~n:128 () in
  let data_src = Filename.temp_file "alice_data" ".kh5" in
  Datafile.write_for ~path:data_src program;
  let spec_text =
    String.concat "\n"
      [ "FROM ubuntu:20.04";
        "RUN apt-get install -y gcc";
        "RUN apt-get install -y libhdf5-dev";
        Printf.sprintf "ADD %s /stencil/data.kh5" data_src;
        "PARAM [0-32, 0-32]";
        "ENTRYPOINT [\"/stencil/RDC\"]";
        "CMD [16, 16, /stencil/data.kh5]" ]
  in
  let spec =
    match Spec.parse spec_text with Ok s -> s | Error e -> failwith e
  in
  let image = Image.build spec ~fetch:read_file in
  Printf.printf "Alice's image : %.1f MiB env + %.2f MiB data\n" (mib (Image.env_size image))
    (mib (Image.data_size image));

  (* ---- Kondo: debloat the data layer -------------------------------- *)
  let debloated, report =
    Pipeline.debloat_image ~config:Config.default program ~image ~dst:"/stencil/data.kh5"
  in
  Printf.printf "Kondo         : %d debloat tests -> %d hulls, data layer %.2f MiB -> %.2f MiB\n"
    report.Pipeline.fuzz.Schedule.evaluations
    (List.length report.Pipeline.carve.Carver.hulls)
    (mib (Image.data_size image))
    (mib (Image.data_size debloated));

  (* ---- Bob: pull (content-defined dedup) ---------------------------- *)
  let cold = Image.transfer_size debloated ~have:Merkle.HashSet.empty in
  let upgrade = Image.transfer_size debloated ~have:(Image.chunk_hashes image) in
  Printf.printf "Bob pulls     : %.1f MiB cold; upgrading from the full image moves only %.2f MiB of data\n"
    (mib cold)
    (mib (upgrade - Image.env_size debloated));

  (* ---- Bob: run ------------------------------------------------------ *)
  let dir = Filename.temp_file "bob" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rt = Runtime.boot ~image:debloated ~dir () in
  let n = Program.run_io program (Runtime.file rt ~dst:"/stencil/data.kh5") [| 16.0; 16.0 |] in
  Printf.printf "Bob runs      : RDC 16 16 read %d elements from the debloated file\n" n;
  Runtime.shutdown rt;

  (* ---- the data-missing exception and the remote fallback ----------- *)
  (* cripple Kondo on purpose so an offset is missing *)
  let weak = { Config.default with Config.max_iter = 5; stop_iter = 5; n_init = 2 } in
  let crippled, _ = Pipeline.debloat_image ~config:weak program ~image ~dst:"/stencil/data.kh5" in
  let rt = Runtime.boot ~image:crippled ~dir () in
  (try ignore (Runtime.read_element rt ~dst:"/stencil/data.kh5" ~dataset:"data" [| 127; 127 |])
   with Kondo_h5.File.Data_missing m ->
     Printf.printf "exception     : Data_missing at index (%d,%d), byte offset %d — as §III specifies\n"
       m.Kondo_h5.File.index.(0) m.Kondo_h5.File.index.(1) m.Kondo_h5.File.offset);
  Runtime.shutdown rt;
  let rt = Runtime.boot ~remote:true ~image:crippled ~dir () in
  let v = Runtime.read_element rt ~dst:"/stencil/data.kh5" ~dataset:"data" [| 127; 127 |] in
  Printf.printf "remote fetch  : §VI fallback pulled the value (%g) from Alice's server; stats: %d miss, %d fetched\n"
    v (Runtime.stats rt).Runtime.misses (Runtime.stats rt).Runtime.remote_fetches;
  Runtime.shutdown rt;
  Sys.remove data_src
