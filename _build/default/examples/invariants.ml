(* Carved subsets as disjunctive invariants (paper §VII).

   The paper positions Kondo against invariant-inference tools like
   Daikon and DIG: Kondo effectively infers an invariant over the array
   subscripts, and — unlike conjunctive inference — a *disjunctive* one:
   a union of convex polytopes.  This example carves three programs and
   prints the inferred formulas, then cross-checks the formula against
   hull membership on every index.

     dune exec examples/invariants.exe *)

open Kondo_dataarray
open Kondo_workload
open Kondo_core

let () =
  List.iter
    (fun p ->
      Printf.printf "=== %s — %s ===\n" p.Program.name p.Program.description;
      let config = { Config.default with Config.max_iter = 800; stop_iter = 400 } in
      let r = Pipeline.approximate ~config p in
      let carve = r.Pipeline.carve in
      let inv = Invariant.of_carve carve in
      Printf.printf "inferred invariant (%d clauses, %d linear constraints):\n%s\n\n"
        (List.length (Invariant.clauses inv))
        (Invariant.constraint_count inv) (Invariant.to_string inv);
      (* the formula and the hull set agree everywhere *)
      let raster = Carver.rasterize p.Program.shape carve.Carver.hulls in
      let mismatches = ref 0 in
      Shape.iter p.Program.shape (fun idx ->
          if Invariant.satisfies_int inv idx <> Index_set.mem raster idx then incr mismatches);
      Printf.printf "cross-check: formula vs hull membership over %d indices -> %d mismatches\n\n"
        (Shape.nelems p.Program.shape) !mismatches)
    [ Stencils.cs ~n:64 1; Stencils.ldc2d ~n:64 (); Stencils.prl2d ~n:64 () ]
