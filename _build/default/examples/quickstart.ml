(* Quickstart: debloat one data file in five steps.

   The cross-stencil program of the paper's Listing 1 reads a lower-
   triangular portion of a 128x128 array, whatever its parameters; the
   rest of the file is bloat.  This example writes the full KH5 file,
   lets Kondo find the accessed subset, writes the debloated file, and
   verifies a run against it.

     dune exec examples/quickstart.exe *)

open Kondo_workload
open Kondo_core

let () =
  (* 1. the application under test: CS1, the Listing-1 cross stencil *)
  let program = Stencils.cs ~n:128 1 in
  Printf.printf "program   : %s — %s\n" program.Program.name program.Program.description;
  Printf.printf "data      : %s of %s (%d KiB)\n"
    (Kondo_dataarray.Shape.to_string program.Program.shape)
    (Kondo_dataarray.Dtype.to_string program.Program.dtype)
    (Kondo_h5.Dataset.logical_bytes
       (Kondo_h5.Dataset.dense ~name:"data" ~dtype:program.Program.dtype
          ~shape:program.Program.shape ())
    / 1024);

  (* 2. write the full data file *)
  let src = Filename.temp_file "quickstart_full" ".kh5" in
  let dst = Filename.temp_file "quickstart_debloated" ".kh5" in
  Datafile.write_for ~path:src program;

  (* 3. fuzz + carve + write the debloated file *)
  let config = Config.default in
  let report = Pipeline.debloat_file ~config program ~src ~dst in
  Printf.printf "fuzzing   : %d debloat tests (%d useful), stopped on %s\n"
    report.Pipeline.fuzz.Schedule.evaluations report.Pipeline.fuzz.Schedule.useful_count
    (match report.Pipeline.fuzz.Schedule.stopped with
    | Schedule.Max_iterations -> "max iterations"
    | Schedule.Stagnation -> "stagnation"
    | Schedule.Time_budget -> "time budget");
  Printf.printf "carving   : %d cell hulls -> %d hulls after merging\n"
    report.Pipeline.carve.Carver.initial_cells
    (List.length report.Pipeline.carve.Carver.hulls);

  (* 4. compare sizes *)
  let size path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Printf.printf "file size : %d KiB -> %d KiB (%.1f%% smaller)\n" (size src / 1024)
    (size dst / 1024)
    (100.0 *. (1.0 -. (float_of_int (size dst) /. float_of_int (size src))));

  (* 5. accuracy against the exact ground truth, and a verification run *)
  let truth = Program.ground_truth program in
  let acc = Metrics.accuracy ~truth ~approx:report.Pipeline.approx in
  Printf.printf "accuracy  : precision %.3f, recall %.3f (paper averages: 0.87 / 0.98)\n"
    acc.Metrics.precision acc.Metrics.recall;
  let f = Kondo_h5.File.open_file dst in
  let read = Program.run_io program f [| 1.0; 2.0 |] in
  Printf.printf "re-run    : stepX=1 stepY=2 against the debloated file read %d elements — OK\n"
    read;
  Kondo_h5.File.close f;
  Sys.remove src;
  Sys.remove dst
