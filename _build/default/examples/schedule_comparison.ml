(* Comparing Kondo's two fuzz schedules (paper §IV-A, Figure 4).

   On a program whose valid parameter values live in two distant
   windows, plain exploit/explore localizes around its initial seeds,
   while boundary-based EE clusters useful/non-useful values and
   densifies sampling near the subset boundaries.

     dune exec examples/schedule_comparison.exe *)

open Kondo_dataarray
open Kondo_workload
open Kondo_core

let run_schedule p kind budget =
  let config =
    { Config.default with
      Config.schedule = kind;
      max_iter = budget;
      stop_iter = budget;
      seed = 5 }
  in
  Schedule.run ~config p

let () =
  let p = Stencils.cs ~n:64 5 in
  Printf.printf "program: %s — %s\n" p.Program.name p.Program.description;
  let truth = Program.ground_truth p in
  Printf.printf "ground truth: %.1f%% of the array is reachable\n\n"
    (100.0 *. Index_set.fraction truth);
  Printf.printf "%-14s %8s %8s %8s %10s %10s\n" "schedule" "budget" "evals" "useful" "recall"
    "precision";
  List.iter
    (fun budget ->
      List.iter
        (fun (label, kind) ->
          let r = run_schedule p kind budget in
          let carve = Carver.carve ~config:Config.default r.Schedule.indices in
          let approx = Carver.rasterize p.Program.shape carve.Carver.hulls in
          Index_set.union_into approx r.Schedule.indices;
          Printf.printf "%-14s %8d %8d %8d %10.3f %10.3f\n" label budget r.Schedule.evaluations
            r.Schedule.useful_count
            (Metrics.recall ~truth ~approx)
            (Metrics.precision ~truth ~approx))
        [ ("EE", Config.Ee); ("boundary-EE", Config.Boundary_ee) ])
    [ 250; 500; 1000; 2000 ];
  print_newline ();
  (* show where the discovered indices sit for the larger budget *)
  let ee = run_schedule p Config.Ee 1500 in
  let bee = run_schedule p Config.Boundary_ee 1500 in
  Printf.printf "indices discovered by EE (left) vs boundary-EE (right), 1500 runs:\n";
  let left = Render.ascii ~cols:32 ~rows:16 ee.Schedule.indices in
  let right = Render.ascii ~cols:32 ~rows:16 bee.Schedule.indices in
  let l = String.split_on_char '\n' left and r = String.split_on_char '\n' right in
  List.iter2
    (fun a b -> if a <> "" || b <> "" then Printf.printf "  %-34s | %s\n" a b)
    l r
