(* Data subsetting in scientific applications (paper §V-D7).

   The ARD (atmospheric river detection) and MSI (mass spectrometry
   imaging) programs read a tiny, structured fraction of very large
   mesh files.  This example runs Kondo on both (at a reduced scale so
   the demo writes real files) and reports the debloating a scientist
   shipping these containers would get.

     dune exec examples/scientific_subsetting.exe *)

open Kondo_dataarray
open Kondo_workload
open Kondo_core

let () =
  List.iter
    (fun (p, blurb) ->
      Printf.printf "\n=== %s — %s ===\n" p.Program.name blurb;
      Printf.printf "mesh          : %s (%.1f MiB as long double)\n"
        (Shape.to_string p.Program.shape)
        (float_of_int (Shape.nelems p.Program.shape * 16) /. 1048576.0);
      let truth = Program.ground_truth p in
      Printf.printf "true subset   : %.2f%% of the mesh\n" (100.0 *. Index_set.fraction truth);
      let src = Filename.temp_file "sci_full" ".kh5" in
      let dst = Filename.temp_file "sci_debloated" ".kh5" in
      Datafile.write_for ~path:src p;
      let config =
        { Config.default with Config.max_iter = 20_000; stop_iter = 2_000; time_budget = Some 3.0 }
      in
      let t0 = Unix.gettimeofday () in
      let report = Pipeline.debloat_file ~config p ~src ~dst in
      let acc = Metrics.accuracy ~truth ~approx:report.Pipeline.approx in
      let size path =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        close_in ic;
        n
      in
      Printf.printf "Kondo         : precision %.2f recall %.2f in %.1fs (%d debloat tests)\n"
        acc.Metrics.precision acc.Metrics.recall
        (Unix.gettimeofday () -. t0)
        report.Pipeline.fuzz.Schedule.evaluations;
      Printf.printf "file          : %.1f MiB -> %.2f MiB (%.2f%% debloated)\n"
        (float_of_int (size src) /. 1048576.0)
        (float_of_int (size dst) /. 1048576.0)
        (100.0 *. (1.0 -. (float_of_int (size dst) /. float_of_int (size src))));
      (* verify a fresh parameter valuation runs against the subset *)
      let f = Kondo_h5.File.open_file dst in
      let mid =
        Array.map (fun (lo, hi) -> Float.round ((lo +. hi) /. 2.0)) p.Program.param_space
      in
      let n = Program.run_io p f mid in
      Printf.printf "verification  : mid-range run read %d elements from the debloated file\n" n;
      Kondo_h5.File.close f;
      Sys.remove src;
      Sys.remove dst)
    [ (Realapps.ard ~scale:16 (), "parameterized block, full temporal axis");
      (Realapps.msi ~scale:256 (), "full image planes in a narrow depth window") ]
