lib/audit/event.ml: Interval Kondo_interval Printf
