lib/audit/event.mli: Interval Kondo_interval
