lib/audit/event_log.ml: Event Fun Hashtbl List Printf String Tracer
