lib/audit/event_log.mli: Event Tracer
