lib/audit/io_port.ml: Bytes Fun
