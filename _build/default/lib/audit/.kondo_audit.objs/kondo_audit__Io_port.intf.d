lib/audit/io_port.mli:
