lib/audit/tracer.ml: Event Hashtbl Interval_btree Interval_set Io_port Kondo_interval List String
