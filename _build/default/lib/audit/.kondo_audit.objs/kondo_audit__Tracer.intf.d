lib/audit/tracer.mli: Event Interval Interval_set Io_port Kondo_interval
