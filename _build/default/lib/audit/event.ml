open Kondo_interval
type op = Open | Read | Write | Mmap | Close

type t = { seq : int; pid : int; path : string; op : op; offset : int; size : int }

let interval t = Interval.of_event ~offset:t.offset ~size:t.size

let op_to_string = function
  | Open -> "open"
  | Read -> "read"
  | Write -> "write"
  | Mmap -> "mmap"
  | Close -> "close"

let to_string t =
  Printf.sprintf "e%d(P%d, %s, %s, %d, %d)" t.seq t.pid (op_to_string t.op) t.path t.offset
    t.size

let is_access t = match t.op with Read | Mmap -> true | Open | Write | Close -> false
