open Kondo_interval
(** Audited I/O events.

    Paper §IV-C, Definition 4: an event is a four-tuple [⟨id, c, l, sz⟩]
    where [id] identifies the generating process and affected file, [c] is
    the event type, [l] the start byte offset and [sz] the affected size.
    The sequence number makes every event unique in the log. *)

type op = Open | Read | Write | Mmap | Close

type t = {
  seq : int;     (** log sequence number *)
  pid : int;     (** generating process *)
  path : string; (** affected file *)
  op : op;
  offset : int;  (** start byte offset [l] *)
  size : int;    (** affected size [sz] *)
}

val interval : t -> Interval.t
(** The affected byte range [\[l, l+sz)]. *)

val op_to_string : op -> string
val to_string : t -> string
val is_access : t -> bool
(** Reads and mmaps move data to the application; opens/closes do not. *)
