let magic = "KLOG\x01"

type writer = {
  oc : out_channel;
  paths : (string, int) Hashtbl.t;
  mutable next_path_id : int;
}

let put_varint oc v =
  if v < 0 then invalid_arg "Event_log: negative field";
  let rec go v =
    if v < 0x80 then output_byte oc v
    else begin
      output_byte oc (v land 0x7F lor 0x80);
      go (v lsr 7)
    end
  in
  go v

let op_code = function
  | Event.Open -> 0
  | Event.Read -> 1
  | Event.Write -> 2
  | Event.Mmap -> 3
  | Event.Close -> 4

let op_of_code = function
  | 0 -> Event.Open
  | 1 -> Event.Read
  | 2 -> Event.Write
  | 3 -> Event.Mmap
  | 4 -> Event.Close
  | c -> failwith (Printf.sprintf "Event_log: bad op code %d" c)

let create_writer path =
  let oc = open_out_bin path in
  output_string oc magic;
  { oc; paths = Hashtbl.create 8; next_path_id = 0 }

let path_id w path =
  match Hashtbl.find_opt w.paths path with
  | Some id -> id
  | None ->
    let id = w.next_path_id in
    w.next_path_id <- id + 1;
    Hashtbl.add w.paths path id;
    (* path definition record: tag 0 *)
    put_varint w.oc 0;
    put_varint w.oc id;
    put_varint w.oc (String.length path);
    output_string w.oc path;
    id

let log w (e : Event.t) =
  let pid_of_path = path_id w e.Event.path in
  (* event record: tag 1 *)
  put_varint w.oc 1;
  put_varint w.oc e.Event.seq;
  put_varint w.oc e.Event.pid;
  put_varint w.oc pid_of_path;
  put_varint w.oc (op_code e.Event.op);
  put_varint w.oc e.Event.offset;
  put_varint w.oc e.Event.size

let close_writer w = close_out w.oc

let save path events =
  let w = create_writer path in
  Fun.protect ~finally:(fun () -> close_writer w) (fun () -> List.iter (log w) events)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let head =
        try really_input_string ic (String.length magic)
        with End_of_file -> failwith "Event_log: truncated header"
      in
      if head <> magic then failwith "Event_log: bad magic";
      let get_varint () =
        let rec go shift acc =
          let b = input_byte ic in
          let acc = acc lor ((b land 0x7F) lsl shift) in
          if b land 0x80 = 0 then acc else go (shift + 7) acc
        in
        go 0 0
      in
      let paths : (int, string) Hashtbl.t = Hashtbl.create 8 in
      let events = ref [] in
      (try
         while true do
           match get_varint () with
           | 0 ->
             let id = get_varint () in
             let len = get_varint () in
             Hashtbl.replace paths id (really_input_string ic len)
           | 1 ->
             let seq = get_varint () in
             let pid = get_varint () in
             let path_id = get_varint () in
             let op = op_of_code (get_varint ()) in
             let offset = get_varint () in
             let size = get_varint () in
             let path =
               match Hashtbl.find_opt paths path_id with
               | Some p -> p
               | None -> failwith "Event_log: undefined path id"
             in
             events := { Event.seq; pid; path; op; offset; size } :: !events
           | tag -> failwith (Printf.sprintf "Event_log: bad record tag %d" tag)
         done
       with End_of_file -> ());
      List.rev !events)

let replay path =
  let t = Tracer.create () in
  List.iter
    (fun (e : Event.t) ->
      ignore
        (Tracer.record t ~pid:e.Event.pid ~path:e.Event.path ~op:e.Event.op ~offset:e.Event.offset
           ~size:e.Event.size))
    (load path);
  t
