(** Persistent binary event logs.

    Kondo's audit "records system call arguments in a data store" (§V)
    so that carving and re-execution can happen offline, after the
    audited runs.  The log format is a compact LEB128-varint stream with
    a path string table (paths repeat across events), written append-only.

    A saved log reloads into the exact event list; [replay] folds a log
    into a fresh {!Tracer} to rebuild its interval indexes. *)

type writer

val create_writer : string -> writer
(** Truncates/creates the file and writes the header. *)

val log : writer -> Event.t -> unit

val close_writer : writer -> unit

val save : string -> Event.t list -> unit
(** One-shot: write a whole event list. *)

val load : string -> Event.t list
(** @raise Failure on malformed logs. *)

val replay : string -> Tracer.t
(** Load a log and rebuild a tracer from it (event sequence numbers are
    preserved from the log). *)
