type t = {
  path : string;
  size : unit -> int;
  pread : int -> int -> bytes;
  close : unit -> unit;
}

let of_bytes ~path buf =
  { path;
    size = (fun () -> Bytes.length buf);
    pread =
      (fun off len ->
        if off < 0 || len < 0 || off + len > Bytes.length buf then
          invalid_arg "Io_port.pread: out of range";
        Bytes.sub buf off len);
    close = (fun () -> ()) }

let of_file path =
  let ic = open_in_bin path in
  { path;
    size = (fun () -> in_channel_length ic);
    pread =
      (fun off len ->
        if off < 0 || len < 0 || off + len > in_channel_length ic then
          invalid_arg "Io_port.pread: out of range";
        seek_in ic off;
        let buf = Bytes.create len in
        really_input ic buf 0 len;
        buf);
    close = (fun () -> close_in ic) }

let with_file path f =
  let port = of_file path in
  Fun.protect ~finally:port.close (fun () -> f port)
