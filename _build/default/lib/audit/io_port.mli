(** Positional-read I/O ports.

    A port is the seam at which Kondo's auditing interposes: every byte an
    application reads flows through [pread].  Real files and in-memory
    buffers both implement it, and {!Tracer.wrap} produces a port that
    logs events before delegating.  This substitutes for Sciunit's
    ptrace-based syscall interception (see DESIGN.md §5). *)

type t = {
  path : string;
  size : unit -> int;
  pread : int -> int -> bytes;
    (** [pread off len] returns exactly the requested bytes;
        raises [Invalid_argument] when the range exceeds the file. *)
  close : unit -> unit;
}

val of_bytes : path:string -> bytes -> t
(** In-memory port (no OS I/O). *)

val of_file : string -> t
(** Open a real file for positional reads. *)

val with_file : string -> (t -> 'a) -> 'a
(** Open, apply, close (also on exception). *)
