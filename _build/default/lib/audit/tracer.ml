open Kondo_interval
type key = int * string (* pid, path *)

type t = {
  mutable events_rev : Event.t list;
  mutable next_seq : int;
  index : (key, int Interval_btree.t) Hashtbl.t; (* payload: event seq *)
}

let create () = { events_rev = []; next_seq = 0; index = Hashtbl.create 16 }

let tree_for t key =
  match Hashtbl.find_opt t.index key with
  | Some tree -> tree
  | None ->
    let tree = Interval_btree.create () in
    Hashtbl.add t.index key tree;
    tree

let record t ~pid ~path ~op ~offset ~size =
  let e = { Event.seq = t.next_seq; pid; path; op; offset; size } in
  t.next_seq <- t.next_seq + 1;
  t.events_rev <- e :: t.events_rev;
  if Event.is_access e && size > 0 then
    Interval_btree.insert (tree_for t (pid, path)) (Event.interval e) e.Event.seq;
  e

let wrap t ~pid (port : Io_port.t) =
  let path = port.Io_port.path in
  ignore (record t ~pid ~path ~op:Event.Open ~offset:0 ~size:0);
  { Io_port.path;
    size = port.Io_port.size;
    pread =
      (fun off len ->
        ignore (record t ~pid ~path ~op:Event.Read ~offset:off ~size:len);
        port.Io_port.pread off len);
    close =
      (fun () ->
        ignore (record t ~pid ~path ~op:Event.Close ~offset:0 ~size:0);
        port.Io_port.close ()) }

let events t = List.rev t.events_rev
let event_count t = t.next_seq

let offsets t ~pid ~path =
  match Hashtbl.find_opt t.index (pid, path) with
  | None -> Interval_set.empty
  | Some tree -> Interval_btree.coalesced tree

let offsets_of_path t ~path =
  Hashtbl.fold
    (fun (_, p) tree acc ->
      if String.equal p path then Interval_set.union acc (Interval_btree.coalesced tree)
      else acc)
    t.index Interval_set.empty

let paths t =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter (fun (_, p) _ -> Hashtbl.replace tbl p ()) t.index;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) tbl [])

let pids t =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter (fun (pid, _) _ -> Hashtbl.replace tbl pid ()) t.index;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) tbl [])

let lookup t ~pid ~path probe =
  match Hashtbl.find_opt t.index (pid, path) with
  | None -> []
  | Some tree -> Interval_btree.overlapping tree probe

let reset t =
  t.events_rev <- [];
  t.next_seq <- 0;
  Hashtbl.reset t.index
