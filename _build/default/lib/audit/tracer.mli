open Kondo_interval
(** The fine-grained auditing system [AS] (paper §II, §IV-C).

    A tracer owns an append-only event log plus, per (process, file), an
    {!Interval_btree} indexing the byte ranges the process touched —
    enabling the per-process offset-range lookups of §IV-C.  Wrapping an
    {!Io_port} makes every positional read emit a [Read] event before the
    bytes are delivered, mirroring syscall interposition. *)

type t

val create : unit -> t

val record : t -> pid:int -> path:string -> op:Event.op -> offset:int -> size:int -> Event.t
(** Append an event and index its byte range. *)

val wrap : t -> pid:int -> Io_port.t -> Io_port.t
(** Audited view of a port: [pread] logs a [Read] event; [close] logs a
    [Close].  An [Open] event is logged immediately. *)

val events : t -> Event.t list
(** In log order. *)

val event_count : t -> int

val offsets : t -> pid:int -> path:string -> Interval_set.t
(** Coalesced byte ranges accessed by one process in one file. *)

val offsets_of_path : t -> path:string -> Interval_set.t
(** Coalesced ranges accessed by {e any} process — the merged view of the
    §IV-C example (events from P1 and P2 merge to (0,120) and (130,150)). *)

val paths : t -> string list
(** Files with at least one access event, sorted. *)

val pids : t -> int list

val lookup : t -> pid:int -> path:string -> Interval.t -> (Interval.t * int) list
(** Raw B-tree overlap query: (range, event seq) pairs overlapping the
    probe, for one process. *)

val reset : t -> unit
