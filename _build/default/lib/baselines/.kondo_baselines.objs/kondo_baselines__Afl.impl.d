lib/baselines/afl.ml: Array Bytes Char Hashtbl Index_set Kondo_dataarray Kondo_prng Kondo_workload List Program Rng Shape String Unix
