lib/baselines/afl.mli: Index_set Kondo_dataarray Kondo_workload Program
