lib/baselines/brute_force.ml: Index_set Kondo_dataarray Kondo_workload List Program Unix
