lib/baselines/brute_force.mli: Index_set Kondo_dataarray Kondo_workload Program
