lib/baselines/hybrid.ml: Afl Carver Config Index_set Kondo_core Kondo_dataarray Kondo_workload Option Pipeline Program Schedule Unix
