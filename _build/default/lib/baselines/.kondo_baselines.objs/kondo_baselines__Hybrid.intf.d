lib/baselines/hybrid.mli: Config Index_set Kondo_core Kondo_dataarray Kondo_workload Pipeline Program
