lib/baselines/simple_convex.ml: Carver Index_set Kondo_core Kondo_dataarray Kondo_geometry Kondo_workload List Program Schedule Unix
