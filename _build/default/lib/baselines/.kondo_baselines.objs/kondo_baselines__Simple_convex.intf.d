lib/baselines/simple_convex.mli: Config Index_set Kondo_core Kondo_dataarray Kondo_workload Program Schedule
