open Kondo_prng
open Kondo_dataarray
open Kondo_workload

type result = {
  indices : Index_set.t;
  executions : int;
  queue_entries : int;
  coverage_edges : int;
  elapsed : float;
}

let field_width = 8

(* atoi semantics on one field: optional sign, then leading digits; a
   field without leading digits parses to 0.  This mirrors fuzzing a
   program that reads its parameters from argv text, which is how AFL
   actually reaches integer-parameter programs. *)
let atoi_field input off =
  let stop = off + field_width in
  let rec skip_space i = if i < stop && Bytes.get input i = ' ' then skip_space (i + 1) else i in
  let i = skip_space off in
  let sign, i =
    if i < stop && Bytes.get input i = '-' then (-1, i + 1)
    else if i < stop && Bytes.get input i = '+' then (1, i + 1)
    else (1, i)
  in
  let rec digits i acc =
    if i < stop then begin
      let c = Bytes.get input i in
      if c >= '0' && c <= '9' then digits (i + 1) ((acc * 10) + (Char.code c - Char.code '0'))
      else acc
    end
    else acc
  in
  sign * digits i 0

let decode_params p input =
  Array.init (Program.arity p) (fun k -> float_of_int (atoi_field input (k * field_width)))

let interesting_bytes = [ 0; 1; 0x7F; 0x80; 0xFF; 16; 32; 64 ]

exception Out_of_budget

let run ?(seed = 1) ?time_budget ?max_execs p =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create seed in
  let m = Program.arity p in
  let input_len = field_width * m in
  let indices = Index_set.create p.Program.shape in
  let coverage : (int, unit) Hashtbl.t = Hashtbl.create 65536 in
  let queue : bytes array ref = ref [||] in
  let executions = ref 0 in
  let push input = queue := Array.append !queue [| Bytes.copy input |] in
  let check_budget () =
    (match max_execs with Some m when !executions >= m -> raise Out_of_budget | _ -> ());
    match time_budget with
    | Some budget when !executions land 15 = 0 && Unix.gettimeofday () -. t0 > budget ->
      raise Out_of_budget
    | _ -> ()
  in
  (* One execution: decode, run the instrumented program, update the
     coverage map and the accumulated index set.  Returns whether any new
     edge fired (AFL's "interesting" test). *)
  let execute input =
    check_budget ();
    incr executions;
    let v = decode_params p input in
    let fresh = ref false in
    let on_edge edge =
      if not (Hashtbl.mem coverage edge) then begin
        Hashtbl.add coverage edge ();
        fresh := true
      end;
      if edge >= 2 then begin
        let idx = Shape.delinearize p.Program.shape (edge - 2) in
        ignore (Index_set.add_if_in_bounds indices idx)
      end
    in
    (* The containerized entrypoint validates its PARAM ranges: inputs
       decoding outside Θ exercise only the rejection branch, which is
       why AFL's precision is 1 by construction (paper §V-D2). *)
    if Program.in_space p v then Program.coverage p v on_edge else on_edge 0;
    !fresh
  in
  let try_input input = if execute input then push input in
  (* Deterministic stage on one queue entry: walking bitflips, byte
     arithmetic, interesting byte values. *)
  let deterministic input =
    let buf = Bytes.copy input in
    for bit = 0 to (input_len * 8) - 1 do
      let b = bit / 8 and o = bit mod 8 in
      Bytes.set_uint8 buf b (Bytes.get_uint8 buf b lxor (1 lsl o));
      try_input buf;
      Bytes.set_uint8 buf b (Bytes.get_uint8 buf b lxor (1 lsl o))
    done;
    for b = 0 to input_len - 1 do
      let orig = Bytes.get_uint8 buf b in
      List.iter
        (fun delta ->
          Bytes.set_uint8 buf b ((orig + delta) land 0xFF);
          try_input buf)
        [ 1; -1; 4; -4; 16; -16 ];
      List.iter
        (fun v ->
          Bytes.set_uint8 buf b v;
          try_input buf)
        interesting_bytes;
      Bytes.set_uint8 buf b orig
    done
  in
  let havoc input =
    let buf = Bytes.copy input in
    let stack = 2 + Rng.int rng 5 in
    for _ = 1 to stack do
      let b = Rng.int rng input_len in
      match Rng.int rng 4 with
      | 0 -> Bytes.set_uint8 buf b (Bytes.get_uint8 buf b lxor (1 lsl Rng.int rng 8))
      | 1 -> Bytes.set buf b (Rng.byte rng)
      | 2 -> Bytes.set_uint8 buf b ((Bytes.get_uint8 buf b + Rng.int_in rng (-35) 35) land 0xFF)
      | _ -> Bytes.set_uint8 buf b (List.nth interesting_bytes (Rng.int rng (List.length interesting_bytes)))
    done;
    try_input buf
  in
  (try
     (* Seed corpus: the container's CMD-style sample input (mid-range
        valid parameters rendered as text) plus a few random inputs. *)
     let sample = Bytes.make input_len ' ' in
     Array.iteri
       (fun k (lo, hi) ->
         let s = string_of_int (int_of_float ((lo +. hi) /. 2.0)) in
         Bytes.blit_string s 0 sample (k * field_width) (min field_width (String.length s)))
       p.Program.param_space;
     ignore (execute sample);
     push sample;
     for _ = 1 to 7 do
       let input = Bytes.init input_len (fun _ -> Rng.byte rng) in
       ignore (execute input);
       push input
     done;
     let cursor = ref 0 in
     while true do
       if Array.length !queue = 0 then begin
         let input = Bytes.init input_len (fun _ -> Rng.byte rng) in
         ignore (execute input);
         push input
       end;
       let entry = !queue.(!cursor mod Array.length !queue) in
       incr cursor;
       deterministic entry;
       for _ = 1 to 64 do
         havoc entry
       done
     done
   with Out_of_budget -> ());
  { indices;
    executions = !executions;
    queue_entries = Array.length !queue;
    coverage_edges = Hashtbl.length coverage;
    elapsed = Unix.gettimeofday () -. t0 }
