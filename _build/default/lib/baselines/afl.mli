open Kondo_dataarray
open Kondo_workload

(** Mini-AFL: the code-coverage-guided fuzzing baseline (paper §V-C).

    A faithful small-scale reimplementation of American Fuzzy Lop's
    feedback loop: a queue of interesting inputs, a deterministic
    mutation stage (walking bitflips, byte arithmetic, interesting
    values) followed by stacked havoc mutations, and an edge-coverage
    map deciding which mutants are kept.

    Re-targeting to data coverage follows the paper exactly: the program
    is instrumented with one pseudo-branch per possible array index
    ({!Program.coverage}), so an input "covers" an index when its run
    accesses it.  The two pathologies the paper attributes to AFL arise
    naturally here: inputs are raw bytes, so most mutations decode to
    out-of-range or duplicate parameter values, and per-execution
    coverage bookkeeping over the index checks costs real time. *)

type result = {
  indices : Index_set.t;   (** indices whose pseudo-branch fired *)
  executions : int;
  queue_entries : int;     (** inputs that triggered new coverage *)
  coverage_edges : int;    (** distinct edges seen *)
  elapsed : float;
}

val run : ?seed:int -> ?time_budget:float -> ?max_execs:int -> Program.t -> result

val decode_params : Program.t -> bytes -> float array
(** How raw input bytes map to parameter values (one 8-byte ASCII field per
    parameter, unclamped — exposed for tests). *)
