open Kondo_dataarray
open Kondo_workload

type result = { indices : Index_set.t; evaluations : int; exhausted : bool; elapsed : float }

exception Out_of_budget

let run ?time_budget ?max_evals p =
  let t0 = Unix.gettimeofday () in
  let indices = Index_set.create p.Program.shape in
  let evaluations = ref 0 in
  let exhausted = ref true in
  (try
     Program.iter_param_space p (fun v ->
         (match max_evals with
         | Some m when !evaluations >= m ->
           exhausted := false;
           raise Out_of_budget
         | _ -> ());
         (match time_budget with
         | Some budget when !evaluations land 63 = 0 && Unix.gettimeofday () -. t0 > budget ->
           exhausted := false;
           raise Out_of_budget
         | _ -> ());
         incr evaluations;
         List.iter (fun slab -> Index_set.add_slab indices slab) (p.Program.plan v))
   with Out_of_budget -> ());
  { indices; evaluations = !evaluations; exhausted = !exhausted; elapsed = Unix.gettimeofday () -. t0 }
