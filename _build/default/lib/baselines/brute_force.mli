open Kondo_dataarray
open Kondo_workload

(** The Brute-Force baseline (paper §V-C).

    Executes the program on every integer parameter valuation of Θ in
    row-major order, recording accessed indices, until Θ is exhausted or
    a budget expires.  Given enough time BF computes the exact [I_Θ]
    (precision and recall 1); under a budget its recall is the fraction
    of the truth the enumerated prefix happens to cover. *)

type result = {
  indices : Index_set.t;
  evaluations : int;
  exhausted : bool;   (** whole Θ enumerated *)
  elapsed : float;
}

val run : ?time_budget:float -> ?max_evals:int -> Program.t -> result
(** Budgets: wall-clock seconds and/or evaluation count; omitted budgets
    are unbounded. *)
