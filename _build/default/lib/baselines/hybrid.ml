open Kondo_dataarray
open Kondo_workload
open Kondo_core

type result = {
  kondo : Pipeline.report;
  afl_extra : int;
  approx : Index_set.t;
  elapsed : float;
}

let run ~config ?afl_budget p =
  let t0 = Unix.gettimeofday () in
  let kondo = Pipeline.approximate ~config p in
  let budget =
    Option.value afl_budget ~default:(4 * kondo.Pipeline.fuzz.Schedule.evaluations)
  in
  let afl = Afl.run ~seed:config.Config.seed ~max_execs:budget p in
  let observed = Index_set.copy kondo.Pipeline.fuzz.Schedule.indices in
  let before = Index_set.cardinal observed in
  Index_set.union_into observed afl.Afl.indices;
  let afl_extra = Index_set.cardinal observed - before in
  let approx =
    if afl_extra = 0 then kondo.Pipeline.approx
    else begin
      let carve = Carver.carve ~config observed in
      let approx = Carver.rasterize p.Program.shape carve.Carver.hulls in
      Index_set.union_into approx observed;
      approx
    end
  in
  { kondo; afl_extra; approx; elapsed = Unix.gettimeofday () -. t0 }
