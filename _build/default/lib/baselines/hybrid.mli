open Kondo_dataarray
open Kondo_workload
open Kondo_core

(** The hybrid recall booster sketched as future work in paper §VI:
    "let Kondo run for some more time and in parallel consult other
    fuzzing schedules, such as those available in AFL, to determine if
    any other missed offsets are detected."

    Runs Kondo's pipeline, then a mini-AFL campaign with a secondary
    budget; indices AFL discovers that Kondo missed are unioned in and
    the combined observation set is re-carved. *)

type result = {
  kondo : Pipeline.report;     (** the primary pipeline's report *)
  afl_extra : int;             (** indices AFL observed that Kondo had not *)
  approx : Index_set.t;        (** final I'_Θ after union and re-carving *)
  elapsed : float;
}

val run : config:Config.t -> ?afl_budget:int -> Program.t -> result
(** [afl_budget] is the secondary campaign's execution budget (default:
    4x the primary schedule's evaluation count). *)
