open Kondo_dataarray
open Kondo_workload
open Kondo_core

type result = {
  fuzz : Schedule.result;
  approx : Index_set.t;
  hull_vertices : int;
  elapsed : float;
}

let run ~config p =
  let t0 = Unix.gettimeofday () in
  let fuzz = Schedule.run ~config p in
  let approx, hull_vertices =
    match Carver.single_hull fuzz.Schedule.indices with
    | None -> (Index_set.create p.Program.shape, 0)
    | Some hull ->
      let approx = Carver.rasterize p.Program.shape [ hull ] in
      Index_set.union_into approx fuzz.Schedule.indices;
      (approx, List.length (Kondo_geometry.Hull.vertices hull))
  in
  { fuzz; approx; hull_vertices; elapsed = Unix.gettimeofday () -. t0 }
