open Kondo_dataarray
open Kondo_workload
open Kondo_core

(** The Simple-Convex baseline (paper §V-C, Fig. 8's "SC").

    Kondo's own fuzzer feeding a {e single} global convex hull — the
    standard hull computation of the literature with no cell split and
    no bottom-up merging.  On disjoint or holed subsets the one hull
    swallows the gaps, which is exactly the precision loss Fig. 8
    contrasts Kondo against. *)

type result = {
  fuzz : Schedule.result;
  approx : Index_set.t;
  hull_vertices : int;  (** 0 when nothing was observed *)
  elapsed : float;
}

val run : config:Config.t -> Program.t -> result
