lib/container/image.ml: Bytes Filename Fun Hashtbl Int64 List Merkle Spec String
