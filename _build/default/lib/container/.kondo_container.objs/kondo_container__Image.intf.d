lib/container/image.mli: Merkle Spec
