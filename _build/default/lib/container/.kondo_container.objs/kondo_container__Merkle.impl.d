lib/container/merkle.ml: Bytes Char Int64 List Set
