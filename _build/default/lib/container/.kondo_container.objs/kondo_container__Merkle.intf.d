lib/container/merkle.mli: Set
