lib/container/registry.ml: Bytes Hashtbl Image Int64 List Merkle Spec
