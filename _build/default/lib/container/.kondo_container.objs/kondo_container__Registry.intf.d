lib/container/registry.mli: Image Merkle
