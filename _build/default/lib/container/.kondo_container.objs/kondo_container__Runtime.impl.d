lib/container/runtime.ml: Dtype Hyperslab Image Kondo_dataarray Kondo_h5 List Option Spec String Sys
