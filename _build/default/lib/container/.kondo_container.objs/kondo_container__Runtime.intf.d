lib/container/runtime.mli: Hyperslab Image Kondo_audit Kondo_dataarray Kondo_h5 Tracer
