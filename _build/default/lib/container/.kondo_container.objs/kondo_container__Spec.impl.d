lib/container/spec.ml: Array Buffer List Printf String
