lib/container/spec.mli:
