type layer =
  | Env of { cmd : string; bytes : int }
  | Data of { dst : string; content : bytes }

type t = { spec : Spec.t; layers : layer list }

(* Footprints of packages that appear in the paper's example spec, plus a
   hash-derived default so arbitrary RUN lines get a stable size. *)
let known_packages =
  [ ("gcc", 92 * 1024 * 1024);
    ("libhdf5-dev", 34 * 1024 * 1024);
    ("python3", 48 * 1024 * 1024);
    ("libnetcdf-dev", 21 * 1024 * 1024) ]

let env_layer_size cmd =
  let matched =
    List.fold_left
      (fun acc (pkg, sz) ->
        (* substring search *)
        let contains () =
          let lp = String.length pkg and lc = String.length cmd in
          let rec go i = i + lp <= lc && (String.sub cmd i lp = pkg || go (i + 1)) in
          go 0
        in
        if contains () then acc + sz else acc)
      0 known_packages
  in
  if matched > 0 then matched
  else begin
    let h = Hashtbl.hash cmd in
    (1 * 1024 * 1024) + (h mod (8 * 1024 * 1024))
  end

let build spec ~fetch =
  let env_layers = List.map (fun cmd -> Env { cmd; bytes = env_layer_size cmd }) spec.Spec.env_deps in
  let data_layers =
    List.map (fun d -> Data { dst = d.Spec.dst; content = fetch d.Spec.src }) spec.Spec.data_deps
  in
  { spec; layers = env_layers @ data_layers }

let layer_size = function Env e -> e.bytes | Data d -> Bytes.length d.content

let size t = List.fold_left (fun acc l -> acc + layer_size l) 0 t.layers

let env_size t =
  List.fold_left (fun acc l -> match l with Env _ -> acc + layer_size l | Data _ -> acc) 0 t.layers

let data_size t =
  List.fold_left (fun acc l -> match l with Data _ -> acc + layer_size l | Env _ -> acc) 0 t.layers

let data_content t ~dst =
  List.find_map
    (function Data d when String.equal d.dst dst -> Some d.content | Data _ | Env _ -> None)
    t.layers

let replace_data t ~dst content =
  let found = ref false in
  let layers =
    List.map
      (function
        | Data d when String.equal d.dst dst ->
          found := true;
          Data { d with content }
        | l -> l)
      t.layers
  in
  if not !found then raise Not_found;
  { t with layers }

let sanitize dst =
  String.map (function '/' | '\\' -> '_' | c -> c) dst

let materialize t ~dir =
  List.filter_map
    (function
      | Env _ -> None
      | Data d ->
        let path = Filename.concat dir (sanitize d.dst) in
        let oc = open_out_bin path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc d.content);
        Some (d.dst, path))
    t.layers

let data_trees t =
  List.filter_map (function Env _ -> None | Data d -> Some (Merkle.build d.content)) t.layers

let chunk_hashes t =
  List.fold_left
    (fun acc tree -> Merkle.HashSet.union acc (Merkle.chunk_hash_set tree))
    Merkle.HashSet.empty (data_trees t)

let transfer_size t ~have =
  (* Env layers transfer whole unless already present (identified by cmd
     hash); data layers dedup at chunk granularity. *)
  let env_bytes =
    List.fold_left
      (fun acc l ->
        match l with
        | Env e ->
          if Merkle.HashSet.mem (Int64.of_int (Hashtbl.hash e.cmd)) have then acc else acc + e.bytes
        | Data _ -> acc)
      0 t.layers
  in
  env_bytes
  + List.fold_left (fun acc tree -> acc + Merkle.transfer_size ~have tree) 0 (data_trees t)
