(** Built container images.

    An image realizes a {!Spec}: one layer per environment dependency
    (sized by a deterministic model of package footprints — the E's of
    Fig. 2 are not what Kondo debloats, but their size matters for the
    bloat accounting in the examples) and one layer per data dependency
    holding the actual file bytes. *)

type layer =
  | Env of { cmd : string; bytes : int }
  | Data of { dst : string; content : bytes }

type t = { spec : Spec.t; layers : layer list }

val build : Spec.t -> fetch:(string -> bytes) -> t
(** [build spec ~fetch] assembles an image; [fetch src] supplies the
    content of each data dependency (e.g. [Bytes] of a KH5 file). *)

val env_layer_size : string -> int
(** The deterministic package-footprint model (exposed for tests). *)

val size : t -> int
val env_size : t -> int
val data_size : t -> int

val data_content : t -> dst:string -> bytes option

val replace_data : t -> dst:string -> bytes -> t
(** Swap a data layer's content (how the developer ships the debloated
    file, §III).  @raise Not_found for unknown destinations. *)

val materialize : t -> dir:string -> (string * string) list
(** Write every data layer under [dir]; returns [(dst, local_path)]
    mappings ready for {!Kondo_h5.File.open_file}. *)

val transfer_size : t -> have:Merkle.HashSet.t -> int
(** Bytes a user holding the given chunk set must download (content-
    defined Merkle dedup across layers). *)

val chunk_hashes : t -> Merkle.HashSet.t
