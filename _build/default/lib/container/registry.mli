(** A content-addressed container registry.

    Models the distribution side of the debloating story (paper refs
    [6] Slacker and [31] content-defined Merkle trees): images are pushed
    as manifests referencing content-defined chunks, chunks deduplicate
    across images and versions, and a pull transfers only the chunks the
    client does not already hold.  This is what makes shipping a
    debloated image next to the original cheap: the kept data chunks are
    shared. *)

type t

val create : unit -> t

val push : t -> name:string -> Image.t -> int
(** Store an image under [name]; returns the bytes of {e new} chunks
    actually added to the store (0 when everything deduplicated). *)

val pull : t -> name:string -> have:Merkle.HashSet.t -> (Image.t * int)
(** Reconstruct the image and report the bytes a client holding [have]
    transfers (env layers count fully unless the exact layer is held —
    identified by its command hash, like a cached base layer).
    @raise Not_found for unknown names. *)

val manifest_names : t -> string list
val chunk_count : t -> int
val stored_bytes : t -> int
(** Data bytes in the chunk store (deduplicated). *)

val chunks_of : t -> name:string -> Merkle.HashSet.t
(** The chunk set of a stored image (what a client holds after pulling
    it).  @raise Not_found. *)

val gc : t -> keep:string list -> int
(** Drop manifests not in [keep] and unreferenced chunks; returns bytes
    reclaimed.  @raise Not_found when a kept name is unknown. *)
