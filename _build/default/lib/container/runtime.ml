open Kondo_dataarray
module Kfile = Kondo_h5.File

type stats = {
  mutable reads : int;
  mutable misses : int;
  mutable remote_fetches : int;
  mutable remote_bytes : int;
}

type mount = {
  dst : string;
  local : Kfile.t;
  src : string; (* original source path, the "remote server" copy *)
  mutable remote_file : Kfile.t option;
}

type t = { image : Image.t; mounts : mount list; remote : bool; stats : stats }

let boot ?tracer ?(remote = false) ~image ~dir () =
  let mapping = Image.materialize image ~dir in
  let mounts =
    List.map
      (fun (dst, path) ->
        let src =
          match Spec.data_dep_for image.Image.spec dst with
          | Some d -> d.Spec.src
          | None -> ""
        in
        { dst; local = Kfile.open_file ?tracer path; src; remote_file = None })
      mapping
  in
  { image; mounts; remote; stats = { reads = 0; misses = 0; remote_fetches = 0; remote_bytes = 0 } }

let mount t dst =
  match List.find_opt (fun m -> String.equal m.dst dst) t.mounts with
  | Some m -> m
  | None -> raise Not_found

let file t ~dst = (mount t dst).local

let remote_file t m =
  match m.remote_file with
  | Some f -> Some f
  | None ->
    if t.remote && m.src <> "" && Sys.file_exists m.src then begin
      let f = Kfile.open_file m.src in
      m.remote_file <- Some f;
      Some f
    end
    else None

let read_element t ~dst ~dataset idx =
  let m = mount t dst in
  t.stats.reads <- t.stats.reads + 1;
  try Kfile.read_element m.local dataset idx
  with Kfile.Data_missing _ as exn -> (
    t.stats.misses <- t.stats.misses + 1;
    match remote_file t m with
    | Some f ->
      let v = Kfile.read_element f dataset idx in
      t.stats.remote_fetches <- t.stats.remote_fetches + 1;
      let ds = Kfile.find f dataset in
      t.stats.remote_bytes <- t.stats.remote_bytes + Dtype.size ds.Kondo_h5.Dataset.dtype;
      v
    | None -> raise exn)

let read_slab t ~dst ~dataset slab f =
  let m = mount t dst in
  let shape = (Kfile.find m.local dataset).Kondo_h5.Dataset.shape in
  Hyperslab.iter ~clip:shape slab (fun idx -> f idx (read_element t ~dst ~dataset idx))

let stats t = t.stats

let shutdown t =
  List.iter
    (fun m ->
      Kfile.close m.local;
      Option.iter Kfile.close m.remote_file)
    t.mounts
