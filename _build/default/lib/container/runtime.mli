open Kondo_dataarray
open Kondo_audit

(** Kondo's user-side runtime (paper §III).

    Boots an image in a directory, opens its (possibly debloated) data
    files, and serves reads.  An access to a carved-away offset raises
    the data-missing exception — or, when remote fallback is enabled
    (§VI), transparently fetches the value from the original file at its
    source location, as a container runtime would pull missing offsets
    from a remote server.  Statistics record how often either happened. *)

type stats = {
  mutable reads : int;          (** element reads served *)
  mutable misses : int;         (** reads that hit carved-away data *)
  mutable remote_fetches : int; (** misses satisfied remotely *)
  mutable remote_bytes : int;   (** bytes pulled from the remote source *)
}

type t

val boot : ?tracer:Tracer.t -> ?remote:bool -> image:Image.t -> dir:string -> unit -> t
(** Materialize the image's data layers under [dir] and open them.
    [remote] (default false) enables fallback to each data dependency's
    [src] file.  [tracer] audits the container's reads. *)

val read_element : t -> dst:string -> dataset:string -> int array -> float
(** @raise Kondo_h5.File.Data_missing when the offset was carved away
    and remote fallback is off or the source file is unavailable. *)

val read_slab :
  t -> dst:string -> dataset:string -> Hyperslab.t -> (int array -> float -> unit) -> unit

val file : t -> dst:string -> Kondo_h5.File.t
(** Direct access to an opened data file. *)

val stats : t -> stats

val shutdown : t -> unit
