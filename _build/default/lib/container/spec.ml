type data_dep = { src : string; dst : string }

type t = {
  base : string;
  env_deps : string list;
  data_deps : data_dep list;
  param_space : (float * float) array;
  entrypoint : string option;
  cmd : string list;
}

let empty =
  { base = ""; env_deps = []; data_deps = []; param_space = [||]; entrypoint = None; cmd = [] }

let strip s = String.trim s

let split_on_commas s = List.map strip (String.split_on_char ',' s)

let unbracket s =
  let s = strip s in
  let n = String.length s in
  if n >= 2 && s.[0] = '[' && s.[n - 1] = ']' then Ok (String.sub s 1 (n - 2))
  else Error "expected [...]"

(* A range token is lo-hi where each bound is a decimal number; the '-'
   separating the bounds is the first '-' that is not a leading sign and
   not immediately after an exponent/sign position. *)
let parse_range tok =
  let tok = strip tok in
  let n = String.length tok in
  let rec find_sep i =
    if i >= n then None
    else if tok.[i] = '-' && i > 0 && tok.[i - 1] <> 'e' && tok.[i - 1] <> 'E' then Some i
    else find_sep (i + 1)
  in
  match find_sep 1 with
  | None -> Error (Printf.sprintf "bad range %S" tok)
  | Some i -> (
    let a = strip (String.sub tok 0 i) and b = strip (String.sub tok (i + 1) (n - i - 1)) in
    match (float_of_string_opt a, float_of_string_opt b) with
    | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
    | Some _, Some _ -> Error (Printf.sprintf "range %S: lo > hi" tok)
    | _ -> Error (Printf.sprintf "bad range %S" tok))

let parse_param_ranges s =
  match unbracket s with
  | Error e -> Error e
  | Ok inner ->
    let toks = split_on_commas inner in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | tok :: rest -> ( match parse_range tok with Ok r -> go (r :: acc) rest | Error e -> Error e)
    in
    go [] toks

let parse_quoted_list s =
  (* ["a", "b"] or bare tokens *)
  match unbracket s with
  | Error e -> Error e
  | Ok inner ->
    let clean tok =
      let tok = strip tok in
      let n = String.length tok in
      if n >= 2 && tok.[0] = '"' && tok.[n - 1] = '"' then String.sub tok 1 (n - 2) else tok
    in
    Ok (List.map clean (split_on_commas inner))

let directive line =
  match String.index_opt line ' ' with
  | None -> (String.uppercase_ascii (strip line), "")
  | Some i ->
    ( String.uppercase_ascii (String.sub line 0 i),
      strip (String.sub line (i + 1) (String.length line - i - 1)) )

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go spec lineno = function
    | [] ->
      Ok
        { spec with
          env_deps = List.rev spec.env_deps;
          data_deps = List.rev spec.data_deps;
          cmd = List.rev spec.cmd }
    | raw :: rest -> (
      let line = strip raw in
      if line = "" || line.[0] = '#' then go spec (lineno + 1) rest
      else begin
        let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
        match directive line with
        | "FROM", arg -> go { spec with base = arg } (lineno + 1) rest
        | ("RUN" | "WORKDIR" | "ENV"), arg ->
          go { spec with env_deps = arg :: spec.env_deps } (lineno + 1) rest
        | "ADD", arg -> (
          match String.split_on_char ' ' arg |> List.filter (fun s -> s <> "") with
          | [ src; dst ] ->
            go { spec with data_deps = { src; dst } :: spec.data_deps } (lineno + 1) rest
          | _ -> err "ADD expects source and destination")
        | "PARAM", arg -> (
          match parse_param_ranges arg with
          | Ok ranges -> go { spec with param_space = ranges } (lineno + 1) rest
          | Error e -> err e)
        | "ENTRYPOINT", arg -> (
          match parse_quoted_list arg with
          | Ok [ exe ] -> go { spec with entrypoint = Some exe } (lineno + 1) rest
          | Ok _ -> err "ENTRYPOINT expects one executable"
          | Error e -> err e)
        | "CMD", arg -> (
          match parse_quoted_list arg with
          | Ok args -> go { spec with cmd = List.rev args } (lineno + 1) rest
          | Error e -> err e)
        | d, _ -> err (Printf.sprintf "unknown directive %S" d)
      end)
  in
  go empty 1 lines

let to_string t =
  let b = Buffer.create 256 in
  if t.base <> "" then Buffer.add_string b (Printf.sprintf "FROM %s\n" t.base);
  List.iter (fun e -> Buffer.add_string b (Printf.sprintf "RUN %s\n" e)) t.env_deps;
  List.iter (fun d -> Buffer.add_string b (Printf.sprintf "ADD %s %s\n" d.src d.dst)) t.data_deps;
  if Array.length t.param_space > 0 then begin
    let ranges =
      Array.to_list (Array.map (fun (lo, hi) -> Printf.sprintf "%g-%g" lo hi) t.param_space)
    in
    Buffer.add_string b (Printf.sprintf "PARAM [%s]\n" (String.concat ", " ranges))
  end;
  (match t.entrypoint with
  | Some exe -> Buffer.add_string b (Printf.sprintf "ENTRYPOINT [\"%s\"]\n" exe)
  | None -> ());
  if t.cmd <> [] then
    Buffer.add_string b (Printf.sprintf "CMD [%s]\n" (String.concat ", " t.cmd));
  Buffer.contents b

let data_dep_for t dst = List.find_opt (fun d -> String.equal d.dst dst) t.data_deps
