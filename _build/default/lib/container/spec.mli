(** Container specifications (paper Fig. 2a).

    A specification lists environment dependencies (E's, from [RUN]
    lines), data dependencies (D's, from [ADD] lines), the entry
    executable (X̄), its supported parameter space (Θ, from the [PARAM]
    line) and a default command.  The concrete syntax is the Dockerfile
    dialect of Fig. 2:

    {v
    FROM ubuntu:20.04
    RUN apt-get install -y libhdf5-dev
    ADD ./mnist.h5 /stencil/mnist.h5
    PARAM [0-30, 300.00-1200.00, 0-50]
    ENTRYPOINT ["/stencil/CS"]
    CMD [30, 550.0, 10, /stencil/mnist.h5]
    v} *)

type data_dep = { src : string; dst : string }

type t = {
  base : string;                      (** FROM image *)
  env_deps : string list;             (** RUN command lines, in order *)
  data_deps : data_dep list;          (** ADD source/destination pairs *)
  param_space : (float * float) array;(** inclusive ranges from PARAM *)
  entrypoint : string option;
  cmd : string list;
}

val empty : t

val parse : string -> (t, string) result
(** Parse specification text.  Unknown directives and malformed lines
    produce [Error] with a line-numbered message; comments ([#]) and
    blank lines are skipped.  [WORKDIR]/[ENV] lines are accepted and
    folded into [env_deps]. *)

val parse_param_ranges : string -> ((float * float) array, string) result
(** Parse the bracketed range list of a PARAM directive, e.g.
    ["[0-30, 300.00-1200.00, 0-50]"]. *)

val to_string : t -> string
(** Render back in the Fig. 2 dialect. *)

val data_dep_for : t -> string -> data_dep option
(** Look up a data dependency by destination path. *)
