lib/core/campaign.ml: Bytes Carver Config Fun Index_set Int32 Kondo_dataarray Kondo_workload Program Schedule Shape String
