lib/core/campaign.mli: Config Index_set Kondo_dataarray Kondo_workload Program
