lib/core/carver.ml: Array Config Hashtbl Hull Index_set Kondo_dataarray Kondo_geometry List Shape
