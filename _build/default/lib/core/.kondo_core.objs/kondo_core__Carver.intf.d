lib/core/carver.mli: Config Hull Index_set Kondo_dataarray Kondo_geometry Shape
