lib/core/cluster.ml: Array Kondo_geometry List Vec
