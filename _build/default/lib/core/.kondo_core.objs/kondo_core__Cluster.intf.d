lib/core/cluster.mli: Kondo_geometry Vec
