lib/core/config.ml: Array Float
