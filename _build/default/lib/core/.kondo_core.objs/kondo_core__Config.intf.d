lib/core/config.mli:
