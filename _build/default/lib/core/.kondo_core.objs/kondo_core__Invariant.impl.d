lib/core/invariant.ml: Array Carver Float Hull Kondo_geometry List Printf String
