lib/core/invariant.mli: Carver Hull Kondo_geometry
