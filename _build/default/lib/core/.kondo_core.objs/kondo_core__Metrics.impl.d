lib/core/metrics.ml: Array Float Index_set Kondo_dataarray Kondo_prng Kondo_workload Program Rng
