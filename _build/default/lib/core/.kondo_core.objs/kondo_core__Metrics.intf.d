lib/core/metrics.mli: Index_set Kondo_dataarray Kondo_workload Program
