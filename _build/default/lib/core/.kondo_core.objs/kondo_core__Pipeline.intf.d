lib/core/pipeline.mli: Carver Config Index_set Interval_set Kondo_container Kondo_dataarray Kondo_interval Kondo_workload Layout Metrics Program Schedule
