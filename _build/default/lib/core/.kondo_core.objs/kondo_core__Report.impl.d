lib/core/report.ml: Buffer Carver Char Float Index_set Kondo_dataarray Kondo_workload List Metrics Pipeline Printf Program Schedule Shape String
