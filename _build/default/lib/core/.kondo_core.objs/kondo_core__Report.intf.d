lib/core/report.mli: Kondo_workload Metrics Pipeline Program Schedule
