lib/core/schedule.ml: Array Cluster Config Float Hashtbl Index_set Kondo_dataarray Kondo_prng Kondo_workload List Program Queue Rng String Unix
