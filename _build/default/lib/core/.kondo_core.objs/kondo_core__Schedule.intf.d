lib/core/schedule.mli: Config Index_set Kondo_dataarray Kondo_workload Program
