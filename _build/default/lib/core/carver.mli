open Kondo_dataarray
open Kondo_geometry

(** The convex-hull carver (paper Algorithm 2).

    SPLIT the observed index points into fixed-size grid cells, compute
    one convex hull per non-empty cell, then repeatedly merge hulls that
    are CLOSE — center distance and/or minimum vertex distance under the
    configured thresholds — until no pair is close.  The output hull set
    approximates [I_Θ] for subsets of arbitrary shape (overlapping,
    disjoint, or with holes).

    Cells holding more than [max_cell_points] points feed the hull a
    deterministic stride sample augmented with the per-axis extreme
    points (hull vertices are extreme, so the sample rarely changes the
    result; see DESIGN.md §4). *)

type result = {
  hulls : Hull.t list;
  initial_cells : int;   (** non-empty cells = hulls before merging *)
  merge_rounds : int;    (** sweeps of the merge loop *)
  merges : int;          (** pairs merged *)
}

val carve : config:Config.t -> Index_set.t -> result

val carve_points : config:Config.t -> dims:int array -> int array list -> result
(** Same, from an explicit point list. *)

val single_hull : Index_set.t -> Hull.t option
(** The Simple Convex baseline: one hull over all points, no cells, no
    merge ([None] when the set is empty). *)

val rasterize : Shape.t -> Hull.t list -> Index_set.t
(** All integer indices covered by the hulls, clipped to the shape. *)

val close : config:Config.t -> Hull.t -> Hull.t -> bool
(** The CLOSE predicate under the configured merge policy. *)
