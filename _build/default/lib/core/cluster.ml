open Kondo_geometry

type entry = { mutable center : Vec.t; mutable members : int }

type t = { diameter : float; mutable entries : entry list }

let create ~diameter = { diameter; entries = [] }

let nearest_entry t v =
  List.fold_left
    (fun best e ->
      let d = Vec.dist e.center v in
      match best with Some (_, bd) when bd <= d -> best | _ -> Some (e, d))
    None t.entries

let add t v =
  match nearest_entry t v with
  | Some (e, d) when d <= t.diameter ->
    let k = float_of_int e.members in
    e.center <- Array.mapi (fun i c -> ((c *. k) +. v.(i)) /. (k +. 1.0)) e.center;
    e.members <- e.members + 1
  | Some _ | None -> t.entries <- { center = Array.copy v; members = 1 } :: t.entries

let nearest t v =
  match nearest_entry t v with None -> None | Some (e, d) -> Some (e.center, d)

let centers t = List.map (fun e -> e.center) t.entries
let count t = List.length t.entries
let total_members t = List.fold_left (fun acc e -> acc + e.members) 0 t.entries
