open Kondo_geometry

(** Parameter-value clusters for the boundary-based EE schedule.

    The schedule keeps two cluster collections — useful and non-useful
    parameter values (paper §IV-A2).  ADD_TO_CLUSTER computes the minimum
    Euclidean distance of a value to the existing centers of the same
    type: beyond the configured diameter the value founds a new cluster,
    otherwise it joins the nearest one, whose center becomes the running
    mean of its members. *)

type t

val create : diameter:float -> t

val add : t -> Vec.t -> unit
(** ADD_TO_CLUSTER. *)

val nearest : t -> Vec.t -> (Vec.t * float) option
(** Nearest cluster center and its distance; [None] while empty. *)

val centers : t -> Vec.t list
val count : t -> int
val total_members : t -> int
