open Kondo_geometry

type t = Hull.halfspace list list

let of_hulls hulls = List.map Hull.halfspaces hulls

let of_carve (r : Carver.result) = of_hulls r.Carver.hulls

let clauses t = t

let satisfies ?eps t x = List.exists (fun clause -> Hull.satisfies_halfspaces ?eps clause x) t

let satisfies_int ?eps t idx = satisfies ?eps t (Array.map float_of_int idx)

let constraint_count t = List.fold_left (fun acc c -> acc + List.length c) 0 t

let default_name k = match k with 0 -> "i" | 1 -> "j" | 2 -> "k" | _ -> Printf.sprintf "x%d" k

let term_to_string names coeffs =
  let parts = ref [] in
  Array.iteri
    (fun k c ->
      if Float.abs c > 1e-12 then begin
        let name = names k in
        let part =
          if c = 1.0 then name
          else if c = -1.0 then "-" ^ name
          else Printf.sprintf "%g*%s" c name
        in
        parts := part :: !parts
      end)
    coeffs;
  match List.rev !parts with
  | [] -> "0"
  | first :: rest ->
    List.fold_left
      (fun acc p ->
        if String.length p > 0 && p.[0] = '-' then
          acc ^ " - " ^ String.sub p 1 (String.length p - 1)
        else acc ^ " + " ^ p)
      first rest

let constraint_to_string names (h : Hull.halfspace) =
  Printf.sprintf "%s %s %g" (term_to_string names h.Hull.coeffs)
    (if h.Hull.equality then "=" else "<=")
    h.Hull.rhs

let to_string ?names t =
  let name k =
    match names with Some a when k < Array.length a -> a.(k) | Some _ | None -> default_name k
  in
  match t with
  | [] -> "false"
  | _ ->
    String.concat "\n\\/ "
      (List.map
         (fun clause ->
           "(" ^ String.concat " /\\ " (List.map (constraint_to_string name) clause) ^ ")")
         t)
