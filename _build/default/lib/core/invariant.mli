open Kondo_geometry

(** Carved subsets as disjunctive linear invariants.

    §VII relates Kondo to invariant inference: the carved hull set is "an
    invariant involving the array access subscripts", and — unlike
    Daikon/DIG-style conjunctive inference — it is {e disjunctive}: a
    union of convex polytopes.  This module renders a carve result as
    exactly that formula, one clause of linear constraints per hull, so
    the inferred data subset can be read, logged, or compared like any
    other invariant. *)

type t
(** A disjunction of conjunctions of linear constraints over the index
    variables. *)

val of_hulls : Hull.t list -> t

val of_carve : Carver.result -> t

val clauses : t -> Hull.halfspace list list

val satisfies : ?eps:float -> t -> float array -> bool
(** [satisfies t x]: does some clause hold at [x]?  Agrees with hull
    membership. *)

val satisfies_int : ?eps:float -> t -> int array -> bool

val constraint_count : t -> int

val to_string : ?names:string array -> t -> string
(** Pretty form, e.g. [(i <= j + 1 /\ i >= 0) \/ (...)]; variable names
    default to i, j, k, x3, x4... *)
