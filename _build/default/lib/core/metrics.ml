open Kondo_prng
open Kondo_dataarray
open Kondo_workload

let precision ~truth ~approx =
  let denom = Index_set.cardinal approx in
  if denom = 0 then 1.0
  else float_of_int (Index_set.inter_cardinal truth approx) /. float_of_int denom

let recall ~truth ~approx =
  let denom = Index_set.cardinal truth in
  if denom = 0 then 1.0
  else float_of_int (Index_set.inter_cardinal truth approx) /. float_of_int denom

let bloat_fraction s = 1.0 -. Index_set.fraction s

let f1 ~truth ~approx =
  let p = precision ~truth ~approx and r = recall ~truth ~approx in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let valuation_missed p ~approx v =
  let missed = ref false in
  (try
     Program.iter_access p v (fun idx ->
         if not (Index_set.mem approx idx) then begin
           missed := true;
           raise Exit
         end)
   with Exit -> ());
  !missed

let missed_valuation_rate ?(max_enumerate = 100_000) ?(sample = 20_000) ?(seed = 7) p ~approx =
  let total = Program.param_count p in
  if total <= max_enumerate then begin
    let missed = ref 0 and n = ref 0 in
    Program.iter_param_space p (fun v ->
        incr n;
        if valuation_missed p ~approx v then incr missed);
    if !n = 0 then 0.0 else float_of_int !missed /. float_of_int !n
  end
  else begin
    let rng = Rng.create seed in
    let missed = ref 0 in
    for _ = 1 to sample do
      let v =
        Array.map (fun (lo, hi) -> Float.round (Rng.float_in rng lo hi)) p.Program.param_space
      in
      if valuation_missed p ~approx v then incr missed
    done;
    float_of_int !missed /. float_of_int sample
  end

type accuracy = { precision : float; recall : float; f1 : float; bloat : float }

let accuracy ~truth ~approx =
  { precision = precision ~truth ~approx;
    recall = recall ~truth ~approx;
    f1 = f1 ~truth ~approx;
    bloat = bloat_fraction approx }
