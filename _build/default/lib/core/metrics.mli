open Kondo_dataarray
open Kondo_workload

(** Accuracy metrics (paper §V-C).

    With ground truth [I_Θ] and Kondo's approximation [I'_Θ]:
    precision = |I_Θ ∩ I'_Θ| / |I'_Θ|, recall = |I_Θ ∩ I'_Θ| / |I_Θ|.
    The identified bloat fraction is |I − I'_Θ| / |I| over the whole
    index space [I] (Fig. 9). *)

val precision : truth:Index_set.t -> approx:Index_set.t -> float
(** 1.0 when [approx] is empty (nothing wrongly included). *)

val recall : truth:Index_set.t -> approx:Index_set.t -> float
(** 1.0 when [truth] is empty. *)

val bloat_fraction : Index_set.t -> float
(** [|I - S| / |I|] for a subset [S] of index space [I]. *)

val f1 : truth:Index_set.t -> approx:Index_set.t -> float

val missed_valuation_rate :
  ?max_enumerate:int -> ?sample:int -> ?seed:int -> Program.t -> approx:Index_set.t -> float
(** Fraction of parameter valuations [v ∈ Θ] whose run would hit at least
    one missed access ([I_v ⊄ I'_Θ], §V-D1).  Enumerates Θ exactly when
    [|Θ| <= max_enumerate] (default 100_000), else uniformly samples
    [sample] valuations (default 20_000). *)

type accuracy = { precision : float; recall : float; f1 : float; bloat : float }

val accuracy : truth:Index_set.t -> approx:Index_set.t -> accuracy
