open Kondo_dataarray
open Kondo_interval
open Kondo_workload

(** The end-to-end Kondo pipeline (paper Fig. 3).

    Sample → fuzz (Alg. 1) → carve (Alg. 2) → rasterize the hulls into
    the approximated index subset [I'_Θ] → translate to byte ranges →
    produce the debloated data file / container. *)

type report = {
  program : string;
  fuzz : Schedule.result;
  carve : Carver.result;
  approx : Index_set.t;   (** I'_Θ: hull lattice ∪ observed indices *)
  accuracy : Metrics.accuracy option;  (** vs ground truth, when computed *)
  elapsed : float;        (** total seconds: fuzz + carve + rasterize *)
}

val approximate : config:Config.t -> Program.t -> report
(** Run the pipeline; [accuracy] is [None] (no ground-truth pass). *)

val evaluate : config:Config.t -> Program.t -> report
(** {!approximate} plus ground-truth comparison. *)

val keep_intervals : Program.t -> Index_set.t -> layout:Layout.t -> Interval_set.t
(** Byte ranges of the logical data section covering every index of
    [I'_Θ] under the given physical layout (§IV-C's index↔offset map). *)

val debloat_file : config:Config.t -> Program.t -> src:string -> dst:string -> report
(** Read the program's dense KH5 file at [src], run the pipeline, and
    write the debloated KH5 file to [dst]. *)

val debloat_file_many :
  config:Config.t -> Program.t list -> src:string -> dst:string -> (string * report) list
(** Multi-dataset applications (paper footnote 1: "an application may use
    multiple data files, each self-describing").  Each program reads its
    own dataset of the KH5 file at [src]; every dataset is debloated to
    the union of its programs' approximations, and datasets no program
    reads are dropped entirely — the file-level debloating classic
    lineage systems already provide (§II's D₂ case).  Returns one report
    per program. *)

val debloat_image :
  config:Config.t -> Program.t -> image:Kondo_container.Image.t -> dst:string ->
  Kondo_container.Image.t * report
(** Replace the data layer [dst] of a container image with its debloated
    KH5 content (the developer-side step of §III). *)
