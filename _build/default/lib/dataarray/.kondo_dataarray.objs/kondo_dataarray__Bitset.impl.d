lib/dataarray/bitset.ml: Array Bytes Char
