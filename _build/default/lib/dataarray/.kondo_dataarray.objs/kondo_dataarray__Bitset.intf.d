lib/dataarray/bitset.mli:
