lib/dataarray/dtype.ml: Bytes Int32 Int64
