lib/dataarray/dtype.mli:
