lib/dataarray/hyperslab.ml: Array Option Printf Shape String
