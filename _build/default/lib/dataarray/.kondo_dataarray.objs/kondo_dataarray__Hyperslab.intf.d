lib/dataarray/hyperslab.mli: Shape
