lib/dataarray/index_set.ml: Array Bitset Bytes Hyperslab Int32 Kondo_prng List Shape
