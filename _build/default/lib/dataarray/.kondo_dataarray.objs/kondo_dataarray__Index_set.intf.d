lib/dataarray/index_set.mli: Hyperslab Kondo_prng Shape
