lib/dataarray/layout.ml: Array Dtype Shape String
