lib/dataarray/layout.mli: Dtype Shape
