lib/dataarray/shape.ml: Array String
