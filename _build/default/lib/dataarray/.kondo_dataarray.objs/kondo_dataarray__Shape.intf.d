lib/dataarray/shape.mli:
