type t = { buf : Bytes.t; capacity : int; mutable cardinal : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { buf = Bytes.make ((n + 7) / 8) '\000'; capacity = n; cardinal = 0 }

let capacity t = t.capacity

let check t i = if i < 0 || i >= t.capacity then invalid_arg "Bitset: out of range"

let get_byte t i = Char.code (Bytes.unsafe_get t.buf (i lsr 3))

let mem t i =
  check t i;
  get_byte t i land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let b = get_byte t i and bit = 1 lsl (i land 7) in
  if b land bit = 0 then begin
    Bytes.unsafe_set t.buf (i lsr 3) (Char.unsafe_chr (b lor bit));
    t.cardinal <- t.cardinal + 1
  end

let clear t i =
  check t i;
  let b = get_byte t i and bit = 1 lsl (i land 7) in
  if b land bit <> 0 then begin
    Bytes.unsafe_set t.buf (i lsr 3) (Char.unsafe_chr (b land lnot bit));
    t.cardinal <- t.cardinal - 1
  end

let cardinal t = t.cardinal

let copy t = { buf = Bytes.copy t.buf; capacity = t.capacity; cardinal = t.cardinal }

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun b -> table.(b)

let union_into dst src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  let n = Bytes.length dst.buf in
  let card = ref 0 in
  for i = 0 to n - 1 do
    let d = Char.code (Bytes.unsafe_get dst.buf i) and s = Char.code (Bytes.unsafe_get src.buf i) in
    let u = d lor s in
    Bytes.unsafe_set dst.buf i (Char.unsafe_chr u);
    card := !card + popcount_byte u
  done;
  dst.cardinal <- !card

let inter_cardinal a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.inter_cardinal: capacity mismatch";
  let n = Bytes.length a.buf in
  let card = ref 0 in
  for i = 0 to n - 1 do
    card :=
      !card
      + popcount_byte (Char.code (Bytes.unsafe_get a.buf i) land Char.code (Bytes.unsafe_get b.buf i))
  done;
  !card

let diff_cardinal a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.diff_cardinal: capacity mismatch";
  let n = Bytes.length a.buf in
  let card = ref 0 in
  for i = 0 to n - 1 do
    card :=
      !card
      + popcount_byte
          (Char.code (Bytes.unsafe_get a.buf i) land lnot (Char.code (Bytes.unsafe_get b.buf i)) land 0xFF)
  done;
  !card

let iter t f =
  for i = 0 to t.capacity - 1 do
    if get_byte t i land (1 lsl (i land 7)) <> 0 then f i
  done

let is_empty t = t.cardinal = 0

let equal a b = a.capacity = b.capacity && Bytes.equal a.buf b.buf

let subset a b =
  a.capacity = b.capacity
  &&
  let n = Bytes.length a.buf in
  let ok = ref true in
  for i = 0 to n - 1 do
    let x = Char.code (Bytes.unsafe_get a.buf i) and y = Char.code (Bytes.unsafe_get b.buf i) in
    if x land lnot y land 0xFF <> 0 then ok := false
  done;
  !ok
