(** Fixed-capacity bitsets.

    Index subsets over the default evaluation shapes reach millions of
    elements (2048 x 2048); a byte-packed bitset keeps membership, union
    and intersection cheap for ground truth and precision/recall math. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val capacity : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val copy : t -> t
val union_into : t -> t -> unit
(** [union_into dst src] adds all of [src] to [dst]; capacities must match. *)

val inter_cardinal : t -> t -> int
val diff_cardinal : t -> t -> int
(** [diff_cardinal a b] is [|a \ b|]. *)

val iter : t -> (int -> unit) -> unit
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b]: every member of [a] is in [b]. *)
