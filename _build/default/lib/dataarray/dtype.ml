type t = Int32 | Int64 | Float32 | Float64 | Long_double

let size = function
  | Int32 -> 4
  | Int64 -> 8
  | Float32 -> 4
  | Float64 -> 8
  | Long_double -> 16

let to_string = function
  | Int32 -> "int32"
  | Int64 -> "int64"
  | Float32 -> "float32"
  | Float64 -> "float64"
  | Long_double -> "long_double"

let of_string = function
  | "int32" -> Some Int32
  | "int64" -> Some Int64
  | "float32" -> Some Float32
  | "float64" -> Some Float64
  | "long_double" -> Some Long_double
  | _ -> None

let code = function Int32 -> 1 | Int64 -> 2 | Float32 -> 3 | Float64 -> 4 | Long_double -> 5

let of_code = function
  | 1 -> Some Int32
  | 2 -> Some Int64
  | 3 -> Some Float32
  | 4 -> Some Float64
  | 5 -> Some Long_double
  | _ -> None

let encode dt v buf off =
  match dt with
  | Int32 -> Bytes.set_int32_le buf off (Int32.of_float v)
  | Int64 -> Bytes.set_int64_le buf off (Int64.of_float v)
  | Float32 -> Bytes.set_int32_le buf off (Int32.bits_of_float v)
  | Float64 -> Bytes.set_int64_le buf off (Int64.bits_of_float v)
  | Long_double ->
    Bytes.set_int64_le buf off (Int64.bits_of_float v);
    Bytes.set_int64_le buf (off + 8) 0L

let decode dt buf off =
  match dt with
  | Int32 -> Int32.to_float (Bytes.get_int32_le buf off)
  | Int64 -> Int64.to_float (Bytes.get_int64_le buf off)
  | Float32 -> Int32.float_of_bits (Bytes.get_int32_le buf off)
  | Float64 | Long_double -> Int64.float_of_bits (Bytes.get_int64_le buf off)

let all = [ Int32; Int64; Float32; Float64; Long_double ]
