(** Element datatypes of a data array.

    The paper assumes 16-byte long doubles (§V-B); KH5 files support the
    common numeric widths so the byte-offset arithmetic is exercised with
    more than one element size. *)

type t =
  | Int32
  | Int64
  | Float32
  | Float64
  | Long_double  (** 16-byte extended float, stored as a float64 plus padding *)

val size : t -> int
(** Element size in bytes. *)

val to_string : t -> string

val of_string : string -> t option

val code : t -> int
(** Stable on-disk tag. *)

val of_code : int -> t option

val encode : t -> float -> bytes -> int -> unit
(** [encode dt v buf off] writes [v] at byte offset [off] of [buf]
    (little-endian). *)

val decode : t -> bytes -> int -> float
(** Inverse of {!encode} (lossy for integer types, by design: the array
    model carries numeric values as floats). *)

val all : t list
