type t = { start : int array; stride : int array; count : int array; block : int array }

let make ~start ?stride ?count ?block () =
  let rank = Array.length start in
  let dflt v = Array.make rank v in
  let stride = Option.value stride ~default:(dflt 1) in
  let count = Option.value count ~default:(dflt 1) in
  let block = Option.value block ~default:(dflt 1) in
  if Array.length stride <> rank || Array.length count <> rank || Array.length block <> rank
  then invalid_arg "Hyperslab.make: rank mismatch";
  Array.iter (fun v -> if v < 1 then invalid_arg "Hyperslab.make: stride < 1") stride;
  Array.iter (fun v -> if v < 1 then invalid_arg "Hyperslab.make: count < 1") count;
  Array.iter (fun v -> if v < 1 then invalid_arg "Hyperslab.make: block < 1") block;
  { start = Array.copy start; stride; count; block }

let point start = make ~start ()

let block_at start extent =
  make ~start ~block:extent ()

let rank t = Array.length t.start

let nelems t =
  let n = ref 1 in
  for k = 0 to rank t - 1 do
    n := !n * t.count.(k) * t.block.(k)
  done;
  !n

let iter ?clip t f =
  let r = rank t in
  let cur = Array.make r 0 in
  let ok idx = match clip with None -> true | Some shape -> Shape.in_bounds shape idx in
  (* Nested walk: per dimension, choose a block number then an in-block
     offset; recursion depth is the rank. *)
  let rec walk k =
    if k = r then begin
      if ok cur then f cur
    end
    else
      for c = 0 to t.count.(k) - 1 do
        let base = t.start.(k) + (c * t.stride.(k)) in
        for b = 0 to t.block.(k) - 1 do
          cur.(k) <- base + b;
          walk (k + 1)
        done
      done
  in
  walk 0

let mem t idx =
  Array.length idx = rank t
  &&
  let ok = ref true in
  for k = 0 to rank t - 1 do
    let rel = idx.(k) - t.start.(k) in
    if rel < 0 then ok := false
    else begin
      (* The candidate block with the smallest non-negative in-block offset
         is the largest c with c*stride <= rel, capped by count. *)
      let c = min (t.count.(k) - 1) (rel / t.stride.(k)) in
      if rel - (c * t.stride.(k)) >= t.block.(k) then ok := false
    end
  done;
  !ok

let bbox t =
  let r = rank t in
  let lo = Array.copy t.start in
  let hi =
    Array.init r (fun k -> t.start.(k) + ((t.count.(k) - 1) * t.stride.(k)) + t.block.(k) - 1)
  in
  (lo, hi)

let to_string t =
  let arr a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
  Printf.sprintf "slab(start=[%s] stride=[%s] count=[%s] block=[%s])" (arr t.start)
    (arr t.stride) (arr t.count) (arr t.block)
