(** HDF5-style hyperslab selections.

    A hyperslab selects a regular pattern of blocks from an index space,
    described per dimension by [start], [stride], [count] and [block] —
    exactly the H5Sselect_hyperslab parameterization.  The benchmark
    programs (§V-A) describe their data accesses as lists of hyperslabs;
    everything else — index enumeration for the debloat test, real reads
    for the audit-overhead experiment, AFL pseudo-branches — derives from
    that single description. *)

type t = {
  start : int array;
  stride : int array;  (** distance between block origins; [>= 1] each *)
  count : int array;   (** number of blocks along each dim; [>= 1] each *)
  block : int array;   (** block extent along each dim; [>= 1] each *)
}

val make : start:int array -> ?stride:int array -> ?count:int array -> ?block:int array -> unit -> t
(** Defaults: stride 1, count 1, block 1 along every dimension (a single
    element at [start]).  All four arrays must share [start]'s rank. *)

val point : int array -> t
(** Single-element selection. *)

val block_at : int array -> int array -> t
(** [block_at start extent] selects one dense block. *)

val rank : t -> int

val nelems : t -> int
(** Selected element count, ignoring bounds clipping. *)

val iter : ?clip:Shape.t -> t -> (int array -> unit) -> unit
(** Visit selected indices in row-major-ish order.  With [~clip], indices
    outside the shape are skipped (HDF5 would error; the benchmark
    programs clip explicitly, so the model does too).  The callback
    buffer is reused. *)

val mem : t -> int array -> bool
(** Does the selection contain this index (ignoring clipping)? *)

val bbox : t -> (int array * int array)
(** Inclusive lower/upper index corners of the selection. *)

val to_string : t -> string
