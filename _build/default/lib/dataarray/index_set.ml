type t = { shape : Shape.t; bits : Bitset.t }

let create shape = { shape; bits = Bitset.create (Shape.nelems shape) }

let shape t = t.shape

let add t idx =
  if not (Shape.in_bounds t.shape idx) then invalid_arg "Index_set.add: out of bounds";
  Bitset.set t.bits (Shape.linearize t.shape idx)

let add_if_in_bounds t idx =
  if Shape.in_bounds t.shape idx then begin
    Bitset.set t.bits (Shape.linearize t.shape idx);
    true
  end
  else false

let add_slab ?(clip = true) t slab =
  if clip then Hyperslab.iter ~clip:t.shape slab (fun idx -> add t idx)
  else Hyperslab.iter slab (fun idx -> add t idx)

let mem t idx = Shape.in_bounds t.shape idx && Bitset.mem t.bits (Shape.linearize t.shape idx)

let cardinal t = Bitset.cardinal t.bits
let is_empty t = Bitset.is_empty t.bits
let copy t = { shape = t.shape; bits = Bitset.copy t.bits }

let same_shape a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Index_set: shape mismatch"

let union_into dst src =
  same_shape dst src;
  Bitset.union_into dst.bits src.bits

let inter_cardinal a b =
  same_shape a b;
  Bitset.inter_cardinal a.bits b.bits

let diff_cardinal a b =
  same_shape a b;
  Bitset.diff_cardinal a.bits b.bits

let subset a b =
  same_shape a b;
  Bitset.subset a.bits b.bits

let equal a b = Shape.equal a.shape b.shape && Bitset.equal a.bits b.bits

let iter t f = Bitset.iter t.bits (fun lin -> f (Shape.delinearize t.shape lin))

let to_list t =
  let acc = ref [] in
  iter t (fun idx -> acc := idx :: !acc);
  List.rev !acc

let of_list shape l =
  let t = create shape in
  List.iter (add t) l;
  t

let fraction t = float_of_int (cardinal t) /. float_of_int (Shape.nelems t.shape)

let to_bytes t =
  let dims = Shape.dims t.shape in
  let rank = Array.length dims in
  let bits_len = (Shape.nelems t.shape + 7) / 8 in
  let out = Bytes.make (4 + (4 * rank) + bits_len) '\000' in
  Bytes.set_int32_le out 0 (Int32.of_int rank);
  Array.iteri (fun k d -> Bytes.set_int32_le out (4 + (4 * k)) (Int32.of_int d)) dims;
  let pos = ref (4 + (4 * rank)) in
  (* pack via iteration to avoid exposing Bitset internals *)
  Bitset.iter t.bits (fun lin ->
      let b = !pos + (lin lsr 3) in
      Bytes.set_uint8 out b (Bytes.get_uint8 out b lor (1 lsl (lin land 7))));
  out

let of_bytes buf =
  if Bytes.length buf < 4 then invalid_arg "Index_set.of_bytes: truncated";
  let rank = Int32.to_int (Bytes.get_int32_le buf 0) in
  if rank < 1 || rank > 8 || Bytes.length buf < 4 + (4 * rank) then
    invalid_arg "Index_set.of_bytes: bad rank";
  let dims = Array.init rank (fun k -> Int32.to_int (Bytes.get_int32_le buf (4 + (4 * k)))) in
  Array.iter (fun d -> if d <= 0 then invalid_arg "Index_set.of_bytes: bad dims") dims;
  let shape = Shape.create dims in
  let bits_len = (Shape.nelems shape + 7) / 8 in
  let base = 4 + (4 * rank) in
  if Bytes.length buf <> base + bits_len then invalid_arg "Index_set.of_bytes: bad length";
  let t = create shape in
  for lin = 0 to Shape.nelems shape - 1 do
    if Bytes.get_uint8 buf (base + (lin lsr 3)) land (1 lsl (lin land 7)) <> 0 then
      Bitset.set t.bits lin
  done;
  t

let random_member t rng =
  let n = cardinal t in
  if n = 0 then None
  else begin
    let target = Kondo_prng.Rng.int rng n in
    let seen = ref 0 and found = ref None in
    (try
       Bitset.iter t.bits (fun lin ->
           if !seen = target then begin
             found := Some (Shape.delinearize t.shape lin);
             raise Exit
           end;
           incr seen)
     with Exit -> ());
    !found
  end
