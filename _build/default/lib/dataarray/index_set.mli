(** Index subsets of one data array: the sets [I_v] and [I_Θ] of the paper.

    Backed by a {!Bitset} over the row-major linearization of the array's
    shape, so union / intersection / difference — the operations behind
    precision, recall and bloat-fraction — cost a popcount sweep. *)

type t

val create : Shape.t -> t
(** Empty subset of the given index space. *)

val shape : t -> Shape.t

val add : t -> int array -> unit
(** Out-of-bounds indices raise [Invalid_argument]. *)

val add_if_in_bounds : t -> int array -> bool
(** Returns whether the index was in bounds (and hence added). *)

val add_slab : ?clip:bool -> t -> Hyperslab.t -> unit
(** Add every index of a hyperslab selection; with [~clip:true] (default)
    out-of-bounds indices are silently skipped. *)

val mem : t -> int array -> bool
val cardinal : t -> int
val is_empty : t -> bool
val copy : t -> t

val union_into : t -> t -> unit
(** [union_into dst src]; shapes must be equal. *)

val inter_cardinal : t -> t -> int
val diff_cardinal : t -> t -> int
val subset : t -> t -> bool
val equal : t -> t -> bool

val iter : t -> (int array -> unit) -> unit
(** Visit members in row-major order; callback buffer is fresh per call. *)

val to_list : t -> int array list

val of_list : Shape.t -> int array list -> t

val fraction : t -> float
(** |set| / |index space|. *)

val random_member : t -> Kondo_prng.Rng.t -> int array option
(** Uniform member, [None] when empty.  O(capacity) scan — test helper. *)

val to_bytes : t -> bytes
(** Compact serialization (shape header + packed membership bits). *)

val of_bytes : bytes -> t
(** Inverse of {!to_bytes}.  @raise Invalid_argument on malformed input. *)
