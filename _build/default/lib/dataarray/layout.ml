type t = Contiguous | Chunked of int array

let validate t shape =
  match t with
  | Contiguous -> ()
  | Chunked cdims ->
    if Array.length cdims <> Shape.rank shape then
      invalid_arg "Layout: chunk rank mismatch";
    Array.iter (fun d -> if d <= 0 then invalid_arg "Layout: non-positive chunk dim") cdims

let ceil_div a b = (a + b - 1) / b

let chunk_grid t shape =
  match t with
  | Contiguous -> Array.map (fun _ -> 1) (Shape.dims shape)
  | Chunked cdims ->
    let dims = Shape.dims shape in
    Array.init (Array.length dims) (fun k -> ceil_div dims.(k) cdims.(k))

let chunk_nelems = function
  | Contiguous -> invalid_arg "Layout.chunk_nelems: contiguous"
  | Chunked cdims -> Array.fold_left ( * ) 1 cdims

let storage_nelems t shape =
  match t with
  | Contiguous -> Shape.nelems shape
  | Chunked _ ->
    let grid = chunk_grid t shape in
    Array.fold_left ( * ) 1 grid * chunk_nelems t

let element_offset t shape dt idx =
  let esz = Dtype.size dt in
  match t with
  | Contiguous -> Shape.linearize shape idx * esz
  | Chunked cdims ->
    let rank = Array.length cdims in
    let grid = chunk_grid t shape in
    let grid_shape = Shape.create grid and chunk_shape = Shape.create cdims in
    let chunk_idx = Array.init rank (fun k -> idx.(k) / cdims.(k)) in
    let within = Array.init rank (fun k -> idx.(k) mod cdims.(k)) in
    let chunk_rank = Shape.linearize grid_shape chunk_idx in
    ((chunk_rank * chunk_nelems t) + Shape.linearize chunk_shape within) * esz

let index_of_offset t shape dt off =
  let esz = Dtype.size dt in
  if off mod esz <> 0 then None
  else begin
    let lin = off / esz in
    match t with
    | Contiguous -> if lin < Shape.nelems shape then Some (Shape.delinearize shape lin) else None
    | Chunked cdims ->
      let rank = Array.length cdims in
      let grid = chunk_grid t shape in
      let grid_shape = Shape.create grid and chunk_shape = Shape.create cdims in
      let per_chunk = chunk_nelems t in
      let chunk_rank = lin / per_chunk and within_rank = lin mod per_chunk in
      if chunk_rank >= Shape.nelems grid_shape then None
      else begin
        let chunk_idx = Shape.delinearize grid_shape chunk_rank in
        let within = Shape.delinearize chunk_shape within_rank in
        let idx = Array.init rank (fun k -> (chunk_idx.(k) * cdims.(k)) + within.(k)) in
        if Shape.in_bounds shape idx then Some idx else None (* chunk padding *)
      end
  end

let contiguous_run t shape dt idx =
  ignore dt;
  match t with
  | Contiguous ->
    (* Remaining elements of the row-major tail from idx. *)
    Shape.nelems shape - Shape.linearize shape idx
  | Chunked cdims ->
    let rank = Array.length cdims in
    let within_last = idx.(rank - 1) mod cdims.(rank - 1) in
    cdims.(rank - 1) - within_last

let to_string = function
  | Contiguous -> "contiguous"
  | Chunked cdims ->
    "chunked:" ^ String.concat "x" (Array.to_list (Array.map string_of_int cdims))
