(** Physical layouts: the index -> byte-offset map of a data array.

    Kondo must translate between the d-dimensional index space in which
    fuzzing and carving happen and the 1-dimensional byte-offset space in
    which I/O events are observed (paper §IV-C).  Both directions are
    provided, for contiguous (row-major) and HDF5-style chunked storage
    (§VI: "chunks form the unit of access ... the byte offset of each chunk
    can also be described in terms of the d-dimensions"). *)

type t =
  | Contiguous                 (** row-major, one dense block *)
  | Chunked of int array       (** chunk dims; chunks stored row-major, elements row-major within a chunk *)

val validate : t -> Shape.t -> unit
(** @raise Invalid_argument when chunk rank mismatches or a chunk dim is
    non-positive. *)

val chunk_grid : t -> Shape.t -> int array
(** Number of chunks along each dimension ([[|1;..|]] when contiguous —
    the whole array is one chunk). *)

val storage_nelems : t -> Shape.t -> int
(** Number of element slots in the file, including chunk padding at the
    array's ragged edges. *)

val element_offset : t -> Shape.t -> Dtype.t -> int array -> int
(** Byte offset of one element within the dataset's data section. *)

val index_of_offset : t -> Shape.t -> Dtype.t -> int -> int array option
(** Inverse of {!element_offset}: [None] when the offset points at chunk
    padding or is not element-aligned. *)

val contiguous_run : t -> Shape.t -> Dtype.t -> int array -> int
(** [contiguous_run l s dt idx] is the number of elements starting at
    [idx] (inclusive) that are stored contiguously on disk — the longest
    run a single read can cover. *)

val to_string : t -> string
