type t = { dims : int array; strides : int array; nelems : int }

let create dims =
  Array.iter (fun d -> if d <= 0 then invalid_arg "Shape.create: non-positive dim") dims;
  let rank = Array.length dims in
  if rank = 0 then invalid_arg "Shape.create: rank 0";
  let strides = Array.make rank 1 in
  for k = rank - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * dims.(k + 1)
  done;
  { dims = Array.copy dims; strides; nelems = Array.fold_left ( * ) 1 dims }

let dims t = Array.copy t.dims
let rank t = Array.length t.dims
let nelems t = t.nelems

let in_bounds t idx =
  Array.length idx = rank t
  &&
  let ok = ref true in
  Array.iteri (fun k v -> if v < 0 || v >= t.dims.(k) then ok := false) idx;
  !ok

let linearize t idx =
  let off = ref 0 in
  for k = 0 to rank t - 1 do
    off := !off + (idx.(k) * t.strides.(k))
  done;
  !off

let delinearize t lin =
  let idx = Array.make (rank t) 0 in
  let rem = ref lin in
  for k = 0 to rank t - 1 do
    idx.(k) <- !rem / t.strides.(k);
    rem := !rem mod t.strides.(k)
  done;
  idx

let iter t f =
  let r = rank t in
  let cur = Array.make r 0 in
  let rec walk k = if k = r then f cur
    else
      for v = 0 to t.dims.(k) - 1 do
        cur.(k) <- v;
        walk (k + 1)
      done
  in
  walk 0

let equal a b = a.dims = b.dims

let to_string t =
  String.concat "x" (Array.to_list (Array.map string_of_int t.dims))
