(** Shapes: the d-dimensional logical index space [I] of a data array.

    An index is an [int array] of length [rank], with component [k] in
    [\[0, dims.(k))].  Row-major ("C order") linearization is the canonical
    index <-> integer bijection used by bitsets and event encoding. *)

type t

val create : int array -> t
(** [create dims]; every dimension must be positive, rank 1–3 supported by
    the geometry layer but any positive rank is accepted here. *)

val dims : t -> int array
val rank : t -> int

val nelems : t -> int
(** Product of the dimensions. *)

val in_bounds : t -> int array -> bool

val linearize : t -> int array -> int
(** Row-major rank of an in-bounds index. *)

val delinearize : t -> int -> int array
(** Inverse of {!linearize}. *)

val iter : t -> (int array -> unit) -> unit
(** Visit all indices in row-major order; the callback buffer is reused. *)

val equal : t -> t -> bool
val to_string : t -> string
