lib/geometry/bbox.ml: Array Float List
