lib/geometry/bbox.mli:
