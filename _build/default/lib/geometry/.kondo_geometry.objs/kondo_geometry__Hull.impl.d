lib/geometry/hull.ml: Array Bbox Float Format Hashtbl Hull2d Hull3d List Vec
