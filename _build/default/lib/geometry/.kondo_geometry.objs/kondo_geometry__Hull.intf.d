lib/geometry/hull.mli: Bbox Format
