lib/geometry/hull2d.ml: Array Float List Vec
