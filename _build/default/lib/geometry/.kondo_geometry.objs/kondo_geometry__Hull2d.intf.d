lib/geometry/hull2d.mli:
