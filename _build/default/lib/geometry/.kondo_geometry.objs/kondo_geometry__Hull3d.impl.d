lib/geometry/hull3d.ml: Array Float List Map Vec
