lib/geometry/hull3d.mli:
