lib/geometry/vec.ml: Array Float List Printf String
