lib/geometry/vec.mli:
