type t = { lo : float array; hi : float array }

let make lo hi =
  assert (Array.length lo = Array.length hi);
  Array.iteri (fun i l -> assert (l <= hi.(i))) lo;
  { lo; hi }

let of_points = function
  | [] -> invalid_arg "Bbox.of_points: empty"
  | p :: rest ->
    let lo = Array.copy p and hi = Array.copy p in
    List.iter
      (fun q ->
        for i = 0 to Array.length p - 1 do
          if q.(i) < lo.(i) then lo.(i) <- q.(i);
          if q.(i) > hi.(i) then hi.(i) <- q.(i)
        done)
      rest;
    { lo; hi }

let dim b = Array.length b.lo
let lo b = b.lo
let hi b = b.hi

let contains ?(eps = 1e-9) b p =
  let ok = ref true in
  for i = 0 to dim b - 1 do
    if p.(i) < b.lo.(i) -. eps || p.(i) > b.hi.(i) +. eps then ok := false
  done;
  !ok

let union a b =
  { lo = Array.init (dim a) (fun i -> Float.min a.lo.(i) b.lo.(i));
    hi = Array.init (dim a) (fun i -> Float.max a.hi.(i) b.hi.(i)) }

let inflate b m =
  { lo = Array.map (fun x -> x -. m) b.lo; hi = Array.map (fun x -> x +. m) b.hi }

let volume b =
  let v = ref 1.0 in
  for i = 0 to dim b - 1 do
    v := !v *. Float.max 0.0 (b.hi.(i) -. b.lo.(i))
  done;
  !v

let min_dist a b =
  let s = ref 0.0 in
  for i = 0 to dim a - 1 do
    let gap = Float.max 0.0 (Float.max (a.lo.(i) -. b.hi.(i)) (b.lo.(i) -. a.hi.(i))) in
    s := !s +. (gap *. gap)
  done;
  sqrt !s

let lattice_bounds b =
  let d = dim b in
  let lo = Array.init d (fun i -> int_of_float (Float.ceil (b.lo.(i) -. 1e-9))) in
  let hi = Array.init d (fun i -> int_of_float (Float.floor (b.hi.(i) +. 1e-9))) in
  (lo, hi)

let iter_lattice b f =
  let lo, hi = lattice_bounds b in
  let d = dim b in
  let feasible = ref true in
  for i = 0 to d - 1 do
    if lo.(i) > hi.(i) then feasible := false
  done;
  if !feasible then begin
    let cur = Array.copy lo in
    let rec walk axis = if axis = d then f cur
      else
        for v = lo.(axis) to hi.(axis) do
          cur.(axis) <- v;
          walk (axis + 1)
        done
    in
    walk 0
  end

let lattice_count b =
  let lo, hi = lattice_bounds b in
  let n = ref 1 in
  Array.iteri (fun i l -> n := !n * max 0 (hi.(i) - l + 1)) lo;
  !n
