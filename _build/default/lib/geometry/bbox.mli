(** Axis-aligned bounding boxes in [d] dimensions. *)

type t = private { lo : float array; hi : float array }

val make : float array -> float array -> t
(** [make lo hi]; requires [lo.(i) <= hi.(i)] for all [i]. *)

val of_points : float array list -> t
(** Smallest box covering a non-empty list of points. *)

val dim : t -> int
val lo : t -> float array
val hi : t -> float array

val contains : ?eps:float -> t -> float array -> bool

val union : t -> t -> t

val inflate : t -> float -> t
(** [inflate b m] grows every side by margin [m] in both directions. *)

val volume : t -> float

val min_dist : t -> t -> float
(** Minimum Euclidean distance between two boxes (0 when they intersect). *)

val iter_lattice : t -> (int array -> unit) -> unit
(** [iter_lattice b f] calls [f] on every integer point inside [b]
    (inclusive bounds, after rounding [lo] up and [hi] down).  The same
    [int array] buffer is reused between calls; callers must copy it if
    they retain it. *)

val lattice_count : t -> int
(** Number of integer points [iter_lattice] would visit. *)
