type flat = {
  origin : float array;  (* a point on the carrier plane *)
  basis_u : float array; (* orthonormal in-plane basis *)
  basis_v : float array;
  plane_normal : float array; (* unit normal *)
  poly : Hull2d.t;             (* hull in (u, v) coordinates *)
  lifted : float array list;   (* polygon vertices back in ambient space *)
}

type shape =
  | Point of float array
  | Segment of float array * float array
  | Poly2 of Hull2d.t
  | Flat of flat
  | Poly3 of Hull3d.t

type t = { dim : int; shape : shape }

let geom_eps = 1e-7

let dedup points =
  let tbl = Hashtbl.create 64 in
  List.filter
    (fun p ->
      let key = Array.to_list p in
      if Hashtbl.mem tbl key then false
      else begin
        Hashtbl.add tbl key ();
        true
      end)
    points

let normalize v =
  let n = Vec.norm v in
  if n <= geom_eps then invalid_arg "Hull: cannot normalize null vector";
  Vec.scale (1.0 /. n) v

(* Distance from [q] to the line through [a] with unit direction [u]. *)
let line_dist a u q =
  let w = Vec.sub q a in
  let t = Vec.dot w u in
  Vec.dist w (Vec.scale t u)

let farthest_from p points =
  List.fold_left
    (fun (best, best_d) q ->
      let d = Vec.dist_sq p q in
      if d > best_d then (q, d) else (best, best_d))
    (p, 0.0) points

(* Extreme pair along unit direction [u] starting at [a]. *)
let segment_extremes a u points =
  let proj q = Vec.dot (Vec.sub q a) u in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) q ->
        let t = proj q in
        let lo = if t < proj lo then q else lo in
        let hi = if t > proj hi then q else hi in
        (lo, hi))
      (a, a) points
  in
  (lo, hi)

let plane_basis u normal =
  let v = normalize (Vec.cross3 normal u) in
  (u, v)

let project2 origin bu bv q =
  let w = Vec.sub q origin in
  [| Vec.dot w bu; Vec.dot w bv |]

let lift origin bu bv p2 =
  Vec.add origin (Vec.add (Vec.scale p2.(0) bu) (Vec.scale p2.(1) bv))

let of_points points =
  let points = dedup points in
  (match points with [] -> invalid_arg "Hull.of_points: empty" | _ -> ());
  let p0 = List.hd points in
  let dim = Array.length p0 in
  assert (dim >= 1 && dim <= 3);
  let shape =
    let p1, d01 = farthest_from p0 points in
    if d01 <= geom_eps then Point p0
    else begin
      let u = normalize (Vec.sub p1 p0) in
      let off_line, _ =
        List.fold_left
          (fun (best, best_d) q ->
            let d = line_dist p0 u q in
            if d > best_d then (q, d) else (best, best_d))
          (p0, geom_eps) points
      in
      let collinear = Vec.equal ~eps:geom_eps off_line p0 in
      if collinear then begin
        let a, b = segment_extremes p0 u points in
        Segment (a, b)
      end
      else if dim = 1 then assert false
      else if dim = 2 then Poly2 (Hull2d.of_points points)
      else begin
        (* 3D: coplanar sets drop to an embedded polygon. *)
        let normal = normalize (Vec.cross3 (Vec.sub p1 p0) (Vec.sub off_line p0)) in
        let coplanar =
          List.for_all (fun q -> Float.abs (Vec.dot normal (Vec.sub q p0)) <= geom_eps *. 10.0) points
        in
        if coplanar then begin
          let bu, bv = plane_basis u normal in
          let projected = List.map (project2 p0 bu bv) points in
          let poly = Hull2d.of_points projected in
          let lifted = List.map (lift p0 bu bv) (Hull2d.vertices poly) in
          Flat { origin = p0; basis_u = bu; basis_v = bv; plane_normal = normal; poly; lifted }
        end
        else Poly3 (Hull3d.of_points points)
      end
    end
  in
  { dim; shape }

let of_int_points pts = of_points (List.map Vec.of_int_point pts)

let dim t = t.dim

let affine_dim t =
  match t.shape with
  | Point _ -> 0
  | Segment _ -> 1
  | Poly2 _ | Flat _ -> 2
  | Poly3 _ -> 3

let vertices t =
  match t.shape with
  | Point p -> [ p ]
  | Segment (a, b) -> [ a; b ]
  | Poly2 h -> Hull2d.vertices h
  | Flat f -> f.lifted
  | Poly3 h -> Hull3d.vertices h

let segment_contains eps a b p =
  let ab = Vec.sub b a in
  let len2 = Vec.dot ab ab in
  let t = if len2 <= 0.0 then 0.0 else Float.max 0.0 (Float.min 1.0 (Vec.dot (Vec.sub p a) ab /. len2)) in
  Vec.dist p (Vec.add a (Vec.scale t ab)) <= eps

let contains ?(eps = geom_eps) t p =
  match t.shape with
  | Point q -> Vec.dist q p <= eps
  | Segment (a, b) -> segment_contains eps a b p
  | Poly2 h -> Hull2d.contains ~eps h p
  | Flat f ->
    Float.abs (Vec.dot f.plane_normal (Vec.sub p f.origin)) <= eps *. 10.0
    && Hull2d.contains ~eps f.poly (project2 f.origin f.basis_u f.basis_v p)
  | Poly3 h -> Hull3d.contains ~eps h p

let contains_int ?eps t p = contains ?eps t (Vec.of_int_point p)

let centroid t = Vec.centroid (vertices t)

let bbox t = Bbox.of_points (vertices t)

let center_distance a b = Vec.dist (centroid a) (centroid b)

let boundary_distance a b =
  let va = vertices a and vb = vertices b in
  List.fold_left
    (fun acc p -> List.fold_left (fun acc q -> Float.min acc (Vec.dist p q)) acc vb)
    infinity va

let merge a b = of_points (vertices a @ vertices b)

let measure t =
  match t.shape with
  | Point _ -> 0.0
  | Segment (a, b) -> Vec.dist a b
  | Poly2 h -> Hull2d.area h
  | Flat f -> Hull2d.area f.poly
  | Poly3 h -> Hull3d.volume h

let iter_lattice t f =
  let buf_ok p = contains ~eps:1e-6 t (Vec.of_int_point p) in
  Bbox.iter_lattice (bbox t) (fun ip -> if buf_ok ip then f ip)

let lattice_count t =
  let n = ref 0 in
  iter_lattice t (fun _ -> incr n);
  !n

type halfspace = { coeffs : float array; equality : bool; rhs : float }

let le coeffs rhs = { coeffs; equality = false; rhs }
let eq coeffs rhs = { coeffs; equality = true; rhs }

let axis d k v =
  let a = Array.make d 0.0 in
  a.(k) <- v;
  a

(* Extent bounds of points projected on direction [u] anchored at [a]. *)
let direction_bounds a u points =
  let lo, hi =
    List.fold_left
      (fun (lo, hi) q ->
        let t = Vec.dot (Vec.sub q a) u in
        (Float.min lo t, Float.max hi t))
      (0.0, 0.0) points
  in
  [ le (Vec.scale (-1.0) u) (-.lo -. Vec.dot u a); le u (hi +. Vec.dot u a) ]

(* Line equalities: for every coordinate pair (i, j), points on the line
   through [a] with direction [d] satisfy d_j*(x_i - a_i) = d_i*(x_j - a_j).
   Pairs where both components vanish give trivial constraints and are
   dropped. *)
let line_equalities a d =
  let n = Array.length a in
  let out = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      if Float.abs d.(i) > geom_eps || Float.abs d.(j) > geom_eps then begin
        let coeffs = Array.make n 0.0 in
        coeffs.(i) <- d.(j);
        coeffs.(j) <- -.d.(i);
        out := eq coeffs ((d.(j) *. a.(i)) -. (d.(i) *. a.(j))) :: !out
      end
    done
  done;
  !out

let halfspaces t =
  match t.shape with
  | Point p -> List.init t.dim (fun k -> eq (axis t.dim k 1.0) p.(k))
  | Segment (a, b) ->
    let d = Vec.sub b a in
    let u = normalize d in
    line_equalities a d @ direction_bounds a u [ a; b ]
  | Poly2 h ->
    let v = Array.of_list (Hull2d.vertices h) in
    let n = Array.length v in
    List.init n (fun i ->
        let a = v.(i) and b = v.((i + 1) mod n) in
        (* inside (ccw) means cross2 a b x >= 0, i.e.
           (b1-a1)*x0 + (a0-b0)*x1 <= a0*b1 - a1*b0 *)
        let coeffs = [| b.(1) -. a.(1); a.(0) -. b.(0) |] in
        le coeffs ((a.(0) *. b.(1)) -. (a.(1) *. b.(0))))
  | Flat f ->
    let plane = eq f.plane_normal (Vec.dot f.plane_normal f.origin) in
    let v = Array.of_list (Hull2d.vertices f.poly) in
    let n = Array.length v in
    let lifted_edges =
      List.init n (fun i ->
          let a = v.(i) and b = v.((i + 1) mod n) in
          let alpha = b.(1) -. a.(1) and beta = a.(0) -. b.(0) in
          let c = (a.(0) *. b.(1)) -. (a.(1) *. b.(0)) in
          (* u-coordinate of x is bu·(x - origin), v-coordinate bv·(x - origin) *)
          let coeffs = Vec.add (Vec.scale alpha f.basis_u) (Vec.scale beta f.basis_v) in
          le coeffs (c +. Vec.dot coeffs f.origin))
    in
    plane :: lifted_edges
  | Poly3 h ->
    List.map
      (fun (a, b, c) ->
        let normal = Vec.cross3 (Vec.sub b a) (Vec.sub c a) in
        le normal (Vec.dot normal a))
      (Hull3d.faces h)

let satisfies_halfspaces ?(eps = geom_eps) constraints p =
  List.for_all
    (fun h ->
      let v = Vec.dot h.coeffs p -. h.rhs in
      let tol = eps *. (1.0 +. Vec.norm h.coeffs) in
      if h.equality then Float.abs v <= tol *. 10.0 else v <= tol)
    constraints

let pp fmt t =
  let kind =
    match t.shape with
    | Point _ -> "point"
    | Segment _ -> "segment"
    | Poly2 _ -> "polygon"
    | Flat _ -> "planar-polygon"
    | Poly3 _ -> "polytope"
  in
  Format.fprintf fmt "@[<h>hull(%s, %d vertices, center %s)@]" kind
    (List.length (vertices t))
    (Vec.to_string (centroid t))
