(** Dimension-generic convex hulls over index-space points.

    The carver (paper Alg. 2) manipulates convex hulls of integer index
    points in 1, 2 or 3 dimensions.  Point sets observed inside a single
    grid cell are frequently degenerate — a lone index, a row of indices,
    or (in 3D) a plane of indices — so this module represents every
    affine-dimension case explicitly rather than failing:

    - 0-dimensional: a single point,
    - 1-dimensional: a segment between the two extreme points,
    - 2-dimensional: a convex polygon ({!Hull2d}), embedded in its carrier
      plane when the ambient space is 3D,
    - 3-dimensional: a convex polytope ({!Hull3d}).

    All operations treat boundary points as inside. *)

type t

val of_points : float array list -> t
(** Convex hull of a non-empty list of points that all share one
    dimensionality (1–3). *)

val of_int_points : int array list -> t
(** Convenience: converts integer index tuples and builds the hull. *)

val dim : t -> int
(** Ambient dimensionality. *)

val affine_dim : t -> int
(** Dimension actually spanned: 0 point, 1 segment, 2 polygon, 3 polytope. *)

val vertices : t -> float array list
(** Extreme points defining the hull. *)

val contains : ?eps:float -> t -> float array -> bool

val contains_int : ?eps:float -> t -> int array -> bool

val centroid : t -> float array
(** Centroid of the hull vertices — the paper's hull "center" (§IV-B). *)

val bbox : t -> Bbox.t

val center_distance : t -> t -> float
(** Euclidean distance between hull centers. *)

val boundary_distance : t -> t -> float
(** Minimum pairwise distance between the vertex sets of two hulls — the
    paper's hull-boundary distance (§IV-B). *)

val merge : t -> t -> t
(** Hull of the union of the two hulls' vertices.  Equivalent to the hull
    of the union of the original point sets (paper §IV-B, citing the
    standard merge argument). *)

val measure : t -> float
(** Length / area / volume according to {!affine_dim} (0 for a point). *)

val iter_lattice : t -> (int array -> unit) -> unit
(** Visit every integer point inside the hull (boundary inclusive).  The
    buffer passed to the callback is reused; copy to retain. *)

val lattice_count : t -> int
(** Number of integer points inside the hull. *)

type halfspace = {
  coeffs : float array;
  equality : bool;  (** true: [coeffs·x = rhs]; false: [coeffs·x <= rhs] *)
  rhs : float;
}

val halfspaces : t -> halfspace list
(** H-representation: a point is inside the hull iff it satisfies every
    returned constraint (up to a scaled epsilon).  Degenerate hulls emit
    equalities for their lost dimensions — a segment in 2D is one line
    equality plus two extent bounds, a planar polygon in 3D is its plane
    equality plus the lifted edge inequalities. *)

val satisfies_halfspaces : ?eps:float -> halfspace list -> float array -> bool
(** Check the constraint conjunction directly (matches {!contains} on the
    hull the constraints came from). *)

val pp : Format.formatter -> t -> unit
