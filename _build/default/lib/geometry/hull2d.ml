type t = { vertices : float array array }

exception Degenerate

let compare_xy a b =
  match Float.compare a.(0) b.(0) with 0 -> Float.compare a.(1) b.(1) | c -> c

let dedup_sorted points =
  let rec go acc = function
    | [] -> List.rev acc
    | [ p ] -> List.rev (p :: acc)
    | p :: (q :: _ as rest) -> if compare_xy p q = 0 then go acc rest else go (p :: acc) rest
  in
  go [] points

(* One monotone chain: keeps only points making strict right->left turns,
   dropping collinear interior points. *)
let build_chain points =
  let chain = ref [] in
  let push p =
    let rec pop = function
      | a :: b :: rest when Vec.cross2 b a p <= 1e-12 -> pop (b :: rest)
      | l -> l
    in
    chain := p :: pop !chain
  in
  List.iter push points;
  !chain

let of_points points =
  List.iter (fun p -> assert (Array.length p = 2)) points;
  let sorted = dedup_sorted (List.sort compare_xy points) in
  if List.length sorted < 3 then raise Degenerate;
  let lower = build_chain sorted in
  let upper = build_chain (List.rev sorted) in
  (* Each chain ends with its last input point at the head; drop the head of
     each chain to avoid duplicating the two extreme points. *)
  let strip = function [] -> [] | _ :: rest -> rest in
  let ccw = List.rev_append (strip upper) (List.rev (strip lower)) in
  if List.length ccw < 3 then raise Degenerate;
  { vertices = Array.of_list ccw }

let vertices t = Array.to_list t.vertices

let contains ?(eps = 1e-7) t p =
  let n = Array.length t.vertices in
  let ok = ref true in
  for i = 0 to n - 1 do
    let a = t.vertices.(i) and b = t.vertices.((i + 1) mod n) in
    (* Scale tolerance with edge length so long integer edges keep working. *)
    let tol = eps *. (1.0 +. Vec.dist a b) in
    if Vec.cross2 a b p < -.tol then ok := false
  done;
  !ok

let area t =
  let n = Array.length t.vertices in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    let a = t.vertices.(i) and b = t.vertices.((i + 1) mod n) in
    s := !s +. ((a.(0) *. b.(1)) -. (b.(0) *. a.(1)))
  done;
  Float.abs !s /. 2.0

let centroid t = Vec.centroid (vertices t)
