(** Planar convex hulls (Andrew's monotone chain).

    The hull of a point set with at least three non-collinear points is a
    counter-clockwise simple polygon.  Collinear input collapses to a
    segment and a singleton to a point; callers that need those cases use
    {!Hull.of_points}, which detects them before reaching this module. *)

type t
(** A convex polygon with >= 3 vertices in counter-clockwise order. *)

exception Degenerate
(** Raised by {!of_points} when the input has fewer than three distinct
    points or all points are collinear. *)

val of_points : float array list -> t
(** Convex hull of the input (each point must have length 2).
    @raise Degenerate on collinear or too-small input. *)

val vertices : t -> float array list
(** Hull vertices in counter-clockwise order. *)

val contains : ?eps:float -> t -> float array -> bool
(** Point-in-convex-polygon test; boundary points are inside. *)

val area : t -> float

val centroid : t -> float array
(** Centroid of the hull {e vertices} (the paper's hull "center"). *)
