type face = { a : int; b : int; c : int; normal : float array; offset : float }
(* Outward-oriented triangle over point indices: x is outside when
   dot normal x > offset. *)

type t = { points : float array array; face_list : face list; vertex_ids : int list }

exception Degenerate

let eps = 1e-9

let make_face points a b c =
  let pa = points.(a) and pb = points.(b) and pc = points.(c) in
  let normal = Vec.cross3 (Vec.sub pb pa) (Vec.sub pc pa) in
  { a; b; c; normal; offset = Vec.dot normal pa }

let orient_away points f interior =
  (* Flip the face if the interior reference point is on its positive side. *)
  if Vec.dot f.normal interior > f.offset +. eps then make_face points f.b f.a f.c else f

let signed_dist f p = Vec.dot f.normal p -. f.offset

let face_tolerance f = eps *. (1.0 +. Vec.norm f.normal)

(* Pick four affinely independent seed points, favouring spread. *)
let initial_tetrahedron points =
  let n = Array.length points in
  if n < 4 then raise Degenerate;
  let p0 = 0 in
  let far_from i j_excl =
    let best = ref (-1) and best_d = ref 0.0 in
    for j = 0 to n - 1 do
      if not (List.mem j j_excl) then begin
        let d = Vec.dist_sq points.(i) points.(j) in
        if d > !best_d then begin
          best := j;
          best_d := d
        end
      end
    done;
    if !best_d <= eps then raise Degenerate;
    !best
  in
  let p1 = far_from p0 [ p0 ] in
  (* Farthest from the line p0-p1. *)
  let dir = Vec.sub points.(p1) points.(p0) in
  let line_dist q =
    let v = Vec.sub q points.(p0) in
    Vec.norm (Vec.cross3 dir v)
  in
  let p2 = ref (-1) and best = ref eps in
  for j = 0 to n - 1 do
    let d = line_dist points.(j) in
    if d > !best then begin
      p2 := j;
      best := d
    end
  done;
  if !p2 < 0 then raise Degenerate;
  let p2 = !p2 in
  (* Farthest from the plane p0-p1-p2. *)
  let normal = Vec.cross3 dir (Vec.sub points.(p2) points.(p0)) in
  let nn = Vec.norm normal in
  let p3 = ref (-1) and best = ref (eps *. (1.0 +. nn)) in
  for j = 0 to n - 1 do
    let d = Float.abs (Vec.dot normal (Vec.sub points.(j) points.(p0))) in
    if d > !best then begin
      p3 := j;
      best := d
    end
  done;
  if !p3 < 0 then raise Degenerate;
  (p0, p1, p2, !p3)

module Edge = struct
  type t = int * int

  let undirected (a, b) = if a < b then (a, b) else (b, a)

  let compare x y = compare (undirected x) (undirected y)
end

module EdgeMap = Map.Make (Edge)

let of_points input =
  List.iter (fun p -> assert (Array.length p = 3)) input;
  let points = Array.of_list input in
  let n = Array.length points in
  let i0, i1, i2, i3 = initial_tetrahedron points in
  let interior =
    Vec.centroid [ points.(i0); points.(i1); points.(i2); points.(i3) ]
  in
  let faces =
    ref
      (List.map
         (fun (a, b, c) -> orient_away points (make_face points a b c) interior)
         [ (i0, i1, i2); (i0, i1, i3); (i0, i2, i3); (i1, i2, i3) ])
  in
  for p = 0 to n - 1 do
    if p <> i0 && p <> i1 && p <> i2 && p <> i3 then begin
      let pt = points.(p) in
      let visible, hidden =
        List.partition (fun f -> signed_dist f pt > face_tolerance f) !faces
      in
      if visible <> [] then begin
        (* Horizon edges: appear in exactly one visible face. *)
        let count =
          List.fold_left
            (fun m f ->
              let bump e m =
                EdgeMap.update e (function None -> Some (1, e) | Some (k, e0) -> Some (k + 1, e0)) m
              in
              bump (f.a, f.b) (bump (f.b, f.c) (bump (f.c, f.a) m)))
            EdgeMap.empty visible
        in
        let horizon =
          EdgeMap.fold (fun _ (k, e) acc -> if k = 1 then e :: acc else acc) count []
        in
        let fresh =
          List.map (fun (a, b) -> orient_away points (make_face points a b p) interior) horizon
        in
        faces := List.rev_append fresh hidden
      end
    end
  done;
  let vertex_ids =
    List.sort_uniq compare (List.concat_map (fun f -> [ f.a; f.b; f.c ]) !faces)
  in
  { points; face_list = !faces; vertex_ids }

let vertices t = List.map (fun i -> t.points.(i)) t.vertex_ids

let faces t = List.map (fun f -> (t.points.(f.a), t.points.(f.b), t.points.(f.c))) t.face_list

let contains ?(eps = 1e-7) t p =
  List.for_all (fun f -> signed_dist f p <= eps *. (1.0 +. Vec.norm f.normal)) t.face_list

let centroid t = Vec.centroid (vertices t)

let volume t =
  let c = centroid t in
  List.fold_left
    (fun acc f ->
      let pa = Vec.sub t.points.(f.a) c
      and pb = Vec.sub t.points.(f.b) c
      and pc = Vec.sub t.points.(f.c) c in
      acc +. Float.abs (Vec.dot pa (Vec.cross3 pb pc)) /. 6.0)
    0.0 t.face_list
