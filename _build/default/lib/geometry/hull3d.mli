(** Convex hulls in three dimensions.

    Incremental construction: start from a tetrahedron of four affinely
    independent points, then for every remaining point that lies outside
    the current hull, delete the faces it can see and re-triangulate the
    horizon.  Complexity is O(n * f) which is ample for the carver's
    per-cell point sets (tens to a few hundred points).

    Degenerate inputs (all points coplanar, collinear, or coincident)
    raise {!Degenerate}; {!Hull.of_points} handles those by dropping to a
    lower-dimensional representation. *)

type t

exception Degenerate

val of_points : float array list -> t
(** Convex hull of the input (each point must have length 3).
    @raise Degenerate when no non-degenerate tetrahedron exists. *)

val vertices : t -> float array list
(** Extreme points of the hull (unordered). *)

val faces : t -> (float array * float array * float array) list
(** Triangular faces with vertices ordered so the right-hand normal points
    outward. *)

val contains : ?eps:float -> t -> float array -> bool
(** [contains t p] holds when [p] is inside or on the hull. *)

val volume : t -> float

val centroid : t -> float array
(** Centroid of the hull {e vertices} (the paper's hull "center"). *)
