type t = float array

let add a b = Array.init (Array.length a) (fun i -> a.(i) +. b.(i))
let sub a b = Array.init (Array.length a) (fun i -> a.(i) -. b.(i))
let scale k a = Array.map (fun x -> k *. x) a

let dot a b =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm a = sqrt (dot a a)

let dist_sq a b =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    s := !s +. (d *. d)
  done;
  !s

let dist a b = sqrt (dist_sq a b)

let lerp a b t = Array.init (Array.length a) (fun i -> a.(i) +. (t *. (b.(i) -. a.(i))))

let centroid = function
  | [] -> invalid_arg "Vec.centroid: empty"
  | p :: _ as points ->
    let d = Array.length p in
    let acc = Array.make d 0.0 in
    let n = ref 0 in
    List.iter
      (fun q ->
        incr n;
        for i = 0 to d - 1 do
          acc.(i) <- acc.(i) +. q.(i)
        done)
      points;
    let inv = 1.0 /. float_of_int !n in
    Array.map (fun x -> x *. inv) acc

let cross2 o a b =
  ((a.(0) -. o.(0)) *. (b.(1) -. o.(1))) -. ((a.(1) -. o.(1)) *. (b.(0) -. o.(0)))

let cross3 a b =
  [| (a.(1) *. b.(2)) -. (a.(2) *. b.(1));
     (a.(2) *. b.(0)) -. (a.(0) *. b.(2));
     (a.(0) *. b.(1)) -. (a.(1) *. b.(0)) |]

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if Float.abs (a.(i) -. b.(i)) > eps then ok := false
  done;
  !ok

let of_int_point p = Array.map float_of_int p

let to_string v =
  "(" ^ String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%g") v)) ^ ")"
