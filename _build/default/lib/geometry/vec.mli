(** Small dense float vectors.

    Points in the index space of a data array are represented as
    [float array] of length [d] (the array dimensionality, 1–3 in
    practice).  All functions assume operands have equal length. *)

type t = float array

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm : t -> float
val dist : t -> t -> float
(** Euclidean distance. *)

val dist_sq : t -> t -> float

val lerp : t -> t -> float -> t
(** [lerp a b t] is [a + t*(b-a)]. *)

val centroid : t list -> t
(** Arithmetic mean of a non-empty list of points. *)

val cross2 : t -> t -> t -> float
(** [cross2 o a b] is the z-component of [(a-o) × (b-o)]: positive when
    [o→a→b] turns counter-clockwise. *)

val cross3 : t -> t -> t
(** 3-vector cross product. *)

val equal : ?eps:float -> t -> t -> bool

val of_int_point : int array -> t
val to_string : t -> string
