lib/h5/binio.ml: Array Buffer Bytes Char Int32 Int64 Lazy String
