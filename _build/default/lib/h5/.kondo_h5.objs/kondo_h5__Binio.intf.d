lib/h5/binio.mli: Buffer
