lib/h5/dataset.ml: Dtype Kondo_dataarray Kondo_interval Layout List Printf Shape
