lib/h5/dataset.mli: Dtype Kondo_dataarray Kondo_interval Layout Shape
