lib/h5/file.ml: Array Binio Bytes Dataset Dtype Hashtbl Hyperslab Interval Interval_set Io_port Kondo_audit Kondo_dataarray Kondo_interval Layout List Shape Tracer
