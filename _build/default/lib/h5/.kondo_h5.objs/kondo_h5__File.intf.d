lib/h5/file.mli: Dataset Hyperslab Io_port Kondo_audit Kondo_dataarray Kondo_interval Tracer
