lib/h5/netcdf.ml: Array Binio Buffer Bytes Dataset Dtype Fun Hyperslab Int32 Int64 Io_port Kondo_audit Kondo_dataarray List Shape String Tracer Writer
