lib/h5/netcdf.mli: Hyperslab Io_port Kondo_audit Kondo_dataarray Shape Tracer
