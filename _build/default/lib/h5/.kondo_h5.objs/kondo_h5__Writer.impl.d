lib/h5/writer.ml: Array Binio Buffer Bytes Dataset Dtype File Fun Int32 Interval Interval_set Kondo_dataarray Kondo_interval Layout List Shape
