lib/h5/writer.mli: Dataset File Kondo_interval
