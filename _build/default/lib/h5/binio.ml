exception Corrupt of string

let u8 b v = Buffer.add_uint8 b (v land 0xFF)
let u16 b v = Buffer.add_uint16_le b (v land 0xFFFF)
let u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let u64 b v = Buffer.add_int64_le b (Int64.of_int v)

let str16 b s =
  if String.length s > 0xFFFF then invalid_arg "Binio.str16: too long";
  u16 b (String.length s);
  Buffer.add_string b s

type cursor = { buf : bytes; mutable pos : int }

let cursor buf = { buf; pos = 0 }
let pos c = c.pos

let need c n = if c.pos + n > Bytes.length c.buf then raise (Corrupt "truncated")

let read_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let read_u16 c =
  need c 2;
  let v = Bytes.get_uint16_le c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let read_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let read_u64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let read_str16 c =
  let n = read_u16 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 buf =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length buf - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let read_f64 c =
  need c 8;
  let v = Int64.float_of_bits (Bytes.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let remaining c = Bytes.length c.buf - c.pos
