(** Little-endian binary encoding helpers for the KH5 format. *)

val u8 : Buffer.t -> int -> unit
val u16 : Buffer.t -> int -> unit
val u32 : Buffer.t -> int -> unit
val u64 : Buffer.t -> int -> unit
val str16 : Buffer.t -> string -> unit
(** Length-prefixed (u16) string. *)

type cursor
(** Read cursor over bytes. *)

val cursor : bytes -> cursor
val pos : cursor -> int
val read_u8 : cursor -> int
val read_u16 : cursor -> int
val read_u32 : cursor -> int
val read_u64 : cursor -> int
val read_str16 : cursor -> string

exception Corrupt of string
(** Raised on truncated or malformed input. *)

val crc32 : bytes -> int
(** IEEE 802.3 CRC-32 of the whole buffer. *)

val f64 : Buffer.t -> float -> unit
val read_f64 : cursor -> float

val remaining : cursor -> int
(** Bytes left after the cursor. *)
