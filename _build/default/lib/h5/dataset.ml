open Kondo_dataarray

type storage = Dense | Sparse of Kondo_interval.Interval_set.t

type attr = Str of string | Num of float

type t = {
  name : string;
  dtype : Dtype.t;
  shape : Shape.t;
  layout : Layout.t;
  storage : storage;
  attrs : (string * attr) list;
}

let dense ~name ~dtype ~shape ?(layout = Layout.Contiguous) ?(attrs = []) () =
  Layout.validate layout shape;
  { name; dtype; shape; layout; storage = Dense; attrs }

let attr t name = List.assoc_opt name t.attrs

let logical_bytes t = Layout.storage_nelems t.layout t.shape * Dtype.size t.dtype

let stored_bytes t =
  match t.storage with
  | Dense -> logical_bytes t
  | Sparse keep -> Kondo_interval.Interval_set.total_length keep

let element_offset t idx =
  if not (Shape.in_bounds t.shape idx) then invalid_arg "Dataset.element_offset: out of bounds";
  Layout.element_offset t.layout t.shape t.dtype idx

let index_of_offset t off = Layout.index_of_offset t.layout t.shape t.dtype off

let is_sparse t = match t.storage with Dense -> false | Sparse _ -> true

let to_string t =
  Printf.sprintf "%s: %s %s %s%s" t.name (Shape.to_string t.shape) (Dtype.to_string t.dtype)
    (Layout.to_string t.layout)
    (match t.storage with
    | Dense -> ""
    | Sparse keep ->
      Printf.sprintf " (sparse, %d runs, %d bytes)"
        (Kondo_interval.Interval_set.cardinal keep)
        (Kondo_interval.Interval_set.total_length keep))
