open Kondo_dataarray

(** Dataset metadata: the self-describing part of a KH5 file.

    Paper §VI relies on data files being self-describing — carrying
    dimension ranges, element types, and chunk sizes — so that byte
    offsets can be recovered from d-dimensional indices and vice versa.
*)

type storage =
  | Dense                         (** full data section present *)
  | Sparse of Kondo_interval.Interval_set.t
      (** debloated: only the listed byte ranges of the logical data
          section are materialized *)

type attr = Str of string | Num of float
(** Dataset attributes, as in HDF5/NetCDF metadata (units, provenance
    notes, creation parameters...). *)

type t = {
  name : string;
  dtype : Dtype.t;
  shape : Shape.t;
  layout : Layout.t;
  storage : storage;
  attrs : (string * attr) list;
}

val dense :
  name:string -> dtype:Dtype.t -> shape:Shape.t -> ?layout:Layout.t ->
  ?attrs:(string * attr) list -> unit -> t
(** Layout defaults to [Contiguous]; attributes to none. *)

val attr : t -> string -> attr option

val logical_bytes : t -> int
(** Size of the (possibly padded, for chunked layouts) logical data
    section in bytes. *)

val stored_bytes : t -> int
(** Bytes actually materialized in the file ([logical_bytes] when dense). *)

val element_offset : t -> int array -> int
(** Byte offset of an element within the logical data section. *)

val index_of_offset : t -> int -> int array option

val is_sparse : t -> bool
val to_string : t -> string
