open Kondo_dataarray
open Kondo_interval
open Kondo_audit

type entry = {
  ds : Dataset.t;
  data_off : int; (* absolute file offset of the stored data section *)
  runs : (int * int * int) array; (* (logical lo, logical hi, packed pos); empty when dense *)
  stored_len : int;
  crc : int; (* CRC-32 of the stored section, from the header *)
}

type t = { port : Io_port.t; order : string list; entries : (string, entry) Hashtbl.t }

type missing = { path : string; dataset : string; index : int array; offset : int }

exception Data_missing of missing

let parse_header port =
  if port.Io_port.size () < 12 then raise (Binio.Corrupt "truncated superblock");
  let head = port.Io_port.pread 0 12 in
  if Bytes.sub_string head 0 4 <> "KH5\x01" then raise (Binio.Corrupt "bad magic");
  let c = Binio.cursor (Bytes.sub head 4 8) in
  let header_len = Binio.read_u32 c in
  let n = Binio.read_u32 c in
  if header_len < 12 then raise (Binio.Corrupt "bad header length");
  let rest = port.Io_port.pread 12 (header_len - 12) in
  (n, Binio.cursor rest)

let parse_entry c =
  let name = Binio.read_str16 c in
  let dtype =
    match Dtype.of_code (Binio.read_u8 c) with
    | Some dt -> dt
    | None -> raise (Binio.Corrupt "bad dtype")
  in
  let rank = Binio.read_u8 c in
  if rank = 0 || rank > 8 then raise (Binio.Corrupt "bad rank");
  let dims = Array.init rank (fun _ -> Binio.read_u32 c) in
  let layout =
    match Binio.read_u8 c with
    | 0 -> Layout.Contiguous
    | 1 -> Layout.Chunked (Array.init rank (fun _ -> Binio.read_u32 c))
    | _ -> raise (Binio.Corrupt "bad layout tag")
  in
  let storage_tag = Binio.read_u8 c in
  let data_off = Binio.read_u64 c in
  let stored_len = Binio.read_u64 c in
  let shape = Shape.create dims in
  Layout.validate layout shape;
  let storage, runs =
    match storage_tag with
    | 0 -> (Dataset.Dense, [||])
    | 1 ->
      let nruns = Binio.read_u32 c in
      (* each run needs 16 header bytes: reject counts the header cannot hold
         before allocating *)
      if nruns * 16 > Binio.remaining c then raise (Binio.Corrupt "bad run count");
      let packed = ref 0 in
      let runs =
        Array.init nruns (fun _ ->
            let lo = Binio.read_u64 c in
            let hi = Binio.read_u64 c in
            if hi < lo then raise (Binio.Corrupt "bad run");
            let r = (lo, hi, !packed) in
            packed := !packed + (hi - lo);
            r)
      in
      let keep =
        Interval_set.of_list
          (Array.to_list (Array.map (fun (lo, hi, _) -> Interval.make lo hi) runs))
      in
      (Dataset.Sparse keep, runs)
    | _ -> raise (Binio.Corrupt "bad storage tag")
  in
  let n_attrs = Binio.read_u16 c in
  let attrs =
    List.init n_attrs (fun _ ->
        let aname = Binio.read_str16 c in
        match Binio.read_u8 c with
        | 0 -> (aname, Dataset.Str (Binio.read_str16 c))
        | 1 -> (aname, Dataset.Num (Binio.read_f64 c))
        | _ -> raise (Binio.Corrupt "bad attribute tag"))
  in
  let crc = Binio.read_u32 c in
  let ds = { Dataset.name; dtype; shape; layout; storage; attrs } in
  { ds; data_off; runs; stored_len; crc }

let open_port port =
  let n, c = parse_header port in
  (* every dataset entry needs at least 8 header bytes: reject counts the
     header cannot hold before allocating the table *)
  if n * 8 > Binio.remaining c + 8 then raise (Binio.Corrupt "bad dataset count");
  let entries = Hashtbl.create (max 4 (min n 65536)) in
  let order = ref [] in
  for _ = 1 to n do
    let e = parse_entry c in
    if Hashtbl.mem entries e.ds.Dataset.name then raise (Binio.Corrupt "duplicate dataset name");
    Hashtbl.add entries e.ds.Dataset.name e;
    order := e.ds.Dataset.name :: !order
  done;
  { port; order = List.rev !order; entries }

let open_file ?tracer ?(pid = 1) path =
  let port = Io_port.of_file path in
  let port = match tracer with None -> port | Some t -> Tracer.wrap t ~pid port in
  open_port port

let close t = t.port.Io_port.close ()

let path t = t.port.Io_port.path

let datasets t = List.map (fun name -> (Hashtbl.find t.entries name).ds) t.order

let entry t name =
  match Hashtbl.find_opt t.entries name with Some e -> e | None -> raise Not_found

let find t name = (entry t name).ds

(* Packed position of a logical byte range [eoff, eoff+len) of a sparse
   dataset, or None when it is not fully materialized. *)
let sparse_locate e eoff len =
  let runs = e.runs in
  let n = Array.length runs in
  (* binary search: last run with lo <= eoff *)
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let rlo, rhi, packed = runs.(mid) in
      if eoff < rlo then search lo (mid - 1)
      else if eoff >= rhi then search (mid + 1) hi
      else if eoff + len <= rhi then Some (packed + (eoff - rlo))
      else None
    end
  in
  search 0 (n - 1)

let read_element_bytes t e idx =
  let ds = e.ds in
  let esz = Dtype.size ds.Dataset.dtype in
  let eoff = Dataset.element_offset ds idx in
  match ds.Dataset.storage with
  | Dataset.Dense -> t.port.Io_port.pread (e.data_off + eoff) esz
  | Dataset.Sparse _ -> (
    match sparse_locate e eoff esz with
    | Some packed -> t.port.Io_port.pread (e.data_off + packed) esz
    | None ->
      raise
        (Data_missing { path = path t; dataset = ds.Dataset.name; index = Array.copy idx; offset = eoff }))

let read_element t name idx =
  let e = entry t name in
  let buf = read_element_bytes t e idx in
  Dtype.decode e.ds.Dataset.dtype buf 0

let read_slab t name slab f =
  let e = entry t name in
  let ds = e.ds in
  let esz = Dtype.size ds.Dataset.dtype in
  match ds.Dataset.storage with
  | Dataset.Sparse _ ->
    Hyperslab.iter ~clip:ds.Dataset.shape slab (fun idx ->
        let buf = read_element_bytes t e idx in
        f idx (Dtype.decode ds.Dataset.dtype buf 0))
  | Dataset.Dense ->
    (* Batch byte-adjacent elements into one pread each, the way an
       application reads nbytes at startoff (Fig. 2b). *)
    let start = ref (-1) in
    let indices = ref [] in
    let count = ref 0 in
    let flush () =
      if !count > 0 then begin
        let buf = t.port.Io_port.pread (e.data_off + !start) (!count * esz) in
        List.iteri
          (fun i idx ->
            let pos = (!count - 1 - i) * esz in
            f idx (Dtype.decode ds.Dataset.dtype buf pos))
          !indices;
        start := -1;
        indices := [];
        count := 0
      end
    in
    Hyperslab.iter ~clip:ds.Dataset.shape slab (fun idx ->
        let eoff = Dataset.element_offset ds idx in
        if !count > 0 && eoff = !start + (!count * esz) then begin
          indices := Array.copy idx :: !indices;
          incr count
        end
        else begin
          flush ();
          start := eoff;
          indices := [ Array.copy idx ];
          count := 1
        end);
    flush ()

let mean_slab t name slab =
  let sum = ref 0.0 and n = ref 0 in
  read_slab t name slab (fun _ v ->
      sum := !sum +. v;
      incr n);
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let read_raw t name iv =
  let e = entry t name in
  if Dataset.is_sparse e.ds then invalid_arg "File.read_raw: sparse dataset";
  let len = Interval.length iv in
  if iv.Interval.lo < 0 || iv.Interval.hi > Dataset.logical_bytes e.ds then
    invalid_arg "File.read_raw: out of section";
  t.port.Io_port.pread (e.data_off + iv.Interval.lo) len

let file_size t = t.port.Io_port.size ()

let verify t name =
  let e = entry t name in
  e.stored_len = 0
  || Binio.crc32 (t.port.Io_port.pread e.data_off e.stored_len) = e.crc

let verify_all t = List.for_all (fun name -> verify t name) t.order
