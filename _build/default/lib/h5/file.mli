open Kondo_dataarray
open Kondo_audit

(** KH5 file reader: the data-access path of the benchmark programs.

    Every byte read flows through an {!Io_port}, so wrapping the port
    with {!Tracer.wrap} audits the reader exactly the way Sciunit's
    interposition audits HDF5's [read] calls (paper §IV-C, §V-D6).

    Reading a sparse (debloated) dataset at an index whose bytes were
    carved away raises {!Data_missing} — the paper's "data missing"
    exception (§III). *)

type t

type missing = { path : string; dataset : string; index : int array; offset : int }

exception Data_missing of missing

val open_port : Io_port.t -> t
(** Parse a KH5 file from a port.  @raise Binio.Corrupt on bad input. *)

val open_file : ?tracer:Tracer.t -> ?pid:int -> string -> t
(** Open from disk; with [~tracer] all reads (header parsing included)
    are audited under [pid] (default 1). *)

val close : t -> unit

val path : t -> string

val datasets : t -> Dataset.t list
(** In file order. *)

val find : t -> string -> Dataset.t
(** @raise Not_found for unknown dataset names. *)

val read_element : t -> string -> int array -> float
(** One element.  @raise Data_missing on carved-away data. *)

val read_slab : t -> string -> Hyperslab.t -> (int array -> float -> unit) -> unit
(** Visit every in-bounds element of a hyperslab selection.  Dense
    datasets are read in batched contiguous runs (one [pread] per run,
    like an application reading [nbytes] at [startoff] — Fig. 2b);
    sparse datasets fall back to per-element reads.
    @raise Data_missing on carved-away data. *)

val mean_slab : t -> string -> Hyperslab.t -> float
(** Convenience reduction used by examples: mean of selected elements. *)

val read_raw : t -> string -> Kondo_interval.Interval.t -> bytes
(** Raw bytes of a logical data-section range of a {e dense} dataset
    (used when packing debloated files).  @raise Invalid_argument on
    sparse datasets or out-of-section ranges. *)

val file_size : t -> int
(** Total on-disk size in bytes. *)

val verify : t -> string -> bool
(** Recompute the stored data section's CRC-32 and compare with the
    header's — detects silent corruption of a dataset's bytes. *)

val verify_all : t -> bool
