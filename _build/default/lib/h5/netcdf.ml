open Kondo_dataarray
open Kondo_audit

type nc_type = Nc_int | Nc_float | Nc_double

type dim = { dim_name : string; size : int }

type var = { var_name : string; dim_ids : int array; nc_type : nc_type; begin_ : int }

type t = { port : Io_port.t; dim_list : dim list; var_list : var list }

let nc_type_size = function Nc_int | Nc_float -> 4 | Nc_double -> 8

let nc_type_code = function Nc_int -> 4 | Nc_float -> 5 | Nc_double -> 6

let nc_type_of_code = function
  | 4 -> Some Nc_int
  | 5 -> Some Nc_float
  | 6 -> Some Nc_double
  | _ -> None

(* NetCDF classic is big-endian, with names and data padded to 4-byte
   boundaries. *)
let pad4 n = (n + 3) / 4 * 4

let put_u32 b v =
  Buffer.add_uint8 b ((v lsr 24) land 0xFF);
  Buffer.add_uint8 b ((v lsr 16) land 0xFF);
  Buffer.add_uint8 b ((v lsr 8) land 0xFF);
  Buffer.add_uint8 b (v land 0xFF)

let put_name b s =
  put_u32 b (String.length s);
  Buffer.add_string b s;
  for _ = String.length s + 1 to pad4 (String.length s) do
    Buffer.add_char b '\000'
  done

let nc_dimension = 0x0A
let nc_variable = 0x0B

let encode_value ty v buf off =
  match ty with
  | Nc_int ->
    let x = Int32.of_float v in
    Bytes.set_int32_be buf off x
  | Nc_float -> Bytes.set_int32_be buf off (Int32.bits_of_float v)
  | Nc_double -> Bytes.set_int64_be buf off (Int64.bits_of_float v)

let decode_value ty buf off =
  match ty with
  | Nc_int -> Int32.to_float (Bytes.get_int32_be buf off)
  | Nc_float -> Int32.float_of_bits (Bytes.get_int32_be buf off)
  | Nc_double -> Int64.float_of_bits (Bytes.get_int64_be buf off)

let header_bytes ~dims ~vars ~begins =
  let b = Buffer.create 256 in
  Buffer.add_string b "CDF\x01";
  put_u32 b 0 (* numrecs: no record dimension *) ;
  (* dimension list *)
  if dims = [] then begin
    put_u32 b 0;
    put_u32 b 0
  end
  else begin
    put_u32 b nc_dimension;
    put_u32 b (List.length dims);
    List.iter
      (fun d ->
        put_name b d.dim_name;
        put_u32 b d.size)
      dims
  end;
  (* global attribute list: absent *)
  put_u32 b 0;
  put_u32 b 0;
  (* variable list *)
  if vars = [] then begin
    put_u32 b 0;
    put_u32 b 0
  end
  else begin
    put_u32 b nc_variable;
    put_u32 b (List.length vars);
    List.iter2
      (fun (name, dim_ids, ty, _) begin_ ->
        put_name b name;
        put_u32 b (Array.length dim_ids);
        Array.iter (put_u32 b) dim_ids;
        (* variable attribute list: absent *)
        put_u32 b 0;
        put_u32 b 0;
        put_u32 b (nc_type_code ty);
        let nelems =
          Array.fold_left (fun acc id -> acc * (List.nth dims id).size) 1 dim_ids
        in
        put_u32 b (pad4 (nelems * nc_type_size ty)) (* vsize *) ;
        put_u32 b begin_)
      vars begins
  end;
  Buffer.to_bytes b

let write path ~dims ~vars =
  let names = List.map (fun (n, _, _, _) -> n) vars in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Netcdf.write: duplicate variable names";
  let ndims = List.length dims in
  List.iter
    (fun (_, dim_ids, _, _) ->
      Array.iter (fun id -> if id < 0 || id >= ndims then invalid_arg "Netcdf.write: bad dim id") dim_ids)
    vars;
  (* two-pass: header size is independent of the begin values' width *)
  let var_size (_, dim_ids, ty, _) =
    let nelems = Array.fold_left (fun acc id -> acc * (List.nth dims id).size) 1 dim_ids in
    pad4 (nelems * nc_type_size ty)
  in
  let dummy = List.map (fun _ -> 0) vars in
  let hlen = Bytes.length (header_bytes ~dims ~vars ~begins:dummy) in
  let begins =
    let off = ref hlen in
    List.map
      (fun v ->
        let b = !off in
        off := !off + var_size v;
        b)
      vars
  in
  let header = header_bytes ~dims ~vars ~begins in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_bytes oc header;
      List.iter
        (fun ((_, dim_ids, ty, fill) as v) ->
          let shape_dims = Array.map (fun id -> (List.nth dims id).size) dim_ids in
          let buf = Bytes.make (var_size v) '\000' in
          if Array.length shape_dims = 0 then encode_value ty (fill [||]) buf 0
          else begin
            let shape = Shape.create shape_dims in
            Shape.iter shape (fun idx ->
                encode_value ty (fill idx) buf (Shape.linearize shape idx * nc_type_size ty))
          end;
          output_bytes oc buf)
        vars)

(* ---------------- reading ---------------- *)

type cursor = { mutable pos : int; port : Io_port.t }

let need c n =
  if c.pos + n > c.port.Io_port.size () then raise (Binio.Corrupt "netcdf: truncated")

let read_bytes c n =
  need c n;
  let b = c.port.Io_port.pread c.pos n in
  c.pos <- c.pos + n;
  b

let read_u32 c =
  let b = read_bytes c 4 in
  let v =
    (Bytes.get_uint8 b 0 lsl 24)
    lor (Bytes.get_uint8 b 1 lsl 16)
    lor (Bytes.get_uint8 b 2 lsl 8)
    lor Bytes.get_uint8 b 3
  in
  v

let read_name c =
  let n = read_u32 c in
  if n > 0xFFFF then raise (Binio.Corrupt "netcdf: absurd name length");
  let b = read_bytes c (pad4 n) in
  Bytes.sub_string b 0 n

let skip_attributes c =
  let tag = read_u32 c in
  let count = read_u32 c in
  if tag <> 0x0C && not (tag = 0 && count = 0) then raise (Binio.Corrupt "netcdf: bad attr tag");
  if count <> 0 then raise (Binio.Corrupt "netcdf: attributes unsupported")

let open_port port =
  let c = { pos = 0; port } in
  let magic = read_bytes c 4 in
  if Bytes.sub_string magic 0 3 <> "CDF" || Bytes.get magic 3 <> '\x01' then
    raise (Binio.Corrupt "netcdf: bad magic");
  let numrecs = read_u32 c in
  if numrecs <> 0 then raise (Binio.Corrupt "netcdf: record dimension unsupported");
  let dim_tag = read_u32 c in
  let ndims = read_u32 c in
  if dim_tag <> nc_dimension && not (dim_tag = 0 && ndims = 0) then
    raise (Binio.Corrupt "netcdf: bad dim tag");
  let dim_list =
    List.init ndims (fun _ ->
        let dim_name = read_name c in
        let size = read_u32 c in
        if size = 0 then raise (Binio.Corrupt "netcdf: record dimension unsupported");
        { dim_name; size })
  in
  skip_attributes c;
  let var_tag = read_u32 c in
  let nvars = read_u32 c in
  if var_tag <> nc_variable && not (var_tag = 0 && nvars = 0) then
    raise (Binio.Corrupt "netcdf: bad var tag");
  let var_list =
    List.init nvars (fun _ ->
        let var_name = read_name c in
        let rank = read_u32 c in
        if rank > 8 then raise (Binio.Corrupt "netcdf: absurd rank");
        let dim_ids =
          Array.init rank (fun _ ->
              let id = read_u32 c in
              if id >= ndims then raise (Binio.Corrupt "netcdf: bad dim id");
              id)
        in
        skip_attributes c;
        let ty =
          match nc_type_of_code (read_u32 c) with
          | Some ty -> ty
          | None -> raise (Binio.Corrupt "netcdf: unsupported type")
        in
        let _vsize = read_u32 c in
        let begin_ = read_u32 c in
        { var_name; dim_ids; nc_type = ty; begin_ })
  in
  { port; dim_list; var_list }

let open_file ?tracer ?(pid = 1) path =
  let port = Io_port.of_file path in
  let port = match tracer with None -> port | Some t -> Tracer.wrap t ~pid port in
  open_port port

let close (t : t) = t.port.Io_port.close ()

let dims t = t.dim_list
let vars t = t.var_list

let find_var t name =
  match List.find_opt (fun v -> String.equal v.var_name name) t.var_list with
  | Some v -> v
  | None -> raise Not_found

let shape_of_var t v =
  if Array.length v.dim_ids = 0 then Shape.create [| 1 |]
  else Shape.create (Array.map (fun id -> (List.nth t.dim_list id).size) v.dim_ids)

let read_element t name idx =
  let v = find_var t name in
  let shape = shape_of_var t v in
  if not (Shape.in_bounds shape idx) then invalid_arg "Netcdf.read_element: out of bounds";
  let esz = nc_type_size v.nc_type in
  let off = v.begin_ + (Shape.linearize shape idx * esz) in
  decode_value v.nc_type (t.port.Io_port.pread off esz) 0

let read_slab t name slab f =
  let v = find_var t name in
  let shape = shape_of_var t v in
  Hyperslab.iter ~clip:shape slab (fun idx -> f idx (read_element t name idx))

let to_kh5 t path =
  let datasets =
    List.map
      (fun v ->
        let shape = shape_of_var t v in
        let dtype = match v.nc_type with Nc_int -> Dtype.Int32 | Nc_float | Nc_double -> Dtype.Float64 in
        let ds = Dataset.dense ~name:v.var_name ~dtype ~shape () in
        (ds, fun idx -> read_element t v.var_name idx))
      t.var_list
  in
  Writer.write path datasets
