open Kondo_dataarray
open Kondo_audit

(** NetCDF classic (CDF-1) files.

    The paper's prototype is "tested for HDF5 and NetCDF" (§I); this
    module implements the classic NetCDF format faithfully enough for
    Kondo's needs: the big-endian CDF-1 header (dimension list, variable
    list with shapes, types and data offsets) and contiguous fixed-size
    variable data.  Attribute lists are written empty and skipped on
    read; record (unlimited) dimensions are not supported.

    Reads flow through {!Io_port}, so NetCDF executions are audited by
    the same tracer as KH5 ones.  [to_kh5] converts a NetCDF file to a
    KH5 one so the debloating pipeline (which writes sparse KH5) applies
    to NetCDF-backed applications. *)

type nc_type = Nc_int | Nc_float | Nc_double

type dim = { dim_name : string; size : int }

type var = {
  var_name : string;
  dim_ids : int array;   (** indices into the file's dimension list *)
  nc_type : nc_type;
  begin_ : int;          (** absolute byte offset of the variable's data *)
}

type t

val nc_type_size : nc_type -> int

val write :
  string ->
  dims:dim list ->
  vars:(string * int array * nc_type * (int array -> float)) list ->
  unit
(** [write path ~dims ~vars] creates a classic NetCDF file.  Each var is
    (name, dim ids, type, fill).  @raise Invalid_argument on unknown dim
    ids or duplicate names. *)

val open_port : Io_port.t -> t
(** @raise Binio.Corrupt on malformed input. *)

val open_file : ?tracer:Tracer.t -> ?pid:int -> string -> t

val close : t -> unit

val dims : t -> dim list
val vars : t -> var list
val find_var : t -> string -> var
(** @raise Not_found. *)

val shape_of_var : t -> var -> Shape.t

val read_element : t -> string -> int array -> float

val read_slab : t -> string -> Hyperslab.t -> (int array -> float -> unit) -> unit
(** Clipped to the variable's shape, like {!File.read_slab}. *)

val to_kh5 : t -> string -> unit
(** Convert every variable into a dense KH5 dataset (Float64 for
    [Nc_float]/[Nc_double], Int32 for [Nc_int]) at the given path. *)
