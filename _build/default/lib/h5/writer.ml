open Kondo_dataarray
open Kondo_interval

let magic = "KH5\x01"

type pending = {
  ds : Dataset.t;
  runs : (int * int) list; (* logical byte ranges, for sparse *)
  stored_len : int;
  mutable data_off : int;
  mutable crc : int; (* CRC-32 of the stored data section *)
}

let header_bytes pendings =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Binio.u32 b 0 (* header_len placeholder; width is fixed *) ;
  Binio.u32 b (List.length pendings);
  List.iter
    (fun p ->
      let ds = p.ds in
      Binio.str16 b ds.Dataset.name;
      Binio.u8 b (Dtype.code ds.Dataset.dtype);
      let dims = Shape.dims ds.Dataset.shape in
      Binio.u8 b (Array.length dims);
      Array.iter (Binio.u32 b) dims;
      (match ds.Dataset.layout with
      | Layout.Contiguous -> Binio.u8 b 0
      | Layout.Chunked cdims ->
        Binio.u8 b 1;
        Array.iter (Binio.u32 b) cdims);
      (match ds.Dataset.storage with
      | Dataset.Dense ->
        Binio.u8 b 0;
        Binio.u64 b p.data_off;
        Binio.u64 b p.stored_len
      | Dataset.Sparse _ ->
        Binio.u8 b 1;
        Binio.u64 b p.data_off;
        Binio.u64 b p.stored_len;
        Binio.u32 b (List.length p.runs);
        List.iter
          (fun (lo, hi) ->
            Binio.u64 b lo;
            Binio.u64 b hi)
          p.runs);
      Binio.u16 b (List.length ds.Dataset.attrs);
      List.iter
        (fun (name, attr) ->
          Binio.str16 b name;
          match attr with
          | Dataset.Str v ->
            Binio.u8 b 0;
            Binio.str16 b v
          | Dataset.Num v ->
            Binio.u8 b 1;
            Binio.f64 b v)
        ds.Dataset.attrs;
      Binio.u32 b p.crc)
    pendings;
  let out = Buffer.to_bytes b in
  (* Patch header_len (bytes 4..8). *)
  Bytes.set_int32_le out 4 (Int32.of_int (Bytes.length out));
  out

let layout_offsets pendings =
  (* First pass fixes the header length (it does not depend on the offset
     values, which have fixed width); second pass assigns data offsets. *)
  let hlen = Bytes.length (header_bytes pendings) in
  let off = ref hlen in
  List.iter
    (fun p ->
      p.data_off <- !off;
      off := !off + p.stored_len)
    pendings

let dense_section ds fill =
  let nbytes = Dataset.logical_bytes ds in
  let buf = Bytes.make nbytes '\000' in
  let esz = Dtype.size ds.Dataset.dtype in
  let nslots = nbytes / esz in
  for slot = 0 to nslots - 1 do
    match Dataset.index_of_offset ds (slot * esz) with
    | Some idx -> Dtype.encode ds.Dataset.dtype (fill idx) buf (slot * esz)
    | None -> () (* chunk padding stays zero *)
  done;
  buf

let check_distinct datasets =
  let names = List.map (fun (ds, _) -> ds.Dataset.name) datasets in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Writer.write: duplicate dataset names"

let to_bytes_with sections pendings =
  let header = header_bytes pendings in
  let total = List.fold_left (fun acc p -> acc + p.stored_len) (Bytes.length header) pendings in
  let out = Bytes.create total in
  Bytes.blit header 0 out 0 (Bytes.length header);
  List.iter2 (fun p sec -> Bytes.blit sec 0 out p.data_off (Bytes.length sec)) pendings sections;
  out

let write_bytes datasets =
  check_distinct datasets;
  List.iter
    (fun (ds, _) ->
      if Dataset.is_sparse ds then invalid_arg "Writer.write: sparse dataset in dense write")
    datasets;
  let pendings =
    List.map
      (fun (ds, _) -> { ds; runs = []; stored_len = Dataset.logical_bytes ds; data_off = 0; crc = 0 })
      datasets
  in
  layout_offsets pendings;
  let sections = List.map (fun (ds, fill) -> dense_section ds fill) datasets in
  List.iter2 (fun p sec -> p.crc <- Binio.crc32 sec) pendings sections;
  to_bytes_with sections pendings

let output_file path bytes =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc bytes)

let write path datasets = output_file path (write_bytes datasets)

let align_keep ds keep =
  let esz = Dtype.size ds.Dataset.dtype in
  let limit = Dataset.logical_bytes ds in
  List.fold_left
    (fun acc iv ->
      let lo = max 0 iv.Interval.lo and hi = min limit iv.Interval.hi in
      if lo >= hi then acc
      else begin
        let lo = lo / esz * esz in
        let hi = (hi + esz - 1) / esz * esz in
        Interval_set.add acc (Interval.make lo (min limit hi))
      end)
    Interval_set.empty (Interval_set.to_list keep)

let write_debloated path ~source ~keep =
  let pendings_and_sections =
    List.map
      (fun ds ->
        if Dataset.is_sparse ds then invalid_arg "Writer.write_debloated: source already sparse";
        let aligned = align_keep ds (keep ds.Dataset.name) in
        let runs = List.map (fun iv -> (iv.Interval.lo, iv.Interval.hi)) (Interval_set.to_list aligned) in
        let stored_len = Interval_set.total_length aligned in
        let sparse_ds = { ds with Dataset.storage = Dataset.Sparse aligned } in
        let section = Bytes.create stored_len in
        let pos = ref 0 in
        List.iter
          (fun (lo, hi) ->
            let chunk = File.read_raw source ds.Dataset.name (Interval.make lo hi) in
            Bytes.blit chunk 0 section !pos (hi - lo);
            pos := !pos + (hi - lo))
          runs;
        ({ ds = sparse_ds; runs; stored_len; data_off = 0; crc = Binio.crc32 section }, section))
      (File.datasets source)
  in
  let pendings = List.map fst pendings_and_sections in
  let sections = List.map snd pendings_and_sections in
  layout_offsets pendings;
  output_file path (to_bytes_with sections pendings)
