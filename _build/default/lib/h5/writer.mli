(** KH5 file writer.

    A KH5 file is a superblock (magic, dataset count), a metadata table
    describing every dataset (name, dtype, dims, layout, storage, data
    offset), and the data sections.  Sparse (debloated) datasets
    additionally carry a run table: the byte ranges of the logical data
    section that are materialized, in order, concatenated in the data
    section. *)

val magic : string

val write : string -> (Dataset.t * (int array -> float)) list -> unit
(** [write path datasets] creates a KH5 file.  Every dataset must be
    [Dense]; values come from the fill function; chunk padding slots are
    written as zero.  Dataset names must be distinct. *)

val write_bytes : (Dataset.t * (int array -> float)) list -> bytes
(** Same serialization, in memory. *)

val write_debloated :
  string -> source:File.t -> keep:(string -> Kondo_interval.Interval_set.t) -> unit
(** [write_debloated path ~source ~keep] re-writes every dataset of
    [source] keeping only the byte ranges [keep name] of each logical
    data section (the data subset [D_Θ] of Definition 1 — everything
    else becomes Null, i.e. absent).  Ranges are clipped to the section
    and rounded out to element boundaries. *)
