lib/interval/interval.ml: Int Printf
