lib/interval/interval.mli:
