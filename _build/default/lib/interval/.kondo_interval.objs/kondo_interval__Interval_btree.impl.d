lib/interval/interval_btree.ml: Array Interval Interval_set List
