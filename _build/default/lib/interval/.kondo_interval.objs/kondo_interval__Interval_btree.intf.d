lib/interval/interval_btree.mli: Interval Interval_set
