lib/interval/interval_set.ml: Interval List String
