lib/interval/interval_set.mli: Interval
