type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let of_event ~offset ~size =
  if size < 0 then invalid_arg "Interval.of_event: negative size";
  { lo = offset; hi = offset + size }

let length t = t.hi - t.lo
let is_empty t = t.hi <= t.lo
let overlaps a b = a.lo < b.hi && b.lo < a.hi
let touches a b = a.lo <= b.hi && b.lo <= a.hi
let contains_point t x = t.lo <= x && x < t.hi
let contains a b = a.lo <= b.lo && b.hi <= a.hi
let union a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let compare a b = match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let to_string t = Printf.sprintf "[%d,%d)" t.lo t.hi
