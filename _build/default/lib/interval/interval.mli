(** Half-open byte-offset intervals [\[lo, hi)].

    An I/O event [⟨id, c, l, sz⟩] affects the interval [\[l, l+sz)]
    (paper §IV-C); the worked example there — events (0,110), (70,30),
    (130,20), (90,30) merging to (0,120) and (130,150) — fixes the
    half-open convention. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi]; requires [lo <= hi]. *)

val of_event : offset:int -> size:int -> t
(** [\[offset, offset+size)]. *)

val length : t -> int
val is_empty : t -> bool

val overlaps : t -> t -> bool
(** Strict overlap: a shared point with positive measure. *)

val touches : t -> t -> bool
(** Overlapping or exactly adjacent — coalescible. *)

val contains_point : t -> int -> bool
val contains : t -> t -> bool
val union : t -> t -> t
(** Hull of the two; meaningful when [touches]. *)

val inter : t -> t -> t option
val compare : t -> t -> int
(** By [lo], then [hi]. *)

val to_string : t -> string
