type 'a node = {
  mutable keys : (Interval.t * 'a) array; (* sorted by Interval.compare *)
  mutable kids : 'a node array;           (* empty iff leaf; else length keys+1 *)
  mutable max_hi : int;                   (* max interval end in this subtree *)
}

type 'a t = { mutable root : 'a node; degree : int; mutable cardinal : int }

let leaf_node () = { keys = [||]; kids = [||]; max_hi = min_int }

let is_leaf n = Array.length n.kids = 0

let recompute_max_hi n =
  let m = ref min_int in
  Array.iter (fun (iv, _) -> if iv.Interval.hi > !m then m := iv.Interval.hi) n.keys;
  Array.iter (fun k -> if k.max_hi > !m then m := k.max_hi) n.kids;
  n.max_hi <- !m

let create ?(min_degree = 16) () =
  if min_degree < 2 then invalid_arg "Interval_btree.create: min_degree < 2";
  { root = leaf_node (); degree = min_degree; cardinal = 0 }

let cardinal t = t.cardinal

let height t =
  if t.cardinal = 0 then 0
  else begin
    let rec go n acc = if is_leaf n then acc else go n.kids.(0) (acc + 1) in
    go t.root 1
  end

(* Split the full child [i] of [parent]: median key moves up. *)
let split_child t parent i =
  let d = t.degree in
  let child = parent.kids.(i) in
  assert (Array.length child.keys = (2 * d) - 1);
  let median = child.keys.(d - 1) in
  let right =
    { keys = Array.sub child.keys d (d - 1);
      kids = (if is_leaf child then [||] else Array.sub child.kids d d);
      max_hi = min_int }
  in
  child.keys <- Array.sub child.keys 0 (d - 1);
  if not (is_leaf child) then child.kids <- Array.sub child.kids 0 d;
  recompute_max_hi child;
  recompute_max_hi right;
  let nkeys = Array.length parent.keys in
  let keys' = Array.make (nkeys + 1) median in
  Array.blit parent.keys 0 keys' 0 i;
  Array.blit parent.keys i keys' (i + 1) (nkeys - i);
  let kids' = Array.make (nkeys + 2) right in
  Array.blit parent.kids 0 kids' 0 (i + 1);
  Array.blit parent.kids (i + 1) kids' (i + 2) (nkeys - i);
  kids'.(i) <- child;
  kids'.(i + 1) <- right;
  parent.keys <- keys';
  parent.kids <- kids'

let key_position keys iv =
  (* First position whose key is >= iv. *)
  let n = Array.length keys in
  let rec go i = if i < n && Interval.compare (fst keys.(i)) iv < 0 then go (i + 1) else i in
  go 0

let rec insert_nonfull t n iv payload =
  if iv.Interval.hi > n.max_hi then n.max_hi <- iv.Interval.hi;
  let pos = key_position n.keys iv in
  if is_leaf n then begin
    let nkeys = Array.length n.keys in
    let keys' = Array.make (nkeys + 1) (iv, payload) in
    Array.blit n.keys 0 keys' 0 pos;
    Array.blit n.keys pos keys' (pos + 1) (nkeys - pos);
    n.keys <- keys'
  end
  else begin
    let pos =
      if Array.length n.kids.(pos).keys = (2 * t.degree) - 1 then begin
        split_child t n pos;
        if Interval.compare (fst n.keys.(pos)) iv < 0 then pos + 1 else pos
      end
      else pos
    in
    insert_nonfull t n.kids.(pos) iv payload
  end

let insert t iv payload =
  let root = t.root in
  if Array.length root.keys = (2 * t.degree) - 1 then begin
    let new_root = { keys = [||]; kids = [| root |]; max_hi = root.max_hi } in
    t.root <- new_root;
    split_child t new_root 0
  end;
  insert_nonfull t t.root iv payload;
  t.cardinal <- t.cardinal + 1

let overlapping t probe =
  if Interval.is_empty probe then []
  else begin
    let acc = ref [] in
    let rec visit n =
      if n.max_hi > probe.Interval.lo then begin
        let nkeys = Array.length n.keys in
        let rec walk i =
          (* Visit child i, then key i, until keys start at or past probe.hi. *)
          if not (is_leaf n) then visit n.kids.(i);
          if i < nkeys then begin
            let iv, payload = n.keys.(i) in
            if iv.Interval.lo < probe.Interval.hi then begin
              if Interval.overlaps iv probe then acc := (iv, payload) :: !acc;
              walk (i + 1)
            end
          end
        in
        walk 0
      end
    in
    visit t.root;
    List.rev !acc
  end

let stab t x = overlapping t (Interval.make x (x + 1))

let iter t f =
  let rec visit n =
    let nkeys = Array.length n.keys in
    for i = 0 to nkeys do
      if not (is_leaf n) then visit n.kids.(i);
      if i < nkeys then begin
        let iv, payload = n.keys.(i) in
        f iv payload
      end
    done
  in
  if t.cardinal > 0 then visit t.root

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun iv p -> acc := f !acc iv p);
  !acc

let coalesced t = fold t ~init:Interval_set.empty ~f:(fun s iv _ -> Interval_set.add s iv)

let check_invariants t =
  let d = t.degree in
  let fail msg = failwith ("Interval_btree invariant: " ^ msg) in
  let rec visit n depth is_root =
    let nkeys = Array.length n.keys in
    if not is_root && nkeys < d - 1 then fail "underfull node";
    if nkeys > (2 * d) - 1 then fail "overfull node";
    for i = 0 to nkeys - 2 do
      if Interval.compare (fst n.keys.(i)) (fst n.keys.(i + 1)) > 0 then fail "key order"
    done;
    let m = ref min_int in
    Array.iter (fun (iv, _) -> m := max !m iv.Interval.hi) n.keys;
    if is_leaf n then begin
      if !m <> n.max_hi && nkeys > 0 then fail "leaf max_hi";
      [ depth ]
    end
    else begin
      if Array.length n.kids <> nkeys + 1 then fail "kid count";
      let depths = ref [] in
      Array.iteri
        (fun i k ->
          m := max !m k.max_hi;
          (* separator ordering *)
          if i < nkeys then begin
            Array.iter
              (fun (iv, _) ->
                if Interval.compare iv (fst n.keys.(i)) > 0 then fail "child keys exceed separator")
              k.keys
          end;
          if i > 0 then begin
            Array.iter
              (fun (iv, _) ->
                if Interval.compare iv (fst n.keys.(i - 1)) < 0 then fail "child keys below separator")
              k.keys
          end;
          depths := visit k (depth + 1) false @ !depths)
        n.kids;
      if !m <> n.max_hi then fail "max_hi";
      !depths
    end
  in
  if t.cardinal > 0 then begin
    match List.sort_uniq compare (visit t.root 0 true) with
    | [] | [ _ ] -> ()
    | _ -> fail "leaves at different depths"
  end
