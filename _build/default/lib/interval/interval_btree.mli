(** Interval B-tree: the event index of paper §IV-C.

    "Kondo uses interval-based B-trees to index events and performs
    per-process lookup."  This is a classic B-tree (CLRS, configurable
    minimum degree) keyed by interval start, augmented with the maximum
    interval end of every subtree so that overlap ("stabbing") queries
    prune whole subtrees.  Payloads carry event metadata (pid, op, ...).

    Insertion is O(log_d n) node visits; [overlapping] is output-sensitive.
*)

type 'a t

val create : ?min_degree:int -> unit -> 'a t
(** [min_degree] (the B-tree's [t] parameter) defaults to 16: nodes hold
    between [t-1] and [2t-1] keys.  Must be [>= 2]. *)

val insert : 'a t -> Interval.t -> 'a -> unit
(** Duplicate intervals are kept (events may repeat a range). *)

val cardinal : 'a t -> int

val height : 'a t -> int
(** Root-to-leaf node count; 0 when empty. *)

val overlapping : 'a t -> Interval.t -> (Interval.t * 'a) list
(** All stored intervals strictly overlapping the probe, in key order. *)

val stab : 'a t -> int -> (Interval.t * 'a) list
(** All stored intervals containing the point. *)

val iter : 'a t -> (Interval.t -> 'a -> unit) -> unit
(** In key order. *)

val fold : 'a t -> init:'b -> f:('b -> Interval.t -> 'a -> 'b) -> 'b

val coalesced : 'a t -> Interval_set.t
(** Union of all stored intervals as a coalesced set — the accessed-offset
    summary of §IV-C's example. *)

val check_invariants : 'a t -> unit
(** Test hook: raises [Failure] when B-tree balance, key ordering, or
    max-hi augmentation is violated. *)
