type t = Interval.t list (* sorted by lo; disjoint; pairwise non-touching *)

let empty = []
let is_empty t = t = []

let add t iv =
  if Interval.is_empty iv then t
  else begin
    (* Split into members strictly before, touching, and strictly after. *)
    let before, rest = List.partition (fun m -> m.Interval.hi < iv.Interval.lo) t in
    let touching, after = List.partition (fun m -> Interval.touches m iv) rest in
    let merged = List.fold_left Interval.union iv touching in
    before @ (merged :: after)
  end

let of_list l = List.fold_left add empty l

let of_sorted l =
  let rec go acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some c -> c :: acc)
    | iv :: rest ->
      if Interval.is_empty iv then go acc cur rest
      else begin
        match cur with
        | None -> go acc (Some iv) rest
        | Some c ->
          if iv.Interval.lo < c.Interval.lo then invalid_arg "Interval_set.of_sorted: unsorted";
          if Interval.touches c iv then go acc (Some (Interval.union c iv)) rest
          else go (c :: acc) (Some iv) rest
      end
  in
  go [] None l
let to_list t = t

let mem t x = List.exists (fun m -> Interval.contains_point m x) t

let covers t iv = Interval.is_empty iv || List.exists (fun m -> Interval.contains m iv) t

let total_length t = List.fold_left (fun acc m -> acc + Interval.length m) 0 t

let cardinal = List.length

let union a b = List.fold_left add a b

let complement t ~within =
  let rec gaps cursor = function
    | [] -> if cursor < within.Interval.hi then [ Interval.make cursor within.Interval.hi ] else []
    | m :: rest ->
      let lo = max m.Interval.lo within.Interval.lo and hi = min m.Interval.hi within.Interval.hi in
      if hi <= within.Interval.lo then gaps cursor rest
      else begin
        let head = if cursor < lo then [ Interval.make cursor (min lo within.Interval.hi) ] else [] in
        head @ gaps (max cursor hi) rest
      end
  in
  gaps within.Interval.lo t

let overlapping t iv = List.filter (fun m -> Interval.overlaps m iv) t

let equal a b = a = b

let to_string t = String.concat " " (List.map Interval.to_string t)
