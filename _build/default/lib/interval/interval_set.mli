(** Coalescing sets of disjoint intervals.

    Maintains the invariant that stored intervals are non-empty, sorted,
    and pairwise non-touching: adding an interval merges it with every
    interval it overlaps or abuts, which is exactly the event merging of
    paper §IV-C. *)

type t

val empty : t
val is_empty : t -> bool

val add : t -> Interval.t -> t
(** Insert, coalescing with touching members.  Empty intervals are
    ignored. *)

val of_list : Interval.t list -> t

val of_sorted : Interval.t list -> t
(** Linear-time construction from a list already sorted by [lo];
    overlapping/touching neighbours are coalesced.
    @raise Invalid_argument when the input is not sorted. *)

val to_list : t -> Interval.t list
(** Sorted, disjoint, non-touching. *)

val mem : t -> int -> bool
(** Point membership. *)

val covers : t -> Interval.t -> bool
(** Is the whole interval covered by a single member?  (Because members
    never touch, coverage by several members is impossible.) *)

val total_length : t -> int
val cardinal : t -> int

val union : t -> t -> t

val complement : t -> within:Interval.t -> t
(** Gaps of the set inside [within]. *)

val overlapping : t -> Interval.t -> Interval.t list
(** Members intersecting a probe interval. *)

val equal : t -> t -> bool
val to_string : t -> string
