lib/prng/rng.ml: Array Char Float Int64
