lib/prng/rng.mli:
