lib/provenance/lineage.ml: Buffer Event Int Interval_set Kondo_audit Kondo_interval List Map Option Printf String Tracer
