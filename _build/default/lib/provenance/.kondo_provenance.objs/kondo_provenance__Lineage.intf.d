lib/provenance/lineage.mli: Interval_set Kondo_audit Kondo_interval Tracer
