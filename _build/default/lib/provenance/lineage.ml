open Kondo_interval
open Kondo_audit

type process = { pid : int; name : string }

type edge =
  | Used of { pid : int; path : string; ranges : Interval_set.t }
  | Generated of { pid : int; path : string; ranges : Interval_set.t }
  | Triggered of { parent : int; child : int }

module IntMap = Map.Make (Int)
module StrMap = Map.Make (String)

type access = { read : Interval_set.t; written : Interval_set.t }

module Key = struct
  type t = int * string

  let compare = compare
end

module AccessMap = Map.Make (Key)

type t = {
  procs : process IntMap.t;
  arts : unit StrMap.t;
  access : access AccessMap.t;
  children : int list IntMap.t;
}

let empty =
  { procs = IntMap.empty; arts = StrMap.empty; access = AccessMap.empty; children = IntMap.empty }

let add_process t p =
  if IntMap.mem p.pid t.procs then t else { t with procs = IntMap.add p.pid p t.procs }

let add_artifact t path = { t with arts = StrMap.add path () t.arts }

let no_access = { read = Interval_set.empty; written = Interval_set.empty }

let merge_access t pid path f =
  let t = add_artifact t path in
  let t =
    if IntMap.mem pid t.procs then t
    else add_process t { pid; name = Printf.sprintf "pid-%d" pid }
  in
  let cur = Option.value (AccessMap.find_opt (pid, path) t.access) ~default:no_access in
  { t with access = AccessMap.add (pid, path) (f cur) t.access }

let add_edge t = function
  | Used { pid; path; ranges } ->
    merge_access t pid path (fun a -> { a with read = Interval_set.union a.read ranges })
  | Generated { pid; path; ranges } ->
    merge_access t pid path (fun a -> { a with written = Interval_set.union a.written ranges })
  | Triggered { parent; child } ->
    let cur = Option.value (IntMap.find_opt parent t.children) ~default:[] in
    { t with children = IntMap.add parent (child :: cur) t.children }

let of_tracer ?(names = fun pid -> Printf.sprintf "pid-%d" pid) tracer =
  List.fold_left
    (fun t e ->
      let t = add_process t { pid = e.Event.pid; name = names e.Event.pid } in
      let t = add_artifact t e.Event.path in
      match e.Event.op with
      | Event.Read | Event.Mmap ->
        add_edge t
          (Used
             { pid = e.Event.pid;
               path = e.Event.path;
               ranges = Interval_set.of_list [ Event.interval e ] })
      | Event.Write ->
        add_edge t
          (Generated
             { pid = e.Event.pid;
               path = e.Event.path;
               ranges = Interval_set.of_list [ Event.interval e ] })
      | Event.Open | Event.Close -> t)
    empty (Tracer.events tracer)

let processes t = List.map snd (IntMap.bindings t.procs)
let artifacts t = List.map fst (StrMap.bindings t.arts)

let files_used_by t ~pid =
  AccessMap.fold
    (fun (p, path) a acc ->
      if p = pid && not (Interval_set.is_empty a.read) then path :: acc else acc)
    t.access []
  |> List.sort compare

let ranges_used t ~pid ~path =
  match AccessMap.find_opt (pid, path) t.access with
  | Some a -> a.read
  | None -> Interval_set.empty

let ranges_used_any t ~path =
  AccessMap.fold
    (fun (_, p) a acc -> if String.equal p path then Interval_set.union acc a.read else acc)
    t.access Interval_set.empty

let unused_artifacts t =
  StrMap.fold
    (fun path () acc ->
      let touched =
        AccessMap.exists
          (fun (_, p) a ->
            String.equal p path
            && (not (Interval_set.is_empty a.read) || not (Interval_set.is_empty a.written)))
          t.access
      in
      if touched then acc else path :: acc)
    t.arts []
  |> List.sort compare

let descendants t ~pid =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | p :: rest ->
      let kids = Option.value (IntMap.find_opt p t.children) ~default:[] in
      let fresh = List.filter (fun k -> not (List.mem k seen)) kids in
      go (seen @ fresh) (rest @ fresh)
  in
  go [] [ pid ]

let to_dot t =
  let b = Buffer.create 256 in
  Buffer.add_string b "digraph lineage {\n  rankdir=LR;\n";
  IntMap.iter
    (fun pid p ->
      Buffer.add_string b
        (Printf.sprintf "  p%d [shape=box,label=\"%s (pid %d)\"];\n" pid p.name pid))
    t.procs;
  StrMap.iter
    (fun path () ->
      Buffer.add_string b (Printf.sprintf "  \"%s\" [shape=ellipse];\n" path))
    t.arts;
  AccessMap.iter
    (fun (pid, path) a ->
      if not (Interval_set.is_empty a.read) then
        Buffer.add_string b
          (Printf.sprintf "  p%d -> \"%s\" [label=\"used %s\"];\n" pid path
             (Interval_set.to_string a.read));
      if not (Interval_set.is_empty a.written) then
        Buffer.add_string b
          (Printf.sprintf "  \"%s\" -> p%d [label=\"generated %s\"];\n" path pid
             (Interval_set.to_string a.written)))
    t.access;
  IntMap.iter
    (fun parent kids ->
      List.iter
        (fun child ->
          Buffer.add_string b (Printf.sprintf "  p%d -> p%d [style=dashed];\n" parent child))
        kids)
    t.children;
  Buffer.add_string b "}\n";
  Buffer.contents b
