open Kondo_interval
open Kondo_audit

(** Provenance graphs over audited executions.

    The lineage model of the paper's title: processes and file artifacts
    as nodes, SPADE/OPM-style [used] / [wasGeneratedBy] / [wasTriggeredBy]
    edges.  Coarse-grained lineage answers "which files did this run
    touch" (what classic auditing systems report, §II); fine-grained
    lineage attaches the coalesced byte ranges from the {!Tracer}'s
    interval index, which is what enables offset-level debloating. *)

type process = { pid : int; name : string }

type edge =
  | Used of { pid : int; path : string; ranges : Interval_set.t }
  | Generated of { pid : int; path : string; ranges : Interval_set.t }
  | Triggered of { parent : int; child : int }

type t

val empty : t

val add_process : t -> process -> t
(** Idempotent on pid. *)

val add_artifact : t -> string -> t
(** Declare a file artifact (e.g. a data dependency from a container
    spec) even if nothing accessed it. *)

val add_edge : t -> edge -> t
(** [Used]/[Generated] edges merge their ranges with any existing edge
    for the same (pid, path). *)

val of_tracer : ?names:(int -> string) -> Tracer.t -> t
(** Build the graph from an audit log: one process node per pid, one
    artifact per path, [Used] edges carrying coalesced read ranges and
    [Generated] edges carrying write ranges. *)

val processes : t -> process list
val artifacts : t -> string list

val files_used_by : t -> pid:int -> string list
(** Coarse-grained lineage. *)

val ranges_used : t -> pid:int -> path:string -> Interval_set.t
(** Fine-grained lineage. *)

val ranges_used_any : t -> path:string -> Interval_set.t
(** Fine-grained lineage merged over all processes. *)

val unused_artifacts : t -> string list
(** Declared artifacts no process used or generated — what file-level
    lineage debloating would drop (e.g. [D_2] of Fig. 2). *)

val descendants : t -> pid:int -> int list
(** Transitive children via [Triggered] edges, excluding the root. *)

val to_dot : t -> string
(** Graphviz rendering for inspection. *)
