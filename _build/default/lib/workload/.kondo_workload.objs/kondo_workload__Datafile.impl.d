lib/workload/datafile.ml: Array Dataset Kondo_h5 List Program Writer
