lib/workload/datafile.mli: Kondo_dataarray Layout Program
