lib/workload/idioms.ml: Array Dtype Hyperslab Kondo_dataarray Program Shape
