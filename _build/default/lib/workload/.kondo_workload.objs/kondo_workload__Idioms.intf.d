lib/workload/idioms.mli: Program
