lib/workload/program.ml: Array Dtype Float Hashtbl Hyperslab Index_set Kondo_dataarray Kondo_h5 List Shape
