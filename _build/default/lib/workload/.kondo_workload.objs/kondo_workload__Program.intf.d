lib/workload/program.mli: Dtype Hyperslab Index_set Kondo_dataarray Kondo_h5 Shape
