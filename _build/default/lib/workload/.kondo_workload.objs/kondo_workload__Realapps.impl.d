lib/workload/realapps.ml: Array Dtype Hyperslab Kondo_dataarray Program Shape
