lib/workload/realapps.mli: Program
