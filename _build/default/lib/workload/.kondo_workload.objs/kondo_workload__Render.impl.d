lib/workload/render.ml: Array Buffer Index_set Kondo_dataarray List Shape
