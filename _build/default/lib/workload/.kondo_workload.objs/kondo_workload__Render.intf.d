lib/workload/render.mli: Index_set Kondo_dataarray Shape
