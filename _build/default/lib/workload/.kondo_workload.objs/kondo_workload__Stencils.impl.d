lib/workload/stencils.ml: Array Dtype Hyperslab Kondo_dataarray List Printf Program Shape
