lib/workload/stencils.mli: Dtype Kondo_dataarray Program
