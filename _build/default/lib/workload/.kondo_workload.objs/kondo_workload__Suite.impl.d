lib/workload/suite.ml: Idioms List Program Realapps Stencils String
