lib/workload/suite.mli: Program
