lib/workload/svg.ml: Array Buffer Float Fun Hull Index_set Kondo_dataarray Kondo_geometry List Printf Shape String
