lib/workload/svg.mli: Hull Index_set Kondo_dataarray Kondo_geometry
