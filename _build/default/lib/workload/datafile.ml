open Kondo_h5

let fill idx =
  (* Injective over small indices and cheap: mixed-radix value plus a
     fractional tag so float equality is meaningful in tests. *)
  let v = Array.fold_left (fun acc i -> (acc * 8192) + i) 0 idx in
  float_of_int v +. 0.5

let dataset_of ?layout p =
  (* provenance attributes travel with the data file *)
  let attrs =
    [ ("generator", Dataset.Str "kondo/datafile");
      ("program", Dataset.Str p.Program.name);
      ("parameters", Dataset.Num (float_of_int (Program.arity p))) ]
  in
  Dataset.dense ~name:p.Program.dataset ~dtype:p.Program.dtype ~shape:p.Program.shape ?layout
    ~attrs ()

let write_for ~path ?layout p = Writer.write path [ (dataset_of ?layout p, fill) ]

let bytes_for ?layout p = Writer.write_bytes [ (dataset_of ?layout p, fill) ]

let write_many ~path ?layout programs =
  Writer.write path (List.map (fun p -> (dataset_of ?layout p, fill)) programs)
