open Kondo_dataarray

(** KH5 data files for the benchmark programs. *)

val fill : int array -> float
(** Deterministic element value: reproducible across writes, distinct per
    index (so tests can verify that debloated reads return the original
    data). *)

val write_for : path:string -> ?layout:Layout.t -> Program.t -> unit
(** Create the dense KH5 data file a program reads (dataset name from
    [Program.dataset], values from {!fill}). *)

val bytes_for : ?layout:Layout.t -> Program.t -> bytes
(** Same file, in memory (for container image layers). *)

val write_many : path:string -> ?layout:Kondo_dataarray.Layout.t -> Program.t list -> unit
(** One KH5 file holding each program's dataset (names must differ). *)
