open Kondo_dataarray

let ip = int_of_float

let plane ?(m = 64) () =
  let zlo = m / 4 and zhi = 3 * m / 4 in
  { Program.name = "PLANE";
    description = "one x-y plane at a supported depth, strided read";
    shape = Shape.create [| m; m; m |];
    dtype = Dtype.Long_double;
    param_space = [| (float_of_int zlo, float_of_int zhi); (1.0, 4.0) |];
    plan =
      (fun p ->
        let z0 = ip p.(0) and s = ip p.(1) in
        if z0 < zlo || z0 > zhi || s < 1 then []
        else
          [ Hyperslab.make ~start:[| 0; 0; z0 |] ~stride:[| s; 1; 1 |]
              ~count:[| (m + s - 1) / s; 1; 1 |] ~block:[| 1; m; 1 |] () ]);
    truth = Some (fun idx -> idx.(2) >= zlo && idx.(2) <= zhi);
    dataset = "data" }

let subvol ?(m = 64) () =
  let ext = m / 8 in
  let pos_max = m / 2 in
  { Program.name = "SUBVOL";
    description = "fixed-size sub-volume at a parameterized position";
    shape = Shape.create [| m; m; m |];
    dtype = Dtype.Long_double;
    param_space = Array.make 3 (0.0, float_of_int pos_max);
    plan =
      (fun p ->
        let x0 = ip p.(0) and y0 = ip p.(1) and z0 = ip p.(2) in
        if x0 < 0 || y0 < 0 || z0 < 0 then []
        else [ Hyperslab.block_at [| x0; y0; z0 |] [| ext; ext; ext |] ]);
    truth = Some (fun idx -> Array.for_all (fun x -> x < pos_max + ext) idx);
    dataset = "data" }

let varsubset ?(vars = 8) ?(m = 64) () =
  let supported = vars / 2 in
  { Program.name = "VARS";
    description = "one variable plane per run; only half the variables are supported";
    shape = Shape.create [| vars; m; m |];
    dtype = Dtype.Long_double;
    param_space = [| (0.0, float_of_int (supported - 1)); (0.0, float_of_int (m - 1)) |];
    plan =
      (fun p ->
        let v = ip p.(0) and x0 = ip p.(1) in
        if v < 0 || v >= supported || x0 < 0 then []
        else
          (* the per-point record of variable v: a full plane, plus a
             focus row at x0 *)
          [ Hyperslab.block_at [| v; 0; 0 |] [| 1; m; m |];
            Hyperslab.block_at [| v; x0; 0 |] [| 1; 1; m |] ]);
    truth = Some (fun idx -> idx.(0) < supported);
    dataset = "data" }

let threshold ?(m = 64) () =
  let c = m / 2 in
  let tlo = m / 8 and thi = 3 * m / 8 in
  (* attribute value at idx: m/2 - Chebyshev distance to the center; the
     precomputed sorted index turns "value >= t" into the centred cube of
     half-extent m/2 - t *)
  let half_extent t = (m / 2) - t in
  let max_half = half_extent tlo in
  { Program.name = "THRESH";
    description = "attribute > threshold via a sorted index (VPIC idiom)";
    shape = Shape.create [| m; m; m |];
    dtype = Dtype.Long_double;
    param_space = [| (float_of_int tlo, float_of_int thi); (0.0, 1.0) |];
    plan =
      (fun p ->
        let t = ip p.(0) in
        if t < tlo || t > thi then []
        else begin
          let he = half_extent t in
          let lo = Array.make 3 (c - he) in
          [ Hyperslab.block_at lo (Array.make 3 ((2 * he) + 1)) ]
        end);
    truth =
      Some
        (fun idx ->
          let d = Array.fold_left (fun acc x -> max acc (abs (x - c))) 0 idx in
          d <= max_half);
    dataset = "data" }

let all ?m () =
  [ plane ?m (); subvol ?m (); varsubset ?m (); threshold ?m () ]
