(** Additional data-subsetting idioms from the literature the paper's
    introduction builds on (§I-A).

    Lofstead et al. identify, in Chimera and S3D, "reading only one
    plane in a 3-D space" and "reading a fixed rectangular subset of a
    bigger space"; Tang et al. add "reading a subset of variables at
    each point in the space" and VPIC's "subsets the 3D space where an
    attribute value is greater than a given threshold", noting the
    latter yields debloating savings when an index or sorted map exists
    on the attribute.  These four programs model those idioms so
    Kondo's applicability claims can be tested beyond the h5bench
    kernels. *)

val plane : ?m:int -> unit -> Program.t
(** PLANE: one full x–y plane at a parameterized depth within a
    supported window, read with a parameterized stride.  (Chimera-style
    plane reads.) *)

val subvol : ?m:int -> unit -> Program.t
(** SUBVOL: a fixed-size rectangular sub-volume at a parameterized
    position.  (S3D-style fixed subset of a bigger space.) *)

val varsubset : ?vars:int -> ?m:int -> unit -> Program.t
(** VARS: of [vars] stacked variables (leading dimension), only the
    supported half is ever read, one variable plane per run.  (Tang's
    subset-of-variables idiom.) *)

val threshold : ?m:int -> unit -> Program.t
(** THRESH: the region where a radially-decreasing attribute exceeds a
    parameterized threshold — served through a precomputed sorted index,
    so each run reads a centred cube that shrinks as the threshold
    rises.  (VPIC's attribute-threshold idiom.) *)

val all : ?m:int -> unit -> Program.t list
(** The four idiom programs. *)
