open Kondo_dataarray

type t = {
  name : string;
  description : string;
  shape : Shape.t;
  dtype : Dtype.t;
  param_space : (float * float) array;
  plan : float array -> Hyperslab.t list;
  truth : (int array -> bool) option;
  dataset : string;
}

let arity t = Array.length t.param_space

let clamp_params t v =
  Array.mapi
    (fun k x ->
      let lo, hi = t.param_space.(k) in
      Float.max lo (Float.min hi (Float.round x)))
    v

let in_space t v =
  Array.length v = arity t
  &&
  let ok = ref true in
  Array.iteri
    (fun k x ->
      let lo, hi = t.param_space.(k) in
      if x < lo || x > hi then ok := false)
    v;
  !ok

let access t v =
  let set = Index_set.create t.shape in
  List.iter (fun slab -> Index_set.add_slab set slab) (t.plan v);
  set

let is_useful t v =
  (* A plan is useful when at least one in-bounds index is selected. *)
  let found = ref false in
  (try
     List.iter
       (fun slab ->
         Hyperslab.iter ~clip:t.shape slab (fun _ ->
             found := true;
             raise Exit))
       (t.plan v)
   with Exit -> ());
  !found

let iter_access t v f =
  List.iter (fun slab -> Hyperslab.iter ~clip:t.shape slab f) (t.plan v)

let coverage t v f =
  let useful = ref false in
  iter_access t v (fun idx ->
      useful := true;
      f (2 + Shape.linearize t.shape idx));
  f (if !useful then 1 else 0)

let run_io t file v =
  let n = ref 0 in
  List.iter
    (fun slab -> Kondo_h5.File.read_slab file t.dataset slab (fun _ _ -> incr n))
    (t.plan v);
  !n

let iter_param_space t f =
  let m = arity t in
  let v = Array.make m 0.0 in
  let rec walk k =
    if k = m then f v
    else begin
      let lo, hi = t.param_space.(k) in
      let lo = int_of_float (Float.ceil lo) and hi = int_of_float (Float.floor hi) in
      for x = lo to hi do
        v.(k) <- float_of_int x;
        walk (k + 1)
      done
    end
  in
  walk 0

let param_count t =
  let n = ref 1 in
  Array.iter
    (fun (lo, hi) ->
      let lo = int_of_float (Float.ceil lo) and hi = int_of_float (Float.floor hi) in
      n := !n * max 0 (hi - lo + 1))
    t.param_space;
  !n

let exhaustive_truth t =
  let set = Index_set.create t.shape in
  iter_param_space t (fun v ->
      List.iter (fun slab -> Index_set.add_slab set slab) (t.plan v));
  set

let truth_cache : (string, Index_set.t) Hashtbl.t = Hashtbl.create 16

let ground_truth t =
  let key = t.name ^ "/" ^ Shape.to_string t.shape in
  match Hashtbl.find_opt truth_cache key with
  | Some s -> s
  | None ->
    let s =
      match t.truth with
      | Some pred ->
        let set = Index_set.create t.shape in
        Shape.iter t.shape (fun idx -> if pred idx then Index_set.add set idx);
        set
      | None -> exhaustive_truth t
    in
    Hashtbl.add truth_cache key s;
    s

let with_dataset t name = { t with dataset = name; name = t.name ^ "@" ^ name }
