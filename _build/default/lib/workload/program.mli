open Kondo_dataarray

(** The containerized application X̄ under test.

    A program is modeled by its {e access plan}: the list of hyperslab
    selections it reads from its data array when run with a parameter
    value [v] (paper §III: the index subset [I_v] depends only on [v]).
    From that single description derive:

    - the {b debloat test} (Definition 2): enumerate [I_v] without real
      I/O — the pre-processed "print offsets instead of reading" form the
      paper's evaluation methodology uses (§V-C);
    - {b real audited execution}: perform the plan's reads against a KH5
      file, for the I/O-overhead experiment (§V-D6) and the user-side
      runtime;
    - {b AFL pseudo-branches}: one edge per accessed index, the paper's
      re-targeting of code coverage to index coverage (§V-C);
    - {b ground truth} [I_Θ]: exhaustively or analytically. *)

type t = {
  name : string;
  description : string;
  shape : Shape.t;                       (** the data array [D] *)
  dtype : Dtype.t;
  param_space : (float * float) array;   (** Θ, inclusive ranges *)
  plan : float array -> Hyperslab.t list;
      (** access plan for one parameter value; [\[\]] when not useful *)
  truth : (int array -> bool) option;    (** analytic ground-truth predicate *)
  dataset : string;                      (** dataset name inside the KH5 file *)
}

val arity : t -> int

val clamp_params : t -> float array -> float array
(** Round to integers and clamp into Θ (all benchmark programs take
    integer parameters). *)

val in_space : t -> float array -> bool

val access : t -> float array -> Index_set.t
(** The debloat test: [I_v], clipped to the array bounds. *)

val is_useful : t -> float array -> bool
(** [I_v <> ∅] (Definition 2 discussion). *)

val iter_access : t -> float array -> (int array -> unit) -> unit
(** Stream [I_v] without materializing; indices may repeat. *)

val coverage : t -> float array -> (int -> unit) -> unit
(** AFL edge stream: a guard edge (0 when not useful, 1 when useful)
    followed by one edge per accessed index (2 + linearized index). *)

val run_io : t -> Kondo_h5.File.t -> float array -> int
(** Execute the plan with real reads against a KH5 file; returns the
    number of elements read.  @raise Kondo_h5.File.Data_missing on
    debloated files lacking a needed offset. *)

val exhaustive_truth : t -> Index_set.t
(** [I_Θ] by running the debloat test on {e every} integer parameter
    valuation in Θ — exact, possibly slow. *)

val ground_truth : t -> Index_set.t
(** The analytic predicate rasterized when present, else
    {!exhaustive_truth}.  Cached per program name + shape. *)

val param_count : t -> int
(** |Θ| as a count of integer valuations. *)

val iter_param_space : t -> (float array -> unit) -> unit
(** Every integer valuation of Θ in row-major order (buffer reused). *)

val with_dataset : t -> string -> t
(** The same program reading a differently-named dataset — used to
    compose multi-dataset applications (paper footnote 1). *)
