open Kondo_dataarray

let ip = int_of_float

let ard ?(scale = 8) () =
  let sx = 1536 / scale and sy = 2304 / scale and st = 4096 / scale in
  let wlo = 50 / scale and whi = 200 / scale in
  let hlo = 100 / scale and hhi = 500 / scale in
  { Program.name = "ARD";
    description = "atmospheric river detection: parameterized w x h block, full temporal axis";
    shape = Shape.create [| sx; sy; st |];
    dtype = Dtype.Long_double;
    param_space =
      [| (float_of_int wlo, float_of_int whi);
         (float_of_int hlo, float_of_int hhi);
         (0.0, float_of_int (st - 1)) |];
    plan =
      (fun p ->
        let w = ip p.(0) and h = ip p.(1) and t0 = ip p.(2) in
        if w < wlo || h < hlo || t0 < 0 then []
        else
          (* The t0 reference frame lies inside the block: reading it adds
             no new indices, so Θ's temporal dimension is pure redundancy
             for coverage purposes. *)
          [ Hyperslab.block_at [| 0; 0; 0 |] [| w; h; st |] ]);
    truth = Some (fun idx -> idx.(0) < whi && idx.(1) < hhi);
    dataset = "data" }

let msi ?(scale = 128) () =
  (* x/y shrink by scale/64, z by scale (defaults: 197 x 259 x 1040). *)
  let xy_scale = max 1 (scale / 64) in
  let sx = 394 / xy_scale and sy = 518 / xy_scale in
  let sz = 133120 / scale in
  let zlo = 10000 / scale and zhi = 15000 / scale in
  let win = zhi - zlo in
  { Program.name = "MSI";
    description = "mass spectrometry imaging: full x-y plane at depth z0, spectrum line at (x0,y0)";
    shape = Shape.create [| sx; sy; sz |];
    dtype = Dtype.Long_double;
    (* The depth parameter comes first: a brute-force enumeration then
       exhausts all (x0, y0) pixels before advancing the slice depth,
       which is what keeps BF's recall partial on MSI (Table III). *)
    param_space =
      [| (float_of_int zlo, float_of_int zhi);
         (0.0, float_of_int (sx - 1));
         (0.0, float_of_int (sy - 1)) |];
    plan =
      (fun p ->
        let z0 = ip p.(0) and x0 = ip p.(1) and y0 = ip p.(2) in
        if x0 < 0 || y0 < 0 || z0 < zlo || z0 > zhi then []
        else
          [ Hyperslab.block_at [| 0; 0; z0 |] [| sx; sy; 1 |];
            Hyperslab.block_at [| x0; y0; zlo |] [| 1; 1; win + 1 |] ]);
    truth = Some (fun idx -> idx.(2) >= zlo && idx.(2) <= zhi);
    dataset = "data" }
