(** Programs derived from the real applications of Tang et al. (paper
    §V-D7, Table III).

    The paper's data files are 217 GB (ARD) and 405 GB (MSI); this
    reproduction scales the dimensions down while preserving the
    geometry — in particular the accessed fraction of the file, which is
    what recall, precision and % debloat depend on (DESIGN.md §5).

    - {b ARD} (Atmospheric River Detection) reads a block whose width and
      height are parameterized while the {e entire} temporal dimension is
      read; the third parameter selects a reference frame inside the
      block and does not change the accessed set — the redundancy that
      makes brute force flounder on ARD's huge Θ.
    - {b MSI} (Mass Spectrometry Imaging) reads a full x–y image plane at
      a parameterized depth inside a narrow z window, plus the full
      spectrum line through a parameterized pixel across that window. *)

val ard : ?scale:int -> unit -> Program.t
(** [scale] divides the paper's 1536 x 2304 x 4096 dimensions (default 8:
    192 x 288 x 512).  Accessed fraction ≈ 2.8% (97.2% debloat). *)

val msi : ?scale:int -> unit -> Program.t
(** [scale] divides the paper's z dimension of 133092 (default 128) and
    halves x/y: 197 x 259 x 1040 by default.  Accessed fraction ≈ 3.8%
    (≈96.2% debloat). *)
