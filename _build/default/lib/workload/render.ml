open Kondo_dataarray

let plane_dims shape =
  let dims = Shape.dims shape in
  match Array.length dims with
  | 1 -> (1, dims.(0))
  | _ -> (dims.(0), dims.(1))

let mid_slice_filter shape idx =
  let dims = Shape.dims shape in
  let rank = Array.length dims in
  let ok = ref true in
  for k = 2 to rank - 1 do
    if idx.(k) <> dims.(k) / 2 then ok := false
  done;
  !ok

let grid ?(cols = 64) ?(rows = 32) shape sets =
  (* sets: (char, Index_set.t) list; returns the character raster. *)
  let h, w = plane_dims shape in
  let rows = min rows h and cols = min cols w in
  let raster = Array.make_matrix rows cols ' ' in
  let cell idx = (idx.(0) * rows / h, (if Array.length (Shape.dims shape) = 1 then idx.(0) else idx.(1)) * cols / w) in
  List.iter
    (fun (mark, set) ->
      Index_set.iter set (fun idx ->
          if mid_slice_filter shape idx then begin
            let r, c = cell idx in
            if r >= 0 && r < rows && c >= 0 && c < cols then raster.(r).(c) <- mark
          end))
    sets;
  let b = Buffer.create (rows * (cols + 1)) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char b) row;
      Buffer.add_char b '\n')
    raster;
  Buffer.contents b

let ascii ?(cols = 64) ?(rows = 32) set =
  let shape = Index_set.shape set in
  let h, w = plane_dims shape in
  let rows = min rows h and cols = min cols w in
  let counts = Array.make_matrix rows cols 0 in
  let totals = Array.make_matrix rows cols 0 in
  (* Cell capacities for density normalization. *)
  Shape.iter shape (fun idx ->
      if mid_slice_filter shape idx then begin
        let r = idx.(0) * rows / h
        and c = (if Array.length (Shape.dims shape) = 1 then idx.(0) else idx.(1)) * cols / w in
        totals.(r).(c) <- totals.(r).(c) + 1;
        if Index_set.mem set idx then counts.(r).(c) <- counts.(r).(c) + 1
      end);
  let b = Buffer.create (rows * (cols + 1)) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let frac =
        if totals.(r).(c) = 0 then 0.0
        else float_of_int counts.(r).(c) /. float_of_int totals.(r).(c)
      in
      Buffer.add_char b
        (if frac <= 0.0 then ' ' else if frac < 0.25 then '.' else if frac < 0.75 then ':' else '#')
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let overlay ?cols ?rows shape sets = grid ?cols ?rows shape sets
