open Kondo_dataarray

(** ASCII rendering of index subsets (Table I stencil depictions, Fig. 1).

    2D sets render directly (downsampled to the requested character
    grid); 3D sets render their middle slice along the last axis. *)

val ascii : ?cols:int -> ?rows:int -> Index_set.t -> string
(** Density rendering: [' '] empty, ['.'] sparse, [':'] medium, ['#']
    dense cells. *)

val overlay : ?cols:int -> ?rows:int -> Shape.t -> (char * Index_set.t) list -> string
(** Multiple sets drawn with distinct marks; later entries win on
    contested cells. *)
