open Kondo_dataarray

let default_dtype = Dtype.Long_double
let frame_thickness = 2

let ip = int_of_float

(* ------------------------------------------------------------------ *)
(* CS: the Listing-1 cross-stencil walk                                 *)
(* ------------------------------------------------------------------ *)

let cs_walk n sx sy =
  (* 2x2 blocks along the ray k*(sx,sy) while the block stays in bounds;
     a zero step accesses the first block and terminates. *)
  let slabs = ref [] in
  let i = ref 0 and j = ref 0 in
  let continue_ = ref true in
  while !continue_ && !i + 1 <= n - 1 && !j + 1 <= n - 1 do
    slabs := Hyperslab.block_at [| !i; !j |] [| 2; 2 |] :: !slabs;
    if sx = 0 && sy = 0 then continue_ := false
    else begin
      i := !i + sx;
      j := !j + sy
    end
  done;
  List.rev !slabs

type cs_variant = { id : int; guard : n:int -> int -> int -> bool; blurb : string }

let cs_variants =
  [ { id = 1; guard = (fun ~n:_ sx sy -> sx <= sy); blurb = "stepX <= stepY (lower triangular)" };
    { id = 2; guard = (fun ~n:_ sx sy -> sx >= sy); blurb = "stepX >= stepY (upper triangular)" };
    { id = 3;
      guard = (fun ~n sx sy -> abs (sx - sy) <= n / 16);
      blurb = "|stepX - stepY| <= N/16 (diagonal band)" };
    { id = 4;
      guard = (fun ~n sx sy -> sx <= sy && sy >= n / 2);
      blurb = "stepX <= stepY and stepY >= N/2 (origin block + far strip)" };
    { id = 5;
      guard =
        (fun ~n sx sy ->
          (sx <= n / 8 && sy <= n / 8 && sx <= sy) || (sx >= 7 * n / 8 && sy >= 7 * n / 8));
      blurb = "two distant step windows (sparse far corner)" } ]

let cs ?(n = 128) variant =
  let v =
    match List.find_opt (fun c -> c.id = variant) cs_variants with
    | Some v -> v
    | None -> invalid_arg "Stencils.cs: variant must be in 1..5"
  in
  let fmax = float_of_int (n - 1) in
  { Program.name = Printf.sprintf "CS%d" variant;
    description = "cross-stencil walk; " ^ v.blurb;
    shape = Shape.create [| n; n |];
    dtype = default_dtype;
    param_space = [| (0.0, fmax); (0.0, fmax) |];
    plan =
      (fun p ->
        let sx = ip p.(0) and sy = ip p.(1) in
        if sx < 0 || sy < 0 || not (v.guard ~n sx sy) then [] else cs_walk n sx sy);
    truth = None (* trajectory union: computed exhaustively *);
    dataset = "data" }

(* ------------------------------------------------------------------ *)
(* PRL: rectangular frame (ring) with a persistent central hole         *)
(* ------------------------------------------------------------------ *)

(* Onion decomposition of a d-dimensional box shell of thickness [t]:
   for each axis, two slabs covering the low/high faces, shrinking the
   remaining extent so slabs never overlap. *)
let shell_slabs center half_extents t =
  let d = Array.length center in
  let lo = Array.init d (fun k -> center.(k) - half_extents.(k)) in
  let hi = Array.init d (fun k -> center.(k) + half_extents.(k)) in
  let slabs = ref [] in
  let cur_lo = Array.copy lo and cur_hi = Array.copy hi in
  for axis = 0 to d - 1 do
    let e = Array.init d (fun k -> cur_hi.(k) - cur_lo.(k) + 1) in
    if Array.for_all (fun x -> x > 0) e then begin
      (* low face *)
      let face_extent = Array.copy e in
      face_extent.(axis) <- min t e.(axis);
      slabs := Hyperslab.block_at (Array.copy cur_lo) face_extent :: !slabs;
      (* high face (absent when the low face already spans the axis) *)
      if e.(axis) > t then begin
        let face_lo = Array.copy cur_lo in
        face_lo.(axis) <- cur_hi.(axis) - t + 1;
        let face_extent = Array.copy e in
        face_extent.(axis) <- t;
        slabs := Hyperslab.block_at face_lo face_extent :: !slabs
      end
    end;
    cur_lo.(axis) <- cur_lo.(axis) + t;
    cur_hi.(axis) <- cur_hi.(axis) - t
  done;
  List.rev !slabs

let prl ~dims ~name ~hole_divisor =
  let d = Array.length dims in
  let n = dims.(0) in
  let c = n / 2 in
  let wlo = n / hole_divisor and whi = n / 4 in
  let t = frame_thickness in
  { Program.name;
    description = Printf.sprintf "%dD periphery frame, half-extent in [%d,%d]" d wlo whi;
    shape = Shape.create dims;
    dtype = default_dtype;
    param_space = Array.make d (0.0, float_of_int whi);
    plan =
      (fun p ->
        let he = Array.map ip p in
        if Array.exists (fun w -> w < wlo) he then []
        else shell_slabs (Array.make d c) he t);
    truth =
      Some
        (fun idx ->
          let inside = ref true and on_frame = ref false in
          Array.iteri
            (fun k x ->
              let dx = abs (x - c) in
              if dx > whi then inside := false;
              if dx >= wlo - t + 1 then on_frame := true;
              ignore k)
            idx;
          !inside && !on_frame);
    dataset = "data" }

(* The 3D frame keeps a proportionally larger central hole: §V-D2 notes
   the hole "enlarges in PRL3D", dropping precision below PRL2D's. *)
let prl2d ?(n = 128) () = prl ~dims:[| n; n |] ~name:"PRL2D" ~hole_divisor:8
let prl3d ?(m = 64) () = prl ~dims:[| m; m; m |] ~name:"PRL3D" ~hole_divisor:5

(* ------------------------------------------------------------------ *)
(* LDC / RDC: two disjoint corner blocks                               *)
(* ------------------------------------------------------------------ *)

(* [flip.(k)] says whether corner block 2 sits at the high end of axis k
   for the first block (the second block mirrors every axis). *)
let corners ~dims ~name ~flip ~min_extent =
  let d = Array.length dims in
  let quarter k = dims.(k) / 4 in
  { Program.name;
    description = Printf.sprintf "two disjoint %dD corner blocks" d;
    shape = Shape.create dims;
    dtype = default_dtype;
    param_space = Array.init d (fun k -> (0.0, float_of_int (quarter k)));
    plan =
      (fun p ->
        let ext = Array.map ip p in
        if Array.exists (fun w -> w < min_extent) ext then []
        else begin
          let start1 =
            Array.init d (fun k -> if flip.(k) then dims.(k) - ext.(k) else 0)
          in
          let start2 =
            Array.init d (fun k -> if flip.(k) then 0 else dims.(k) - ext.(k))
          in
          [ Hyperslab.block_at start1 (Array.copy ext); Hyperslab.block_at start2 (Array.copy ext) ]
        end);
    truth =
      Some
        (fun idx ->
          let in_corner mirrored =
            let ok = ref true in
            Array.iteri
              (fun k x ->
                let high = if mirrored then not flip.(k) else flip.(k) in
                let w = quarter k in
                if high then begin
                  if x < dims.(k) - w then ok := false
                end
                else if x > w - 1 then ok := false)
              idx;
            !ok
          in
          in_corner false || in_corner true);
    dataset = "data" }

let ldc2d ?(n = 128) () =
  corners ~dims:[| n; n |] ~name:"LDC2D" ~flip:[| false; false |] ~min_extent:4

let rdc2d ?(n = 128) () =
  corners ~dims:[| n; n |] ~name:"RDC2D" ~flip:[| true; false |] ~min_extent:4

let ldc3d ?(m = 64) () =
  corners ~dims:[| m; m; m |] ~name:"LDC3D" ~flip:[| false; false; false |] ~min_extent:2

let rdc3d ?(m = 64) () =
  corners ~dims:[| m; m; m |] ~name:"RDC3D" ~flip:[| true; false; false |] ~min_extent:2
