open Kondo_dataarray

(** The h5bench-derived micro-benchmarks and synthetic variants (§V-A).

    The paper names four subsetting kernels — CS, PRL, LDC, RDC — whose
    stencils Table I depicts as a solid rectangle and a rectangle with a
    hole, with LDC/RDC exhibiting "clear separation of the two subsets"
    and PRL a persistent hole.  DESIGN.md §4 records the concrete shapes
    chosen here:

    - [cs v]: the Listing-1 cross-stencil walk with constraint variant
      [v] in 1–5 (CS1 base triangular, CS2 mirrored, CS3 diagonal band,
      CS4 origin block + far strip, CS5 two distant sparse windows);
    - [prl2d]/[prl3d]: a rectangular frame (shell in 3D) of parameterized
      half-extents around the array center — a region with a hole;
    - [ldc2d]/[ldc3d]: two disjoint corner blocks on the main diagonal;
    - [rdc2d]/[rdc3d]: two disjoint corner blocks on the anti-diagonal.

    All parameters are integers; Θ per program is listed in Table II's
    reproduction (bench driver [Exp_table2]). *)

val frame_thickness : int
(** Thickness of the PRL frame (2, the h5bench default block size). *)

val cs : ?n:int -> int -> Program.t
(** [cs variant] on an [n x n] array (default 128).
    @raise Invalid_argument unless [1 <= variant <= 5]. *)

val prl2d : ?n:int -> unit -> Program.t
val ldc2d : ?n:int -> unit -> Program.t
val rdc2d : ?n:int -> unit -> Program.t

val prl3d : ?m:int -> unit -> Program.t
(** On an [m x m x m] array (default 64). *)

val ldc3d : ?m:int -> unit -> Program.t
val rdc3d : ?m:int -> unit -> Program.t

val default_dtype : Dtype.t
(** Long double, 16 bytes (§V-B). *)
