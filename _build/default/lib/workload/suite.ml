let micro ?(n = 128) () =
  [ Stencils.cs ~n 1; Stencils.prl2d ~n (); Stencils.ldc2d ~n (); Stencils.rdc2d ~n () ]

let synthetic ?(n = 128) ?(m = 64) () =
  [ Stencils.cs ~n 2;
    Stencils.cs ~n 3;
    Stencils.cs ~n 4;
    Stencils.cs ~n 5;
    Stencils.prl3d ~m ();
    Stencils.ldc3d ~m ();
    Stencils.rdc3d ~m () ]

let all11 ?n ?m () = micro ?n () @ synthetic ?n ?m ()

let real ?ard_scale ?msi_scale () =
  [ Realapps.ard ?scale:ard_scale (); Realapps.msi ?scale:msi_scale () ]

let names =
  [ "CS1"; "CS2"; "CS3"; "CS4"; "CS5"; "PRL2D"; "LDC2D"; "RDC2D"; "PRL3D"; "LDC3D"; "RDC3D";
    "PLANE"; "SUBVOL"; "VARS"; "THRESH"; "ARD"; "MSI" ]

let by_name ?n ?m name =
  match String.uppercase_ascii name with
  | "CS1" -> Some (Stencils.cs ?n 1)
  | "CS2" -> Some (Stencils.cs ?n 2)
  | "CS3" -> Some (Stencils.cs ?n 3)
  | "CS4" -> Some (Stencils.cs ?n 4)
  | "CS5" -> Some (Stencils.cs ?n 5)
  | "PRL2D" -> Some (Stencils.prl2d ?n ())
  | "LDC2D" -> Some (Stencils.ldc2d ?n ())
  | "RDC2D" -> Some (Stencils.rdc2d ?n ())
  | "PRL3D" -> Some (Stencils.prl3d ?m ())
  | "LDC3D" -> Some (Stencils.ldc3d ?m ())
  | "RDC3D" -> Some (Stencils.rdc3d ?m ())
  | "PLANE" -> Some (Idioms.plane ?m ())
  | "SUBVOL" -> Some (Idioms.subvol ?m ())
  | "VARS" -> Some (Idioms.varsubset ?m ())
  | "THRESH" -> Some (Idioms.threshold ?m ())
  | "ARD" -> Some (Realapps.ard ())
  | "MSI" -> Some (Realapps.msi ())
  | _ -> None

let micro_group p =
  let name = p.Program.name in
  let prefixes = [ "CS"; "PRL"; "LDC"; "RDC" ] in
  match
    List.find_opt
      (fun pre ->
        String.length name >= String.length pre && String.sub name 0 (String.length pre) = pre)
      prefixes
  with
  | Some pre -> pre
  | None -> name

let extended ?m () = Idioms.all ?m ()
