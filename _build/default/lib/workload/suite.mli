(** The benchmark suite of §V: named program registry.

    - The four micro-benchmarks: CS1, PRL2D, LDC2D, RDC2D (Table I/II).
    - The seven synthetic variants: CS2–CS5, PRL3D, LDC3D, RDC3D.
    - The two real-application programs: ARD, MSI (Table III). *)

val micro : ?n:int -> unit -> Program.t list
(** CS1, PRL2D, LDC2D, RDC2D on [n x n] arrays (default 128). *)

val synthetic : ?n:int -> ?m:int -> unit -> Program.t list
(** CS2–CS5 on [n x n]; PRL3D, LDC3D, RDC3D on [m^3] (default 64). *)

val all11 : ?n:int -> ?m:int -> unit -> Program.t list
(** micro @ synthetic — the 11 programs of §V-A. *)

val real : ?ard_scale:int -> ?msi_scale:int -> unit -> Program.t list

val names : string list
(** All 17 registered names (11 micro/synthetic + 4 idioms + ARD + MSI). *)

val by_name : ?n:int -> ?m:int -> string -> Program.t option
(** Look up any registered program (case-insensitive). *)

val micro_group : Program.t -> string
(** The micro-benchmark family of a program ("CS", "PRL", "LDC",
    "RDC", or its own name) — the grouping of Figures 7 and 10. *)

val extended : ?m:int -> unit -> Program.t list
(** The four extra subsetting-idiom programs of {!Idioms} (PLANE, SUBVOL,
    VARS, THRESH). *)
