open Kondo_dataarray
open Kondo_geometry

type prim =
  | Dot of { x : float; y : float; r : float; color : string }
  | Line of { x1 : float; y1 : float; x2 : float; y2 : float; color : string }
  | Poly of { pts : (float * float) list; stroke : string; fill : string }

type shape_2d = prim list

let plane_xy idx =
  (* logical x = column (2nd axis when present), y = row *)
  match Array.length idx with
  | 1 -> (float_of_int idx.(0), 0.0)
  | _ -> (float_of_int idx.(1), float_of_int idx.(0))

let mid_slice shape idx =
  let dims = Shape.dims shape in
  let ok = ref true in
  for k = 2 to Array.length dims - 1 do
    if idx.(k) <> dims.(k) / 2 then ok := false
  done;
  !ok

let points ?(color = "#333333") ?(radius = 0.35) set =
  let shape = Index_set.shape set in
  let out = ref [] in
  Index_set.iter set (fun idx ->
      if mid_slice shape idx then begin
        let x, y = plane_xy idx in
        out := Dot { x; y; r = radius; color } :: !out
      end);
  !out

let marks ?(color = "#0044cc") positions =
  List.map (fun (x, y) -> Dot { x; y; r = 0.5; color }) positions

let vertex_xy v =
  match Array.length v with
  | 1 -> (v.(0), 0.0)
  | _ -> (v.(1), v.(0))

let hull_outline ?(stroke = "#cc2200") ?(fill = "none") h =
  match Hull.vertices h with
  | [] -> []
  | [ p ] ->
    let x, y = vertex_xy p in
    [ Dot { x; y; r = 0.6; color = stroke } ]
  | [ a; b ] ->
    let x1, y1 = vertex_xy a and x2, y2 = vertex_xy b in
    [ Line { x1; y1; x2; y2; color = stroke } ]
  | vs ->
    (* order 2D vertices around their centroid so the polygon is simple;
       3D hulls draw the projected vertex ring the same way *)
    let pts = List.map vertex_xy vs in
    let cx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts /. float_of_int (List.length pts) in
    let cy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts /. float_of_int (List.length pts) in
    let sorted =
      List.sort
        (fun (x1, y1) (x2, y2) ->
          compare (Float.atan2 (y1 -. cy) (x1 -. cx)) (Float.atan2 (y2 -. cy) (x2 -. cx)))
        pts
    in
    [ Poly { pts = sorted; stroke; fill } ]

let bounds prims =
  let lo = ref infinity and hi = ref neg_infinity in
  let see x y =
    lo := Float.min !lo (Float.min x y);
    hi := Float.max !hi (Float.max x y)
  in
  List.iter
    (function
      | Dot d -> see d.x d.y
      | Line l ->
        see l.x1 l.y1;
        see l.x2 l.y2
      | Poly p -> List.iter (fun (x, y) -> see x y) p.pts)
    prims;
  if !lo > !hi then (0.0, 1.0) else (!lo, !hi)

let document ~width ~height layers =
  let prims = List.concat layers in
  let lo, hi = bounds prims in
  let span = Float.max 1.0 (hi -. lo) in
  let sx x = (x -. lo) /. span *. (width -. 20.0) +. 10.0 in
  let sy y = (y -. lo) /. span *. (height -. 20.0) +. 10.0 in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%g\" height=\"%g\" viewBox=\"0 0 %g %g\">\n"
       width height width height);
  Buffer.add_string b
    (Printf.sprintf "<rect width=\"%g\" height=\"%g\" fill=\"#ffffff\"/>\n" width height);
  List.iter
    (function
      | Dot d ->
        Buffer.add_string b
          (Printf.sprintf "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" fill=\"%s\"/>\n" (sx d.x)
             (sy d.y)
             (d.r /. span *. (width -. 20.0))
             d.color)
      | Line l ->
        Buffer.add_string b
          (Printf.sprintf
             "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"%s\" stroke-width=\"1\"/>\n"
             (sx l.x1) (sy l.y1) (sx l.x2) (sy l.y2) l.color)
      | Poly p ->
        let pts =
          String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%.2f,%.2f" (sx x) (sy y)) p.pts)
        in
        Buffer.add_string b
          (Printf.sprintf
             "<polygon points=\"%s\" stroke=\"%s\" fill=\"%s\" fill-opacity=\"0.2\" stroke-width=\"1.5\"/>\n"
             pts p.stroke p.fill))
    prims;
  Buffer.add_string b "</svg>\n";
  Buffer.contents b

let save path ~width ~height layers =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (document ~width ~height layers))
