open Kondo_dataarray
open Kondo_geometry

(** SVG rendering of index sets, hulls, and fuzz scatters.

    The paper's figures (the Fig. 1 access grid, the Fig. 4 parameter
    scatter, the Fig. 6 hull-merge stages) are 2D drawings over index or
    parameter space; this module emits them as standalone SVG documents
    so experiment runs can save inspectable artifacts.  3D inputs render
    their middle slice along the last axis, like {!Render}. *)

type shape_2d

val points : ?color:string -> ?radius:float -> Index_set.t -> shape_2d
(** Every member index as a dot ([color] defaults to a dark gray). *)

val marks : ?color:string -> (float * float) list -> shape_2d
(** Arbitrary 2D positions (e.g. fuzzed parameter values). *)

val hull_outline : ?stroke:string -> ?fill:string -> Hull.t -> shape_2d
(** A hull's polygon outline (point/segment hulls degrade to dots and
    lines); 3D hulls draw their vertex projection. *)

val document : width:float -> height:float -> shape_2d list -> string
(** Compose layers into an SVG document string; coordinates are in the
    logical space and scaled to a fixed canvas. *)

val save : string -> width:float -> height:float -> shape_2d list -> unit
(** Write the document to a file. *)
