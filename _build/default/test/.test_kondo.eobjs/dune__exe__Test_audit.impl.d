test/test_audit.ml: Alcotest Bytes Event Gen Interval Interval_set Io_port Kondo_audit Kondo_interval List QCheck QCheck_alcotest Tracer
