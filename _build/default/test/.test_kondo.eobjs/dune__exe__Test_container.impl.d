test/test_container.ml: Alcotest Array Bytes Datafile Filename Image Kondo_container Kondo_h5 Kondo_interval Kondo_prng Kondo_workload List Merkle Program Runtime Spec Stencils String Sys Unix
