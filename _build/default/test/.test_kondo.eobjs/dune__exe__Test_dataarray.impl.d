test/test_dataarray.ml: Alcotest Array Bitset Bytes Dtype Gen Hashtbl Hyperslab Index_set Kondo_dataarray Kondo_prng Layout List Printf QCheck QCheck_alcotest Shape String
