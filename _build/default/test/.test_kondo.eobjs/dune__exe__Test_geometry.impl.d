test/test_geometry.ml: Alcotest Array Bbox Gen Hull Hull2d Hull3d Kondo_geometry List QCheck QCheck_alcotest Vec
