test/test_interval.ml: Alcotest Gen Interval Interval_btree Interval_set Kondo_interval List QCheck QCheck_alcotest
