test/test_kondo.mli:
