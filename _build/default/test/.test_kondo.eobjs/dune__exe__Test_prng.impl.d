test/test_prng.ml: Alcotest Array Float Fun Kondo_prng Printf QCheck QCheck_alcotest Rng
