test/test_provenance.ml: Alcotest Event Interval Interval_set Kondo_audit Kondo_interval Kondo_provenance Lineage List Printf String Tracer
