(* Tests for the syscall-style I/O auditing layer. *)

open Kondo_interval
open Kondo_audit

let test_event_interval () =
  let e = { Event.seq = 0; pid = 1; path = "f"; op = Event.Read; offset = 10; size = 5 } in
  Alcotest.(check bool) "interval" true (Event.interval e = Interval.make 10 15);
  Alcotest.(check bool) "read is access" true (Event.is_access e);
  Alcotest.(check bool) "open is not access" false
    (Event.is_access { e with Event.op = Event.Open })

let test_record_and_offsets () =
  let t = Tracer.create () in
  ignore (Tracer.record t ~pid:1 ~path:"f" ~op:Event.Read ~offset:0 ~size:10);
  ignore (Tracer.record t ~pid:1 ~path:"f" ~op:Event.Read ~offset:8 ~size:10);
  let offs = Tracer.offsets t ~pid:1 ~path:"f" in
  Alcotest.(check int) "coalesced" 1 (Interval_set.cardinal offs);
  Alcotest.(check int) "length" 18 (Interval_set.total_length offs)

let test_paper_example_per_pid () =
  let t = Tracer.create () in
  ignore (Tracer.record t ~pid:1 ~path:"d" ~op:Event.Read ~offset:0 ~size:110);
  ignore (Tracer.record t ~pid:2 ~path:"d" ~op:Event.Read ~offset:70 ~size:30);
  ignore (Tracer.record t ~pid:1 ~path:"d" ~op:Event.Read ~offset:130 ~size:20);
  ignore (Tracer.record t ~pid:1 ~path:"d" ~op:Event.Read ~offset:90 ~size:30);
  (* merged across processes: the §IV-C example result *)
  let merged = Interval_set.to_list (Tracer.offsets_of_path t ~path:"d") in
  Alcotest.(check (list (pair int int))) "(0,120)(130,150)"
    [ (0, 120); (130, 150) ]
    (List.map (fun m -> (m.Interval.lo, m.Interval.hi)) merged);
  (* per-process views stay separate *)
  let p2 = Interval_set.to_list (Tracer.offsets t ~pid:2 ~path:"d") in
  Alcotest.(check (list (pair int int))) "P2 only" [ (70, 100) ]
    (List.map (fun m -> (m.Interval.lo, m.Interval.hi)) p2)

let test_event_log_order_and_seq () =
  let t = Tracer.create () in
  for i = 0 to 4 do
    ignore (Tracer.record t ~pid:1 ~path:"f" ~op:Event.Read ~offset:(i * 10) ~size:5)
  done;
  let events = Tracer.events t in
  Alcotest.(check int) "count" 5 (List.length events);
  List.iteri (fun i e -> Alcotest.(check int) "seq" i e.Event.seq) events

let test_writes_not_in_offsets () =
  let t = Tracer.create () in
  ignore (Tracer.record t ~pid:1 ~path:"f" ~op:Event.Write ~offset:0 ~size:100);
  Alcotest.(check bool) "writes not indexed as accesses" true
    (Interval_set.is_empty (Tracer.offsets t ~pid:1 ~path:"f"))

let test_wrap_port_audits_reads () =
  let t = Tracer.create () in
  let port = Io_port.of_bytes ~path:"mem" (Bytes.make 64 'x') in
  let audited = Tracer.wrap t ~pid:9 port in
  let b = audited.Io_port.pread 10 6 in
  Alcotest.(check string) "data intact" "xxxxxx" (Bytes.to_string b);
  audited.Io_port.close ();
  let ops = List.map (fun e -> e.Event.op) (Tracer.events t) in
  Alcotest.(check bool) "open, read, close logged" true
    (ops = [ Event.Open; Event.Read; Event.Close ]);
  Alcotest.(check int) "offsets recorded" 6
    (Interval_set.total_length (Tracer.offsets t ~pid:9 ~path:"mem"))

let test_lookup_per_process () =
  let t = Tracer.create () in
  ignore (Tracer.record t ~pid:1 ~path:"f" ~op:Event.Read ~offset:0 ~size:50);
  ignore (Tracer.record t ~pid:1 ~path:"f" ~op:Event.Read ~offset:100 ~size:50);
  let hits = Tracer.lookup t ~pid:1 ~path:"f" (Interval.make 40 60) in
  Alcotest.(check int) "one range overlaps probe" 1 (List.length hits);
  Alcotest.(check int) "no hits for other pid" 0
    (List.length (Tracer.lookup t ~pid:2 ~path:"f" (Interval.make 0 200)))

let test_paths_and_pids () =
  let t = Tracer.create () in
  ignore (Tracer.record t ~pid:2 ~path:"b" ~op:Event.Read ~offset:0 ~size:1);
  ignore (Tracer.record t ~pid:1 ~path:"a" ~op:Event.Read ~offset:0 ~size:1);
  Alcotest.(check (list string)) "paths sorted" [ "a"; "b" ] (Tracer.paths t);
  Alcotest.(check (list int)) "pids sorted" [ 1; 2 ] (Tracer.pids t)

let test_reset () =
  let t = Tracer.create () in
  ignore (Tracer.record t ~pid:1 ~path:"f" ~op:Event.Read ~offset:0 ~size:1);
  Tracer.reset t;
  Alcotest.(check int) "cleared" 0 (Tracer.event_count t);
  Alcotest.(check bool) "index cleared" true
    (Interval_set.is_empty (Tracer.offsets t ~pid:1 ~path:"f"))

let test_io_port_of_bytes_bounds () =
  let port = Io_port.of_bytes ~path:"m" (Bytes.make 8 'a') in
  Alcotest.check_raises "oob" (Invalid_argument "Io_port.pread: out of range") (fun () ->
      ignore (port.Io_port.pread 4 8))

let qcheck_tracer_offsets_match_model =
  QCheck.Test.make ~name:"tracer offsets equal the union of event ranges" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_range 0 500) (int_range 1 50)))
    (fun events ->
      let t = Tracer.create () in
      List.iter
        (fun (off, sz) -> ignore (Tracer.record t ~pid:1 ~path:"f" ~op:Event.Read ~offset:off ~size:sz))
        events;
      let expected =
        Interval_set.of_list (List.map (fun (off, sz) -> Interval.of_event ~offset:off ~size:sz) events)
      in
      Interval_set.equal (Tracer.offsets t ~pid:1 ~path:"f") expected)

let suite =
  ( "audit",
    [ Alcotest.test_case "event interval" `Quick test_event_interval;
      Alcotest.test_case "record and coalesce" `Quick test_record_and_offsets;
      Alcotest.test_case "paper example, per-pid views" `Quick test_paper_example_per_pid;
      Alcotest.test_case "event log order and seq" `Quick test_event_log_order_and_seq;
      Alcotest.test_case "writes not counted as accesses" `Quick test_writes_not_in_offsets;
      Alcotest.test_case "wrapped port audits reads" `Quick test_wrap_port_audits_reads;
      Alcotest.test_case "per-process lookup" `Quick test_lookup_per_process;
      Alcotest.test_case "paths and pids" `Quick test_paths_and_pids;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "io port bounds" `Quick test_io_port_of_bytes_bounds;
      QCheck_alcotest.to_alcotest qcheck_tracer_offsets_match_model ] )
