(* Tests for the evaluation baselines. *)

open Kondo_dataarray
open Kondo_workload
open Kondo_baselines
open Kondo_core

let test_bf_exhaustive_is_exact () =
  let p = Stencils.ldc2d ~n:16 () in
  let r = Brute_force.run p in
  Alcotest.(check bool) "exhausted" true r.Brute_force.exhausted;
  Alcotest.(check int) "all valuations" (Program.param_count p) r.Brute_force.evaluations;
  let truth = Program.ground_truth p in
  Alcotest.(check bool) "BF = truth" true (Index_set.equal r.Brute_force.indices truth)

let test_bf_precision_always_one () =
  let p = Stencils.prl2d ~n:32 () in
  let truth = Program.ground_truth p in
  let r = Brute_force.run ~max_evals:50 p in
  Alcotest.(check (float 1e-9)) "precision 1" 1.0
    (Metrics.precision ~truth ~approx:r.Brute_force.indices)

let test_bf_eval_budget () =
  let p = Stencils.cs ~n:32 1 in
  let r = Brute_force.run ~max_evals:100 p in
  Alcotest.(check int) "stopped at budget" 100 r.Brute_force.evaluations;
  Alcotest.(check bool) "not exhausted" false r.Brute_force.exhausted

let test_bf_partial_recall_under_budget () =
  let p = Stencils.ldc2d ~n:32 () in
  let truth = Program.ground_truth p in
  (* the first valuations have tiny extents (guard-invalid) or small
     blocks: recall must be partial *)
  let r = Brute_force.run ~max_evals:40 p in
  let recall = Metrics.recall ~truth ~approx:r.Brute_force.indices in
  Alcotest.(check bool) "partial" true (recall < 1.0)

let test_bf_deterministic () =
  let p = Stencils.rdc2d ~n:16 () in
  let a = Brute_force.run ~max_evals:64 p and b = Brute_force.run ~max_evals:64 p in
  Alcotest.(check bool) "same set" true (Index_set.equal a.Brute_force.indices b.Brute_force.indices)

(* ---------------- AFL ---------------- *)

let test_afl_decode_atoi () =
  let p = Stencils.cs ~n:32 1 in
  let buf = Bytes.make 16 ' ' in
  Bytes.blit_string "42" 0 buf 0 2;
  Bytes.blit_string "-7" 0 buf 8 2;
  Alcotest.(check (array (float 1e-9))) "fields" [| 42.0; -7.0 |] (Afl.decode_params p buf);
  let junk = Bytes.make 16 'z' in
  Alcotest.(check (array (float 1e-9))) "junk decodes to zero" [| 0.0; 0.0 |]
    (Afl.decode_params p junk);
  let signed = Bytes.make 16 ' ' in
  Bytes.blit_string "+13abc" 0 signed 0 6;
  Alcotest.(check (float 1e-9)) "stops at non-digit" 13.0 (Afl.decode_params p signed).(0)

let test_afl_respects_exec_budget () =
  let p = Stencils.cs ~n:16 1 in
  let r = Afl.run ~max_execs:500 p in
  Alcotest.(check bool) "bounded" true (r.Afl.executions <= 501)

let test_afl_indices_sound () =
  let p = Stencils.cs ~n:16 1 in
  let truth = Program.ground_truth p in
  let r = Afl.run ~max_execs:3000 p in
  Alcotest.(check bool) "AFL observations ⊆ truth" true (Index_set.subset r.Afl.indices truth);
  Alcotest.(check (float 1e-9)) "precision 1" 1.0
    (Metrics.precision ~truth ~approx:r.Afl.indices)

let test_afl_makes_progress_from_seed () =
  (* the CMD-style sample input is valid, so AFL must find at least the
     indices of one run *)
  let p = Stencils.cs ~n:16 1 in
  let r = Afl.run ~max_execs:2000 p in
  Alcotest.(check bool) "found some indices" true (Index_set.cardinal r.Afl.indices > 0);
  Alcotest.(check bool) "queue grew beyond seeds" true (r.Afl.queue_entries > 8)

let test_afl_deterministic_given_seed () =
  let p = Stencils.cs ~n:16 1 in
  let a = Afl.run ~seed:5 ~max_execs:1000 p in
  let b = Afl.run ~seed:5 ~max_execs:1000 p in
  Alcotest.(check bool) "same indices" true (Index_set.equal a.Afl.indices b.Afl.indices);
  Alcotest.(check int) "same coverage" a.Afl.coverage_edges b.Afl.coverage_edges

let test_afl_below_kondo_at_equal_evals () =
  (* the paper's core claim at a shared budget: Kondo's recall beats
     AFL's *)
  let p = Stencils.prl2d ~n:32 () in
  let truth = Program.ground_truth p in
  let config = { Config.default with Config.max_iter = 1000; stop_iter = 1000; seed = 3 } in
  let k = Pipeline.approximate ~config p in
  let a = Afl.run ~max_execs:1000 p in
  let k_recall = Metrics.recall ~truth ~approx:k.Pipeline.approx in
  let a_recall = Metrics.recall ~truth ~approx:a.Afl.indices in
  Alcotest.(check bool)
    (Printf.sprintf "kondo %.3f > afl %.3f" k_recall a_recall)
    true (k_recall > a_recall)

(* ---------------- Simple Convex ---------------- *)

let test_sc_approx_superset_of_observed () =
  let p = Stencils.ldc2d ~n:32 () in
  let config = { Config.default with Config.max_iter = 300; stop_iter = 300 } in
  let r = Simple_convex.run ~config p in
  Alcotest.(check bool) "observed ⊆ approx" true
    (Index_set.subset r.Simple_convex.fuzz.Schedule.indices r.Simple_convex.approx)

let test_sc_worse_precision_on_disjoint () =
  (* LDC has two disjoint corners: Kondo keeps them separate (precision
     1); SC's single hull bridges them (precision < 1) — Fig. 8 *)
  let p = Stencils.ldc2d ~n:32 () in
  let truth = Program.ground_truth p in
  let config = { Config.default with Config.max_iter = 400; stop_iter = 400 } in
  let kondo = Pipeline.approximate ~config p in
  let sc = Simple_convex.run ~config p in
  let kp = Metrics.precision ~truth ~approx:kondo.Pipeline.approx in
  let sp = Metrics.precision ~truth ~approx:sc.Simple_convex.approx in
  Alcotest.(check (float 1e-9)) "kondo precision 1" 1.0 kp;
  Alcotest.(check bool) (Printf.sprintf "sc precision %.3f < 1" sp) true (sp < 0.9)

(* ---------------- Hybrid (§VI future work) ---------------- *)

let test_hybrid_never_below_kondo () =
  let p = Stencils.cs ~n:64 3 in
  let truth = Program.ground_truth p in
  let config = { Config.default with Config.max_iter = 150; stop_iter = 150; seed = 9 } in
  let h = Hybrid.run ~config ~afl_budget:2000 p in
  let kondo_recall = Metrics.recall ~truth ~approx:h.Hybrid.kondo.Pipeline.approx in
  let hybrid_recall = Metrics.recall ~truth ~approx:h.Hybrid.approx in
  Alcotest.(check bool) "hybrid >= kondo recall" true (hybrid_recall >= kondo_recall -. 1e-9);
  Alcotest.(check bool) "extra counted" true (h.Hybrid.afl_extra >= 0)

let test_hybrid_includes_all_observations () =
  let p = Stencils.prl2d ~n:32 () in
  let config = { Config.default with Config.max_iter = 100; stop_iter = 100 } in
  let h = Hybrid.run ~config ~afl_budget:500 p in
  Alcotest.(check bool) "kondo observations covered" true
    (Index_set.subset h.Hybrid.kondo.Pipeline.fuzz.Schedule.indices h.Hybrid.approx)

let test_hybrid_no_extra_reuses_kondo () =
  (* when AFL adds nothing, the hybrid result is exactly Kondo's *)
  let p = Stencils.ldc2d ~n:32 () in
  let config = { Config.default with Config.max_iter = 400; stop_iter = 400 } in
  let h = Hybrid.run ~config ~afl_budget:1 p in
  if h.Hybrid.afl_extra = 0 then
    Alcotest.(check bool) "same approx" true
      (Index_set.equal h.Hybrid.approx h.Hybrid.kondo.Pipeline.approx)

let test_sc_empty_program () =
  (* a schedule that never finds a useful input yields an empty hull *)
  let p = Stencils.ldc2d ~n:32 () in
  let never = { p with Program.plan = (fun _ -> []) } in
  let config = { Config.default with Config.max_iter = 50; stop_iter = 50 } in
  let r = Simple_convex.run ~config never in
  Alcotest.(check int) "no vertices" 0 r.Simple_convex.hull_vertices;
  Alcotest.(check bool) "empty approx" true (Index_set.is_empty r.Simple_convex.approx)

let suite =
  ( "baselines",
    [ Alcotest.test_case "BF exhaustive equals truth" `Quick test_bf_exhaustive_is_exact;
      Alcotest.test_case "BF precision always 1" `Quick test_bf_precision_always_one;
      Alcotest.test_case "BF evaluation budget" `Quick test_bf_eval_budget;
      Alcotest.test_case "BF partial recall under budget" `Quick test_bf_partial_recall_under_budget;
      Alcotest.test_case "BF deterministic" `Quick test_bf_deterministic;
      Alcotest.test_case "AFL atoi decoding" `Quick test_afl_decode_atoi;
      Alcotest.test_case "AFL respects exec budget" `Quick test_afl_respects_exec_budget;
      Alcotest.test_case "AFL observations sound" `Quick test_afl_indices_sound;
      Alcotest.test_case "AFL progresses from seed input" `Quick test_afl_makes_progress_from_seed;
      Alcotest.test_case "AFL deterministic given seed" `Quick test_afl_deterministic_given_seed;
      Alcotest.test_case "AFL below Kondo at equal budget" `Quick test_afl_below_kondo_at_equal_evals;
      Alcotest.test_case "hybrid never below Kondo" `Quick test_hybrid_never_below_kondo;
      Alcotest.test_case "hybrid covers all observations" `Quick
        test_hybrid_includes_all_observations;
      Alcotest.test_case "hybrid reuses Kondo when AFL adds nothing" `Quick
        test_hybrid_no_extra_reuses_kondo;
      Alcotest.test_case "SC approx ⊇ observed" `Quick test_sc_approx_superset_of_observed;
      Alcotest.test_case "SC loses precision on disjoint subsets" `Quick
        test_sc_worse_precision_on_disjoint;
      Alcotest.test_case "SC with empty observations" `Quick test_sc_empty_program ] )
