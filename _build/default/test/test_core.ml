(* Tests for Kondo proper: clusters, the fuzz schedule, the carver, the
   metrics, and the debloat pipeline. *)

open Kondo_dataarray
open Kondo_workload
open Kondo_core

let small_config =
  { Config.default with Config.max_iter = 400; stop_iter = 150; n_init = 10; seed = 11 }

(* ---------------- Cluster ---------------- *)

let test_cluster_new_center_beyond_diameter () =
  let c = Cluster.create ~diameter:5.0 in
  Cluster.add c [| 0.0; 0.0 |];
  Cluster.add c [| 100.0; 0.0 |];
  Alcotest.(check int) "two clusters" 2 (Cluster.count c)

let test_cluster_join_within_diameter () =
  let c = Cluster.create ~diameter:5.0 in
  Cluster.add c [| 0.0; 0.0 |];
  Cluster.add c [| 2.0; 0.0 |];
  Alcotest.(check int) "one cluster" 1 (Cluster.count c);
  Alcotest.(check int) "two members" 2 (Cluster.total_members c);
  (* center is the running mean *)
  match Cluster.centers c with
  | [ center ] -> Alcotest.(check (float 1e-9)) "mean center" 1.0 center.(0)
  | _ -> Alcotest.fail "expected one center"

let test_cluster_nearest () =
  let c = Cluster.create ~diameter:1.0 in
  Alcotest.(check bool) "empty has no nearest" true (Cluster.nearest c [| 0.0 |] = None);
  Cluster.add c [| 0.0 |];
  Cluster.add c [| 10.0 |];
  match Cluster.nearest c [| 7.0 |] with
  | Some (center, d) ->
    Alcotest.(check (float 1e-9)) "nearest center" 10.0 center.(0);
    Alcotest.(check (float 1e-9)) "distance" 3.0 d
  | None -> Alcotest.fail "expected nearest"

(* ---------------- Schedule ---------------- *)

let test_schedule_deterministic () =
  let p = Stencils.ldc2d ~n:32 () in
  let a = Schedule.run ~config:small_config p in
  let b = Schedule.run ~config:small_config p in
  Alcotest.(check int) "same evaluations" a.Schedule.evaluations b.Schedule.evaluations;
  Alcotest.(check bool) "same discovered indices" true
    (Index_set.equal a.Schedule.indices b.Schedule.indices);
  Alcotest.(check bool) "same trace params" true
    (List.for_all2
       (fun (x : Schedule.outcome) (y : Schedule.outcome) -> x.Schedule.params = y.Schedule.params)
       a.Schedule.trace b.Schedule.trace)

let test_schedule_seed_changes_run () =
  let p = Stencils.ldc2d ~n:32 () in
  let a = Schedule.run ~config:small_config p in
  let b = Schedule.run ~config:(Config.with_seed small_config 99) p in
  Alcotest.(check bool) "different traces" true
    (List.map (fun (o : Schedule.outcome) -> Array.to_list o.Schedule.params) a.Schedule.trace
    <> List.map (fun (o : Schedule.outcome) -> Array.to_list o.Schedule.params) b.Schedule.trace)

let test_schedule_indices_sound () =
  (* IS accumulates only genuinely accessed indices: IS ⊆ I_Θ *)
  let p = Stencils.prl2d ~n:32 () in
  let r = Schedule.run ~config:small_config p in
  let truth = Program.ground_truth p in
  Alcotest.(check bool) "IS subset of truth" true (Index_set.subset r.Schedule.indices truth)

let test_schedule_stagnation_stop () =
  let p = Stencils.ldc2d ~n:32 () in
  let config = { small_config with Config.max_iter = 10_000; stop_iter = 100 } in
  let r = Schedule.run ~config p in
  Alcotest.(check bool) "stopped by stagnation" true (r.Schedule.stopped = Schedule.Stagnation);
  Alcotest.(check bool) "before max_iter" true (r.Schedule.iterations < 10_000)

let test_schedule_max_iter_stop () =
  let p = Stencils.cs ~n:64 1 in
  let config = { small_config with Config.max_iter = 50; stop_iter = 1_000 } in
  let r = Schedule.run ~config p in
  Alcotest.(check bool) "max iterations" true (r.Schedule.stopped = Schedule.Max_iterations);
  Alcotest.(check int) "iteration count" 50 r.Schedule.iterations

let test_schedule_time_budget_stop () =
  let p = Stencils.cs ~n:128 1 in
  let config =
    { small_config with Config.max_iter = max_int / 2; stop_iter = max_int / 2;
      time_budget = Some 0.05 }
  in
  let r = Schedule.run ~config p in
  Alcotest.(check bool) "stopped by budget" true (r.Schedule.stopped = Schedule.Time_budget)

let test_schedule_params_clamped () =
  let p = Stencils.cs ~n:32 1 in
  let r = Schedule.run ~config:small_config p in
  List.iter
    (fun (o : Schedule.outcome) ->
      Array.iteri
        (fun k x ->
          let lo, hi = p.Program.param_space.(k) in
          Alcotest.(check bool) "within Θ" true (x >= lo && x <= hi))
        o.Schedule.params)
    r.Schedule.trace

let test_schedule_finds_both_ldc_corners () =
  let p = Stencils.ldc2d ~n:32 () in
  let r = Schedule.run ~config:small_config p in
  Alcotest.(check bool) "top-left found" true (Index_set.mem r.Schedule.indices [| 0; 0 |]);
  Alcotest.(check bool) "bottom-right found" true (Index_set.mem r.Schedule.indices [| 31; 31 |])

let test_schedule_useful_counts () =
  let p = Stencils.ldc2d ~n:32 () in
  let r = Schedule.run ~config:small_config p in
  let trace_useful =
    List.length (List.filter (fun (o : Schedule.outcome) -> o.Schedule.useful) r.Schedule.trace)
  in
  Alcotest.(check int) "useful_count matches trace" trace_useful r.Schedule.useful_count;
  Alcotest.(check int) "evaluations match trace" (List.length r.Schedule.trace) r.Schedule.evaluations

let test_ee_vs_boundary_modes () =
  (* both schedules run; boundary-EE must not be worse at finding the
     boundary region of a banded program with the same budget *)
  let p = Stencils.cs ~n:64 3 in
  let budget = { small_config with Config.max_iter = 600; stop_iter = 600 } in
  let ee = Schedule.run ~config:{ budget with Config.schedule = Config.Ee } p in
  let bee = Schedule.run ~config:{ budget with Config.schedule = Config.Boundary_ee } p in
  Alcotest.(check bool) "both discover something" true
    (Index_set.cardinal ee.Schedule.indices > 0 && Index_set.cardinal bee.Schedule.indices > 0)

let test_custom_evaluator () =
  let p = Stencils.ldc2d ~n:32 () in
  let calls = ref 0 in
  let eval v is =
    incr calls;
    let set = Program.access p v in
    let before = Index_set.cardinal is in
    Index_set.union_into is set;
    (not (Index_set.is_empty set), Index_set.cardinal is - before)
  in
  let r = Schedule.run_with_eval ~config:small_config p ~eval in
  Alcotest.(check int) "evaluator called per evaluation" r.Schedule.evaluations !calls

(* ---------------- Carver ---------------- *)

let rect_points x0 y0 x1 y1 =
  let pts = ref [] in
  for x = x0 to x1 do
    for y = y0 to y1 do
      pts := [| x; y |] :: !pts
    done
  done;
  !pts

let test_carver_single_region () =
  let config = Config.default in
  let r = Carver.carve_points ~config ~dims:[| 64; 64 |] (rect_points 0 0 20 20) in
  Alcotest.(check int) "merged to one hull" 1 (List.length r.Carver.hulls);
  Alcotest.(check bool) "cells were split first" true (r.Carver.initial_cells > 1)

let test_carver_disjoint_regions_stay_separate () =
  let config = Config.default in
  let pts = rect_points 0 0 10 10 @ rect_points 100 100 110 110 in
  let r = Carver.carve_points ~config ~dims:[| 128; 128 |] pts in
  Alcotest.(check int) "two hulls" 2 (List.length r.Carver.hulls)

let test_carver_rasterize_covers_points () =
  let config = Config.default in
  let pts = rect_points 3 3 9 9 in
  let shape = Shape.create [| 32; 32 |] in
  let r = Carver.carve_points ~config ~dims:[| 32; 32 |] pts in
  let raster = Carver.rasterize shape r.Carver.hulls in
  List.iter
    (fun p -> Alcotest.(check bool) "covered" true (Index_set.mem raster p))
    pts

let test_carver_empty () =
  let r = Carver.carve_points ~config:Config.default ~dims:[| 8; 8 |] [] in
  Alcotest.(check int) "no hulls" 0 (List.length r.Carver.hulls)

let test_carver_fills_sandwiched_gap () =
  (* two nearby clusters must merge, covering the indices between them
     (Fig. 6's motivation); thresholds pinned: the geometry below is
     absolute, not relative to the 32x32 space *)
  let config = { Config.default with Config.autoscale = false } in
  let pts = rect_points 0 0 6 6 @ rect_points 10 0 16 6 in
  let shape = Shape.create [| 32; 32 |] in
  let r = Carver.carve_points ~config ~dims:[| 32; 32 |] pts in
  Alcotest.(check int) "merged" 1 (List.length r.Carver.hulls);
  let raster = Carver.rasterize shape r.Carver.hulls in
  Alcotest.(check bool) "sandwiched index included" true (Index_set.mem raster [| 8; 3 |])

let test_carver_merge_policies () =
  let pts = rect_points 0 0 6 6 @ rect_points 30 30 36 36 in
  let hull_count policy =
    let config = { Config.default with Config.merge_policy = policy; cell_size = Some 8 } in
    List.length (Carver.carve_points ~config ~dims:[| 64; 64 |] pts).Carver.hulls
  in
  (* Both is the strictest policy: it can never merge more than Either *)
  Alcotest.(check bool) "both >= either hull count" true
    (hull_count Config.Both >= hull_count Config.Either)

let test_carver_3d () =
  let pts = ref [] in
  for x = 0 to 5 do
    for y = 0 to 5 do
      for z = 0 to 5 do
        pts := [| x; y; z |] :: !pts
      done
    done
  done;
  let r = Carver.carve_points ~config:Config.default ~dims:[| 32; 32; 32 |] !pts in
  Alcotest.(check int) "one 3D hull" 1 (List.length r.Carver.hulls);
  let raster = Carver.rasterize (Shape.create [| 32; 32; 32 |]) r.Carver.hulls in
  Alcotest.(check int) "6^3 covered" 216 (Index_set.cardinal raster)

let test_carver_cell_sampling_cap () =
  let config = { Config.default with Config.max_cell_points = 16; cell_size = Some 64 } in
  let pts = rect_points 0 0 40 40 in
  let r = Carver.carve_points ~config ~dims:[| 64; 64 |] pts in
  (* sampling keeps extremes, so the hull still covers the full rectangle *)
  let raster = Carver.rasterize (Shape.create [| 64; 64 |]) r.Carver.hulls in
  Alcotest.(check bool) "corners covered" true
    (Index_set.mem raster [| 0; 0 |] && Index_set.mem raster [| 40; 40 |] && Index_set.mem raster [| 0; 40 |]);
  Alcotest.(check int) "full rectangle covered" (41 * 41) (Index_set.cardinal raster)

let test_close_predicate () =
  let open Kondo_geometry in
  let a = Hull.of_int_points (rect_points 0 0 4 4) in
  let b = Hull.of_int_points (rect_points 8 0 12 4) in
  let c = Hull.of_int_points (rect_points 100 100 104 104) in
  let config = Config.default in
  Alcotest.(check bool) "near hulls close" true (Carver.close ~config a b);
  Alcotest.(check bool) "far hulls not close" false (Carver.close ~config a c)

let test_single_hull_baseline () =
  let shape = Shape.create [| 64; 64 |] in
  let set = Index_set.of_list shape (rect_points 0 0 4 4 @ rect_points 50 50 54 54) in
  match Carver.single_hull set with
  | None -> Alcotest.fail "expected a hull"
  | Some h ->
    let raster = Carver.rasterize shape [ h ] in
    (* the single hull swallows the gap: precision loss of SC *)
    Alcotest.(check bool) "gap covered" true (Index_set.mem raster [| 27; 27 |])

let arb_point_cloud =
  QCheck.(list_of_size (Gen.int_range 1 60) (pair (int_range 0 40) (int_range 0 40)))

let qcheck_carver_covers_inputs =
  QCheck.Test.make ~name:"carve+rasterize covers every input point" ~count:100 arb_point_cloud
    (fun raw ->
      let pts = List.map (fun (x, y) -> [| x; y |]) raw in
      let r = Carver.carve_points ~config:Config.default ~dims:[| 48; 48 |] pts in
      let raster = Carver.rasterize (Shape.create [| 48; 48 |]) r.Carver.hulls in
      List.for_all (fun p -> Index_set.mem raster p) pts)

let qcheck_carver_fixpoint =
  QCheck.Test.make ~name:"after merging, no two hulls are CLOSE" ~count:60 arb_point_cloud
    (fun raw ->
      let pts = List.map (fun (x, y) -> [| x; y |]) raw in
      let config = { Config.default with Config.autoscale = false } in
      let r = Carver.carve_points ~config ~dims:[| 48; 48 |] pts in
      let hulls = Array.of_list r.Carver.hulls in
      let ok = ref true in
      for i = 0 to Array.length hulls - 2 do
        for j = i + 1 to Array.length hulls - 1 do
          if Carver.close ~config hulls.(i) hulls.(j) then ok := false
        done
      done;
      !ok)

let qcheck_metrics_bounds =
  QCheck.Test.make ~name:"precision/recall/f1 stay in [0,1]" ~count:200
    QCheck.(pair (list (pair (int_range 0 7) (int_range 0 7))) (list (pair (int_range 0 7) (int_range 0 7))))
    (fun (ta, tb) ->
      let shape = Shape.create [| 8; 8 |] in
      let mk l = Index_set.of_list shape (List.map (fun (x, y) -> [| x; y |]) l) in
      let truth = mk ta and approx = mk tb in
      let a = Metrics.accuracy ~truth ~approx in
      let in01 x = x >= 0.0 && x <= 1.0 in
      in01 a.Metrics.precision && in01 a.Metrics.recall && in01 a.Metrics.f1
      && in01 a.Metrics.bloat)

let qcheck_schedule_deterministic =
  QCheck.Test.make ~name:"schedule is a pure function of (config, program)" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let p = Stencils.ldc2d ~n:32 () in
      let config = { Config.default with Config.seed; max_iter = 60; stop_iter = 60 } in
      let a = Schedule.run ~config p and b = Schedule.run ~config p in
      Index_set.equal a.Schedule.indices b.Schedule.indices
      && a.Schedule.evaluations = b.Schedule.evaluations)

(* ---------------- Metrics ---------------- *)

let test_metrics_known_values () =
  let shape = Shape.create [| 4; 4 |] in
  let truth = Index_set.of_list shape [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ] in
  let approx = Index_set.of_list shape [ [| 0; 0 |]; [| 0; 1 |]; [| 2; 2 |] ] in
  Alcotest.(check (float 1e-9)) "precision 2/3" (2.0 /. 3.0) (Metrics.precision ~truth ~approx);
  Alcotest.(check (float 1e-9)) "recall 1/2" 0.5 (Metrics.recall ~truth ~approx);
  Alcotest.(check (float 1e-9)) "bloat 13/16" (13.0 /. 16.0) (Metrics.bloat_fraction approx)

let test_metrics_empty_cases () =
  let shape = Shape.create [| 2; 2 |] in
  let empty = Index_set.create shape in
  let full = Index_set.of_list shape [ [| 0; 0 |] ] in
  Alcotest.(check (float 1e-9)) "precision of empty approx" 1.0 (Metrics.precision ~truth:full ~approx:empty);
  Alcotest.(check (float 1e-9)) "recall of empty truth" 1.0 (Metrics.recall ~truth:empty ~approx:full)

let test_metrics_perfect () =
  let p = Stencils.ldc2d ~n:16 () in
  let truth = Program.ground_truth p in
  let a = Metrics.accuracy ~truth ~approx:truth in
  Alcotest.(check (float 1e-9)) "precision" 1.0 a.Metrics.precision;
  Alcotest.(check (float 1e-9)) "recall" 1.0 a.Metrics.recall;
  Alcotest.(check (float 1e-9)) "f1" 1.0 a.Metrics.f1

let test_missed_valuation_rate () =
  let p = Stencils.ldc2d ~n:16 () in
  let truth = Program.ground_truth p in
  Alcotest.(check (float 1e-9)) "perfect approx misses nothing" 0.0
    (Metrics.missed_valuation_rate p ~approx:truth);
  let empty = Index_set.create p.Program.shape in
  let rate = Metrics.missed_valuation_rate p ~approx:empty in
  (* with an empty approximation, exactly the useful valuations miss *)
  let useful = ref 0 and total = ref 0 in
  Program.iter_param_space p (fun v ->
      incr total;
      if Program.is_useful p v then incr useful);
  let expected = float_of_int !useful /. float_of_int !total in
  Alcotest.(check (float 1e-9)) "rate = useful fraction" expected rate

(* ---------------- Pipeline ---------------- *)

let test_pipeline_ldc_perfect () =
  let p = Stencils.ldc2d ~n:32 () in
  let r = Pipeline.evaluate ~config:small_config p in
  let a = Option.get r.Pipeline.accuracy in
  Alcotest.(check (float 1e-9)) "precision 1 (disjoint separation)" 1.0 a.Metrics.precision;
  Alcotest.(check bool) "high recall" true (a.Metrics.recall > 0.95)

let test_pipeline_approx_superset_of_observed () =
  let p = Stencils.prl2d ~n:32 () in
  let r = Pipeline.evaluate ~config:small_config p in
  Alcotest.(check bool) "observed ⊆ approx" true
    (Index_set.subset r.Pipeline.fuzz.Schedule.indices r.Pipeline.approx)

let test_keep_intervals_roundtrip () =
  let p = Stencils.ldc2d ~n:16 () in
  let shape = p.Program.shape in
  let approx = Index_set.of_list shape [ [| 0; 0 |]; [| 0; 1 |]; [| 5; 5 |] ] in
  let keep = Pipeline.keep_intervals p approx ~layout:Layout.Contiguous in
  let esz = Dtype.size p.Program.dtype in
  (* adjacent elements coalesce: (0,0)(0,1) are one run *)
  Alcotest.(check int) "two runs" 2 (Kondo_interval.Interval_set.cardinal keep);
  Alcotest.(check int) "three elements" (3 * esz) (Kondo_interval.Interval_set.total_length keep);
  (* every kept element's byte range is covered *)
  Index_set.iter approx (fun idx ->
      let off = Layout.element_offset Layout.Contiguous shape p.Program.dtype idx in
      Alcotest.(check bool) "covered" true
        (Kondo_interval.Interval_set.covers keep (Kondo_interval.Interval.make off (off + esz))))

let test_keep_intervals_chunked () =
  let p = Stencils.ldc2d ~n:16 () in
  let layout = Layout.Chunked [| 4; 4 |] in
  let approx = Index_set.of_list p.Program.shape [ [| 0; 0 |]; [| 15; 15 |] ] in
  let keep = Pipeline.keep_intervals p approx ~layout in
  let esz = Dtype.size p.Program.dtype in
  Index_set.iter approx (fun idx ->
      let off = Layout.element_offset layout p.Program.shape p.Program.dtype idx in
      Alcotest.(check bool) "chunked offsets covered" true
        (Kondo_interval.Interval_set.covers keep (Kondo_interval.Interval.make off (off + esz))))

let test_debloat_file_end_to_end () =
  let p = Stencils.ldc2d ~n:16 () in
  let src = Filename.temp_file "kondo_pipe_src" ".kh5" in
  let dst = Filename.temp_file "kondo_pipe_dst" ".kh5" in
  Datafile.write_for ~path:src p;
  let report = Pipeline.debloat_file ~config:small_config p ~src ~dst in
  let d = Kondo_h5.File.open_file dst in
  (* every index Kondo kept reads back the original value *)
  let checked = ref 0 in
  Index_set.iter report.Pipeline.approx (fun idx ->
      if !checked < 200 then begin
        incr checked;
        Alcotest.(check (float 1e-9)) "value preserved" (Datafile.fill idx)
          (Kondo_h5.File.read_element d p.Program.dataset idx)
      end);
  (* and the debloated file is smaller *)
  let s = Kondo_h5.File.open_file src in
  Alcotest.(check bool) "smaller" true (Kondo_h5.File.file_size d < Kondo_h5.File.file_size s);
  Kondo_h5.File.close s;
  Kondo_h5.File.close d;
  Sys.remove src;
  Sys.remove dst

let test_debloat_supports_program_reruns () =
  (* re-running the program on observed parameter values against the
     debloated file must not raise Data_missing *)
  let p = Stencils.rdc2d ~n:16 () in
  let src = Filename.temp_file "kondo_rerun_src" ".kh5" in
  let dst = Filename.temp_file "kondo_rerun_dst" ".kh5" in
  Datafile.write_for ~path:src p;
  let report = Pipeline.debloat_file ~config:small_config p ~src ~dst in
  let d = Kondo_h5.File.open_file dst in
  List.iter
    (fun (o : Schedule.outcome) ->
      if o.Schedule.useful then ignore (Program.run_io p d o.Schedule.params))
    report.Pipeline.fuzz.Schedule.trace;
  Kondo_h5.File.close d;
  Sys.remove src;
  Sys.remove dst

let test_config_auto_cell_size () =
  Alcotest.(check int) "small shapes floor at 8" 8 (Config.auto_cell_size Config.default [| 32; 32 |]);
  Alcotest.(check int) "128 -> 8" 8 (Config.auto_cell_size Config.default [| 128; 128 |]);
  Alcotest.(check int) "2048 -> 128" 128 (Config.auto_cell_size Config.default [| 2048; 2048 |]);
  Alcotest.(check int) "explicit wins" 5
    (Config.auto_cell_size { Config.default with Config.cell_size = Some 5 } [| 2048 |])

let suite =
  ( "core",
    [ Alcotest.test_case "cluster: new center beyond diameter" `Quick
        test_cluster_new_center_beyond_diameter;
      Alcotest.test_case "cluster: join within diameter" `Quick test_cluster_join_within_diameter;
      Alcotest.test_case "cluster: nearest" `Quick test_cluster_nearest;
      Alcotest.test_case "schedule: deterministic" `Quick test_schedule_deterministic;
      Alcotest.test_case "schedule: seed sensitivity" `Quick test_schedule_seed_changes_run;
      Alcotest.test_case "schedule: IS subset of truth" `Quick test_schedule_indices_sound;
      Alcotest.test_case "schedule: stagnation stop" `Quick test_schedule_stagnation_stop;
      Alcotest.test_case "schedule: max-iter stop" `Quick test_schedule_max_iter_stop;
      Alcotest.test_case "schedule: time-budget stop" `Quick test_schedule_time_budget_stop;
      Alcotest.test_case "schedule: params stay in Θ" `Quick test_schedule_params_clamped;
      Alcotest.test_case "schedule: finds both LDC corners" `Quick
        test_schedule_finds_both_ldc_corners;
      Alcotest.test_case "schedule: counters consistent" `Quick test_schedule_useful_counts;
      Alcotest.test_case "schedule: EE and boundary-EE modes" `Quick test_ee_vs_boundary_modes;
      Alcotest.test_case "schedule: custom evaluator" `Quick test_custom_evaluator;
      Alcotest.test_case "carver: single region" `Quick test_carver_single_region;
      Alcotest.test_case "carver: disjoint regions separate" `Quick
        test_carver_disjoint_regions_stay_separate;
      Alcotest.test_case "carver: rasterize covers inputs" `Quick test_carver_rasterize_covers_points;
      Alcotest.test_case "carver: empty input" `Quick test_carver_empty;
      Alcotest.test_case "carver: fills sandwiched gaps" `Quick test_carver_fills_sandwiched_gap;
      Alcotest.test_case "carver: merge policy strictness" `Quick test_carver_merge_policies;
      Alcotest.test_case "carver: 3D" `Quick test_carver_3d;
      Alcotest.test_case "carver: sampling cap keeps extremes" `Quick test_carver_cell_sampling_cap;
      Alcotest.test_case "carver: close predicate" `Quick test_close_predicate;
      Alcotest.test_case "carver: single-hull baseline swallows gaps" `Quick
        test_single_hull_baseline;
      QCheck_alcotest.to_alcotest qcheck_carver_covers_inputs;
      QCheck_alcotest.to_alcotest qcheck_carver_fixpoint;
      QCheck_alcotest.to_alcotest qcheck_metrics_bounds;
      QCheck_alcotest.to_alcotest qcheck_schedule_deterministic;
      Alcotest.test_case "metrics: known values" `Quick test_metrics_known_values;
      Alcotest.test_case "metrics: empty cases" `Quick test_metrics_empty_cases;
      Alcotest.test_case "metrics: perfect approx" `Quick test_metrics_perfect;
      Alcotest.test_case "metrics: missed valuation rate" `Quick test_missed_valuation_rate;
      Alcotest.test_case "pipeline: LDC precision 1" `Quick test_pipeline_ldc_perfect;
      Alcotest.test_case "pipeline: approx ⊇ observed" `Quick
        test_pipeline_approx_superset_of_observed;
      Alcotest.test_case "pipeline: keep intervals roundtrip" `Quick test_keep_intervals_roundtrip;
      Alcotest.test_case "pipeline: keep intervals chunked" `Quick test_keep_intervals_chunked;
      Alcotest.test_case "pipeline: debloat file end to end" `Quick test_debloat_file_end_to_end;
      Alcotest.test_case "pipeline: reruns survive debloated file" `Quick
        test_debloat_supports_program_reruns;
      Alcotest.test_case "config: auto cell size" `Quick test_config_auto_cell_size ] )
