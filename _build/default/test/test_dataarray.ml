(* Unit and property tests for the array data model. *)

open Kondo_dataarray

(* ---------------- Dtype ---------------- *)

let test_dtype_sizes () =
  Alcotest.(check int) "int32" 4 (Dtype.size Dtype.Int32);
  Alcotest.(check int) "int64" 8 (Dtype.size Dtype.Int64);
  Alcotest.(check int) "float32" 4 (Dtype.size Dtype.Float32);
  Alcotest.(check int) "float64" 8 (Dtype.size Dtype.Float64);
  Alcotest.(check int) "long double is 16 bytes (paper V-B)" 16 (Dtype.size Dtype.Long_double)

let test_dtype_string_roundtrip () =
  List.iter
    (fun dt ->
      Alcotest.(check bool) "string roundtrip" true (Dtype.of_string (Dtype.to_string dt) = Some dt);
      Alcotest.(check bool) "code roundtrip" true (Dtype.of_code (Dtype.code dt) = Some dt))
    Dtype.all

let test_dtype_encode_decode () =
  List.iter
    (fun dt ->
      let buf = Bytes.make 16 '\xAA' in
      Dtype.encode dt 42.0 buf 0;
      Alcotest.(check (float 1e-6)) (Dtype.to_string dt) 42.0 (Dtype.decode dt buf 0))
    Dtype.all

let qcheck_dtype_float_roundtrip =
  QCheck.Test.make ~name:"float64/long_double roundtrip is exact" ~count:300
    QCheck.(float_range (-1e12) 1e12)
    (fun v ->
      List.for_all
        (fun dt ->
          let buf = Bytes.make 16 '\x00' in
          Dtype.encode dt v buf 0;
          Dtype.decode dt buf 0 = v)
        [ Dtype.Float64; Dtype.Long_double ])

let qcheck_dtype_int_roundtrip =
  QCheck.Test.make ~name:"int32 roundtrip on integers" ~count:300
    QCheck.(int_range (-1_000_000) 1_000_000)
    (fun v ->
      let buf = Bytes.make 4 '\x00' in
      Dtype.encode Dtype.Int32 (float_of_int v) buf 0;
      Dtype.decode Dtype.Int32 buf 0 = float_of_int v)

(* ---------------- Shape ---------------- *)

let test_shape_basics () =
  let s = Shape.create [| 4; 5; 6 |] in
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check int) "nelems" 120 (Shape.nelems s);
  Alcotest.(check string) "to_string" "4x5x6" (Shape.to_string s)

let test_shape_bounds () =
  let s = Shape.create [| 3; 3 |] in
  Alcotest.(check bool) "in" true (Shape.in_bounds s [| 2; 2 |]);
  Alcotest.(check bool) "neg" false (Shape.in_bounds s [| -1; 0 |]);
  Alcotest.(check bool) "over" false (Shape.in_bounds s [| 0; 3 |]);
  Alcotest.(check bool) "rank mismatch" false (Shape.in_bounds s [| 0 |])

let test_shape_rejects_bad_dims () =
  Alcotest.check_raises "zero dim" (Invalid_argument "Shape.create: non-positive dim") (fun () ->
      ignore (Shape.create [| 3; 0 |]))

let test_shape_row_major_order () =
  let s = Shape.create [| 2; 3 |] in
  Alcotest.(check int) "(0,0)" 0 (Shape.linearize s [| 0; 0 |]);
  Alcotest.(check int) "(0,2)" 2 (Shape.linearize s [| 0; 2 |]);
  Alcotest.(check int) "(1,0)" 3 (Shape.linearize s [| 1; 0 |]);
  Alcotest.(check int) "(1,2)" 5 (Shape.linearize s [| 1; 2 |])

let test_shape_iter_order () =
  let s = Shape.create [| 2; 2 |] in
  let seen = ref [] in
  Shape.iter s (fun idx -> seen := Array.to_list idx :: !seen);
  Alcotest.(check (list (list int))) "row major"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (List.rev !seen)

let arb_shape_and_index =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 1 3) (int_range 1 12) >>= fun dims ->
      let dims = Array.of_list dims in
      let idx = Array.to_list (Array.map (fun d -> int_range 0 (d - 1)) dims) in
      flatten_l idx >|= fun idx -> (dims, Array.of_list idx))
  in
  make ~print:(fun (d, i) ->
      Printf.sprintf "dims=[%s] idx=[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int d)))
        (String.concat ";" (Array.to_list (Array.map string_of_int i))))
    gen

let qcheck_linearize_roundtrip =
  QCheck.Test.make ~name:"linearize/delinearize roundtrip" ~count:500 arb_shape_and_index
    (fun (dims, idx) ->
      let s = Shape.create dims in
      let lin = Shape.linearize s idx in
      lin >= 0 && lin < Shape.nelems s && Shape.delinearize s lin = idx)

(* ---------------- Layout ---------------- *)

let test_layout_contiguous_offsets () =
  let s = Shape.create [| 2; 3 |] in
  Alcotest.(check int) "first" 0 (Layout.element_offset Layout.Contiguous s Dtype.Float64 [| 0; 0 |]);
  Alcotest.(check int) "row stride" 24
    (Layout.element_offset Layout.Contiguous s Dtype.Float64 [| 1; 0 |])

let test_layout_chunked_offsets () =
  let s = Shape.create [| 4; 4 |] in
  let l = Layout.Chunked [| 2; 2 |] in
  (* chunk (0,0) holds (0..1, 0..1): element (1,1) is slot 3 *)
  Alcotest.(check int) "within first chunk" (3 * 8)
    (Layout.element_offset l s Dtype.Float64 [| 1; 1 |]);
  (* chunk (0,1) is the second stored chunk *)
  Alcotest.(check int) "second chunk start" (4 * 8)
    (Layout.element_offset l s Dtype.Float64 [| 0; 2 |])

let test_layout_chunk_grid_padding () =
  let s = Shape.create [| 5; 3 |] in
  let l = Layout.Chunked [| 2; 2 |] in
  Alcotest.(check (array int)) "grid" [| 3; 2 |] (Layout.chunk_grid l s);
  Alcotest.(check int) "padded storage" (3 * 2 * 4) (Layout.storage_nelems l s)

let test_layout_padding_unmapped () =
  let s = Shape.create [| 3; 3 |] in
  let l = Layout.Chunked [| 2; 2 |] in
  (* element (0,0) of chunk (1,1) is index (2,2): fine; its neighbours in
     the chunk are padding *)
  let off_last_chunk = Layout.element_offset l s Dtype.Int32 [| 2; 2 |] in
  Alcotest.(check bool) "real element maps back" true
    (Layout.index_of_offset l s Dtype.Int32 off_last_chunk = Some [| 2; 2 |]);
  Alcotest.(check bool) "padding slot maps to None" true
    (Layout.index_of_offset l s Dtype.Int32 (off_last_chunk + 4) = None)

let test_layout_unaligned_offset () =
  let s = Shape.create [| 4 |] in
  Alcotest.(check bool) "unaligned" true
    (Layout.index_of_offset Layout.Contiguous s Dtype.Float64 3 = None)

let test_layout_contiguous_run () =
  let s = Shape.create [| 4; 6 |] in
  Alcotest.(check int) "to end of array" (4 * 6) (Layout.contiguous_run Layout.Contiguous s Dtype.Float64 [| 0; 0 |]);
  Alcotest.(check int) "within chunk row" 3
    (Layout.contiguous_run (Layout.Chunked [| 2; 3 |]) s Dtype.Float64 [| 0; 0 |]);
  Alcotest.(check int) "mid chunk row" 2
    (Layout.contiguous_run (Layout.Chunked [| 2; 3 |]) s Dtype.Float64 [| 0; 4 |])

let arb_layout_case =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 1 3) (int_range 1 10) >>= fun dims ->
      let dims = Array.of_list dims in
      let cdims = Array.to_list (Array.map (fun d -> int_range 1 d) dims) in
      flatten_l cdims >>= fun cdims ->
      let idx = Array.to_list (Array.map (fun d -> int_range 0 (d - 1)) dims) in
      flatten_l idx >|= fun idx -> (dims, Array.of_list cdims, Array.of_list idx))
  in
  make gen

let qcheck_layout_offset_roundtrip =
  QCheck.Test.make ~name:"element_offset/index_of_offset roundtrip (chunked)" ~count:500
    arb_layout_case (fun (dims, cdims, idx) ->
      let s = Shape.create dims in
      let l = Layout.Chunked cdims in
      let off = Layout.element_offset l s Dtype.Long_double idx in
      Layout.index_of_offset l s Dtype.Long_double off = Some idx)

let qcheck_layout_offsets_injective =
  QCheck.Test.make ~name:"chunked offsets stay within storage and distinct per chunk slot"
    ~count:300 arb_layout_case (fun (dims, cdims, idx) ->
      let s = Shape.create dims in
      let l = Layout.Chunked cdims in
      let off = Layout.element_offset l s Dtype.Int32 idx in
      off >= 0 && off < Layout.storage_nelems l s * 4)

(* ---------------- Bitset ---------------- *)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.cardinal b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 99;
  Bitset.set b 99;
  Alcotest.(check int) "3 members" 3 (Bitset.cardinal b);
  Alcotest.(check bool) "mem" true (Bitset.mem b 63);
  Bitset.clear b 63;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 63);
  Alcotest.(check int) "2 members" 2 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: out of range") (fun () ->
      Bitset.set b 8)

let test_bitset_iter () =
  let b = Bitset.create 20 in
  List.iter (Bitset.set b) [ 3; 7; 19 ];
  let seen = ref [] in
  Bitset.iter b (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "in order" [ 3; 7; 19 ] (List.rev !seen)

let naive_of_list n l =
  let a = Array.make n false in
  List.iter (fun i -> a.(i) <- true) l;
  a

let arb_two_sets =
  QCheck.(pair (list (int_range 0 199)) (list (int_range 0 199)))

let qcheck_bitset_ops_match_naive =
  QCheck.Test.make ~name:"bitset union/inter/diff match a boolean-array model" ~count:300
    arb_two_sets (fun (la, lb) ->
      let mk l =
        let b = Bitset.create 200 in
        List.iter (Bitset.set b) l;
        b
      in
      let a = mk la and b = mk lb in
      let na = naive_of_list 200 la and nb = naive_of_list 200 lb in
      let count f =
        let c = ref 0 in
        for i = 0 to 199 do
          if f na.(i) nb.(i) then incr c
        done;
        !c
      in
      let u = Bitset.copy a in
      Bitset.union_into u b;
      Bitset.cardinal u = count (fun x y -> x || y)
      && Bitset.inter_cardinal a b = count (fun x y -> x && y)
      && Bitset.diff_cardinal a b = count (fun x y -> x && not y)
      && Bitset.subset a u && Bitset.subset b u)

(* ---------------- Hyperslab ---------------- *)

let test_slab_point () =
  let s = Hyperslab.point [| 3; 4 |] in
  Alcotest.(check int) "one element" 1 (Hyperslab.nelems s);
  Alcotest.(check bool) "mem" true (Hyperslab.mem s [| 3; 4 |]);
  Alcotest.(check bool) "not mem" false (Hyperslab.mem s [| 3; 5 |])

let test_slab_block () =
  let s = Hyperslab.block_at [| 1; 2 |] [| 2; 3 |] in
  Alcotest.(check int) "6 elements" 6 (Hyperslab.nelems s);
  Alcotest.(check bool) "corner" true (Hyperslab.mem s [| 2; 4 |]);
  Alcotest.(check bool) "outside" false (Hyperslab.mem s [| 3; 2 |])

let test_slab_strided () =
  let s = Hyperslab.make ~start:[| 0 |] ~stride:[| 4 |] ~count:[| 3 |] ~block:[| 2 |] () in
  (* selects 0,1, 4,5, 8,9 *)
  let seen = ref [] in
  Hyperslab.iter s (fun idx -> seen := idx.(0) :: !seen);
  Alcotest.(check (list int)) "strided blocks" [ 0; 1; 4; 5; 8; 9 ] (List.rev !seen);
  Alcotest.(check bool) "mem within block" true (Hyperslab.mem s [| 5 |]);
  Alcotest.(check bool) "gap" false (Hyperslab.mem s [| 3 |])

let test_slab_block_wider_than_stride () =
  (* stride 1, block 4: a dense run 0..3 despite count=1 semantics per position *)
  let s = Hyperslab.make ~start:[| 0 |] ~stride:[| 1 |] ~count:[| 1 |] ~block:[| 4 |] () in
  List.iter (fun i -> Alcotest.(check bool) (string_of_int i) true (Hyperslab.mem s [| i |])) [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "4 out" false (Hyperslab.mem s [| 4 |])

let test_slab_clip () =
  let shape = Shape.create [| 4; 4 |] in
  let s = Hyperslab.block_at [| 3; 3 |] [| 3; 3 |] in
  let n = ref 0 in
  Hyperslab.iter ~clip:shape s (fun _ -> incr n);
  Alcotest.(check int) "only the in-bounds corner" 1 !n

let test_slab_bbox () =
  let s = Hyperslab.make ~start:[| 2; 1 |] ~stride:[| 3; 2 |] ~count:[| 2; 4 |] ~block:[| 2; 1 |] () in
  let lo, hi = Hyperslab.bbox s in
  Alcotest.(check (array int)) "lo" [| 2; 1 |] lo;
  Alcotest.(check (array int)) "hi" [| 6; 7 |] hi

let test_slab_validation () =
  Alcotest.check_raises "zero stride" (Invalid_argument "Hyperslab.make: stride < 1") (fun () ->
      ignore (Hyperslab.make ~start:[| 0 |] ~stride:[| 0 |] ()))

let arb_slab =
  let open QCheck in
  let gen =
    Gen.(
      int_range 1 2 >>= fun rank ->
      let f g = flatten_l (List.init rank (fun _ -> g)) in
      f (int_range 0 6) >>= fun start ->
      f (int_range 1 4) >>= fun stride ->
      f (int_range 1 3) >>= fun count ->
      f (int_range 1 4) >|= fun block ->
      Hyperslab.make ~start:(Array.of_list start) ~stride:(Array.of_list stride)
        ~count:(Array.of_list count) ~block:(Array.of_list block) ())
  in
  make ~print:Hyperslab.to_string gen

let qcheck_slab_iter_mem_agree =
  QCheck.Test.make ~name:"every iterated index is a member" ~count:300 arb_slab (fun s ->
      let ok = ref true in
      Hyperslab.iter s (fun idx -> if not (Hyperslab.mem s idx) then ok := false);
      !ok)

let qcheck_slab_mem_iff_iterated =
  QCheck.Test.make ~name:"mem agrees with enumeration over the bbox" ~count:200 arb_slab (fun s ->
      let tbl = Hashtbl.create 64 in
      Hyperslab.iter s (fun idx -> Hashtbl.replace tbl (Array.to_list idx) ());
      let lo, hi = Hyperslab.bbox s in
      let ok = ref true in
      let rec walk k acc =
        if k = Array.length lo then begin
          let idx = Array.of_list (List.rev acc) in
          let expected = Hashtbl.mem tbl (Array.to_list idx) in
          if Hyperslab.mem s idx <> expected then ok := false
        end
        else
          for v = lo.(k) to hi.(k) do
            walk (k + 1) (v :: acc)
          done
      in
      walk 0 [];
      !ok)

let qcheck_slab_nelems =
  QCheck.Test.make ~name:"nelems counts iterated indices when blocks do not overlap" ~count:200
    arb_slab (fun s ->
      (* skip overlapping selections (block > stride) where multiset
         counting diverges from set counting *)
      let overlapping = ref false in
      for k = 0 to Hyperslab.rank s - 1 do
        if s.Hyperslab.block.(k) > s.Hyperslab.stride.(k) && s.Hyperslab.count.(k) > 1 then
          overlapping := true
      done;
      QCheck.assume (not !overlapping);
      let n = ref 0 in
      Hyperslab.iter s (fun _ -> incr n);
      !n = Hyperslab.nelems s)

(* ---------------- Index_set ---------------- *)

let test_index_set_basics () =
  let s = Shape.create [| 4; 4 |] in
  let set = Index_set.create s in
  Alcotest.(check bool) "empty" true (Index_set.is_empty set);
  Index_set.add set [| 1; 2 |];
  Index_set.add set [| 1; 2 |];
  Alcotest.(check int) "dedup" 1 (Index_set.cardinal set);
  Alcotest.(check bool) "mem" true (Index_set.mem set [| 1; 2 |]);
  Alcotest.(check bool) "not mem" false (Index_set.mem set [| 2; 1 |]);
  Alcotest.(check (float 1e-9)) "fraction" (1.0 /. 16.0) (Index_set.fraction set)

let test_index_set_out_of_bounds () =
  let set = Index_set.create (Shape.create [| 2; 2 |]) in
  Alcotest.check_raises "oob add" (Invalid_argument "Index_set.add: out of bounds") (fun () ->
      Index_set.add set [| 2; 0 |]);
  Alcotest.(check bool) "add_if_in_bounds false" false (Index_set.add_if_in_bounds set [| 2; 0 |])

let test_index_set_slab_clip () =
  let set = Index_set.create (Shape.create [| 4; 4 |]) in
  Index_set.add_slab set (Hyperslab.block_at [| 2; 2 |] [| 4; 4 |]);
  Alcotest.(check int) "clipped to corner" 4 (Index_set.cardinal set)

let test_index_set_set_ops () =
  let s = Shape.create [| 3; 3 |] in
  let a = Index_set.of_list s [ [| 0; 0 |]; [| 1; 1 |] ] in
  let b = Index_set.of_list s [ [| 1; 1 |]; [| 2; 2 |] ] in
  Alcotest.(check int) "inter" 1 (Index_set.inter_cardinal a b);
  Alcotest.(check int) "diff" 1 (Index_set.diff_cardinal a b);
  let u = Index_set.copy a in
  Index_set.union_into u b;
  Alcotest.(check int) "union" 3 (Index_set.cardinal u);
  Alcotest.(check bool) "subset" true (Index_set.subset a u);
  Alcotest.(check bool) "not subset" false (Index_set.subset u a)

let test_index_set_iter_roundtrip () =
  let s = Shape.create [| 3; 3 |] in
  let pts = [ [| 0; 2 |]; [| 1; 0 |]; [| 2; 1 |] ] in
  let set = Index_set.of_list s pts in
  Alcotest.(check int) "to_list cardinality" 3 (List.length (Index_set.to_list set));
  List.iter
    (fun p -> Alcotest.(check bool) "roundtrip member" true (Index_set.mem set p))
    (Index_set.to_list set)

let qcheck_index_set_serialization =
  QCheck.Test.make ~name:"index set to_bytes/of_bytes roundtrip" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 3) (int_range 1 10))
        (list_of_size (Gen.int_range 0 40) (int_range 0 999)))
    (fun (dims, raw) ->
      let shape = Shape.create (Array.of_list dims) in
      let set = Index_set.create shape in
      List.iter
        (fun lin ->
          let lin = lin mod Shape.nelems shape in
          Index_set.add set (Shape.delinearize shape lin))
        raw;
      Index_set.equal set (Index_set.of_bytes (Index_set.to_bytes set)))

let test_index_set_random_member () =
  let rng = Kondo_prng.Rng.create 5 in
  let s = Shape.create [| 4; 4 |] in
  let set = Index_set.of_list s [ [| 3; 3 |] ] in
  Alcotest.(check bool) "only member" true (Index_set.random_member set rng = Some [| 3; 3 |]);
  let empty = Index_set.create s in
  Alcotest.(check bool) "empty" true (Index_set.random_member empty rng = None)

let suite =
  ( "dataarray",
    [ Alcotest.test_case "dtype sizes" `Quick test_dtype_sizes;
      Alcotest.test_case "dtype string/code roundtrip" `Quick test_dtype_string_roundtrip;
      Alcotest.test_case "dtype encode/decode" `Quick test_dtype_encode_decode;
      QCheck_alcotest.to_alcotest qcheck_dtype_float_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_dtype_int_roundtrip;
      Alcotest.test_case "shape basics" `Quick test_shape_basics;
      Alcotest.test_case "shape bounds" `Quick test_shape_bounds;
      Alcotest.test_case "shape rejects bad dims" `Quick test_shape_rejects_bad_dims;
      Alcotest.test_case "shape row-major order" `Quick test_shape_row_major_order;
      Alcotest.test_case "shape iter order" `Quick test_shape_iter_order;
      QCheck_alcotest.to_alcotest qcheck_linearize_roundtrip;
      Alcotest.test_case "layout contiguous offsets" `Quick test_layout_contiguous_offsets;
      Alcotest.test_case "layout chunked offsets" `Quick test_layout_chunked_offsets;
      Alcotest.test_case "layout chunk grid and padding" `Quick test_layout_chunk_grid_padding;
      Alcotest.test_case "layout padding unmapped" `Quick test_layout_padding_unmapped;
      Alcotest.test_case "layout unaligned offset" `Quick test_layout_unaligned_offset;
      Alcotest.test_case "layout contiguous run" `Quick test_layout_contiguous_run;
      QCheck_alcotest.to_alcotest qcheck_layout_offset_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_layout_offsets_injective;
      Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
      Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
      Alcotest.test_case "bitset iter" `Quick test_bitset_iter;
      QCheck_alcotest.to_alcotest qcheck_bitset_ops_match_naive;
      Alcotest.test_case "slab point" `Quick test_slab_point;
      Alcotest.test_case "slab block" `Quick test_slab_block;
      Alcotest.test_case "slab strided" `Quick test_slab_strided;
      Alcotest.test_case "slab block wider than stride" `Quick test_slab_block_wider_than_stride;
      Alcotest.test_case "slab clip" `Quick test_slab_clip;
      Alcotest.test_case "slab bbox" `Quick test_slab_bbox;
      Alcotest.test_case "slab validation" `Quick test_slab_validation;
      QCheck_alcotest.to_alcotest qcheck_slab_iter_mem_agree;
      QCheck_alcotest.to_alcotest qcheck_slab_mem_iff_iterated;
      QCheck_alcotest.to_alcotest qcheck_slab_nelems;
      Alcotest.test_case "index_set basics" `Quick test_index_set_basics;
      Alcotest.test_case "index_set out of bounds" `Quick test_index_set_out_of_bounds;
      Alcotest.test_case "index_set slab clip" `Quick test_index_set_slab_clip;
      Alcotest.test_case "index_set set ops" `Quick test_index_set_set_ops;
      Alcotest.test_case "index_set iter roundtrip" `Quick test_index_set_iter_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_index_set_serialization;
      Alcotest.test_case "index_set random member" `Quick test_index_set_random_member ] )
