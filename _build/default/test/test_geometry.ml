(* Unit and property tests for the convex-hull geometry layer. *)

open Kondo_geometry

let pt2 x y = [| float_of_int x; float_of_int y |]
let pt3 x y z = [| float_of_int x; float_of_int y; float_of_int z |]

(* ---------------- Vec ---------------- *)

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 6.0; 8.0 |] in
  Alcotest.(check (array (float 1e-9))) "add" [| 5.0; 8.0; 11.0 |] (Vec.add a b);
  Alcotest.(check (array (float 1e-9))) "sub" [| 3.0; 4.0; 5.0 |] (Vec.sub b a);
  Alcotest.(check (float 1e-9)) "dot" 40.0 (Vec.dot a b);
  Alcotest.(check (float 1e-9)) "dist" (sqrt 50.0) (Vec.dist a b);
  Alcotest.(check (array (float 1e-9))) "lerp midpoint" [| 2.5; 4.0; 5.5 |] (Vec.lerp a b 0.5)

let test_vec_cross2 () =
  Alcotest.(check bool) "ccw positive" true (Vec.cross2 (pt2 0 0) (pt2 1 0) (pt2 0 1) > 0.0);
  Alcotest.(check bool) "cw negative" true (Vec.cross2 (pt2 0 0) (pt2 0 1) (pt2 1 0) < 0.0);
  Alcotest.(check (float 1e-9)) "collinear zero" 0.0 (Vec.cross2 (pt2 0 0) (pt2 1 1) (pt2 2 2))

let test_vec_cross3 () =
  Alcotest.(check (array (float 1e-9))) "x cross y = z" [| 0.0; 0.0; 1.0 |]
    (Vec.cross3 [| 1.0; 0.0; 0.0 |] [| 0.0; 1.0; 0.0 |])

let test_vec_centroid () =
  Alcotest.(check (array (float 1e-9))) "centroid" [| 1.0; 1.0 |]
    (Vec.centroid [ pt2 0 0; pt2 2 0; pt2 2 2; pt2 0 2 ])

(* ---------------- Bbox ---------------- *)

let test_bbox_of_points () =
  let b = Bbox.of_points [ pt2 3 1; pt2 0 5; pt2 2 2 ] in
  Alcotest.(check (array (float 1e-9))) "lo" [| 0.0; 1.0 |] (Bbox.lo b);
  Alcotest.(check (array (float 1e-9))) "hi" [| 3.0; 5.0 |] (Bbox.hi b)

let test_bbox_contains () =
  let b = Bbox.make [| 0.0; 0.0 |] [| 2.0; 2.0 |] in
  Alcotest.(check bool) "inside" true (Bbox.contains b [| 1.0; 1.0 |]);
  Alcotest.(check bool) "boundary" true (Bbox.contains b [| 2.0; 0.0 |]);
  Alcotest.(check bool) "outside" false (Bbox.contains b [| 2.1; 0.0 |])

let test_bbox_lattice () =
  let b = Bbox.make [| 0.0; 0.0 |] [| 2.0; 3.0 |] in
  Alcotest.(check int) "count" 12 (Bbox.lattice_count b);
  let n = ref 0 in
  Bbox.iter_lattice b (fun _ -> incr n);
  Alcotest.(check int) "iter matches count" 12 !n

let test_bbox_lattice_fractional () =
  let b = Bbox.make [| 0.5 |] [| 3.5 |] in
  Alcotest.(check int) "1..3" 3 (Bbox.lattice_count b)

let test_bbox_min_dist () =
  let a = Bbox.make [| 0.0; 0.0 |] [| 1.0; 1.0 |] in
  let b = Bbox.make [| 4.0; 1.0 |] [| 5.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "axis gap" 3.0 (Bbox.min_dist a b);
  Alcotest.(check (float 1e-9)) "overlap is zero" 0.0 (Bbox.min_dist a a)

let test_bbox_volume_union () =
  let a = Bbox.make [| 0.0; 0.0 |] [| 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "volume" 6.0 (Bbox.volume a);
  let b = Bbox.make [| -1.0; 1.0 |] [| 1.0; 5.0 |] in
  let u = Bbox.union a b in
  Alcotest.(check (array (float 1e-9))) "union lo" [| -1.0; 0.0 |] (Bbox.lo u);
  Alcotest.(check (array (float 1e-9))) "union hi" [| 2.0; 5.0 |] (Bbox.hi u)

(* ---------------- Hull2d ---------------- *)

let test_hull2d_square () =
  let h = Hull2d.of_points [ pt2 0 0; pt2 4 0; pt2 4 4; pt2 0 4; pt2 2 2; pt2 1 1 ] in
  Alcotest.(check int) "4 vertices" 4 (List.length (Hull2d.vertices h));
  Alcotest.(check (float 1e-9)) "area" 16.0 (Hull2d.area h);
  Alcotest.(check bool) "interior" true (Hull2d.contains h (pt2 2 3));
  Alcotest.(check bool) "edge" true (Hull2d.contains h (pt2 4 2));
  Alcotest.(check bool) "vertex" true (Hull2d.contains h (pt2 0 4));
  Alcotest.(check bool) "outside" false (Hull2d.contains h (pt2 5 2))

let test_hull2d_ccw () =
  let h = Hull2d.of_points [ pt2 0 0; pt2 3 0; pt2 0 3 ] in
  let v = Array.of_list (Hull2d.vertices h) in
  let area2 = ref 0.0 in
  let n = Array.length v in
  for i = 0 to n - 1 do
    let a = v.(i) and b = v.((i + 1) mod n) in
    area2 := !area2 +. ((a.(0) *. b.(1)) -. (b.(0) *. a.(1)))
  done;
  Alcotest.(check bool) "counter-clockwise orientation" true (!area2 > 0.0)

let test_hull2d_collinear_raises () =
  Alcotest.check_raises "collinear input" Hull2d.Degenerate (fun () ->
      ignore (Hull2d.of_points [ pt2 0 0; pt2 1 1; pt2 2 2; pt2 3 3 ]))

let test_hull2d_too_small_raises () =
  Alcotest.check_raises "two points" Hull2d.Degenerate (fun () ->
      ignore (Hull2d.of_points [ pt2 0 0; pt2 1 1 ]))

let test_hull2d_duplicates () =
  let h = Hull2d.of_points [ pt2 0 0; pt2 0 0; pt2 2 0; pt2 2 0; pt2 1 2 ] in
  Alcotest.(check int) "triangle" 3 (List.length (Hull2d.vertices h))

let test_hull2d_collinear_interior_dropped () =
  let h = Hull2d.of_points [ pt2 0 0; pt2 2 0; pt2 4 0; pt2 4 4; pt2 0 4 ] in
  (* (2,0) lies on an edge; it must not be a vertex *)
  Alcotest.(check int) "4 vertices" 4 (List.length (Hull2d.vertices h))

(* ---------------- Hull3d ---------------- *)

let cube_points =
  [ pt3 0 0 0; pt3 2 0 0; pt3 0 2 0; pt3 0 0 2; pt3 2 2 0; pt3 2 0 2; pt3 0 2 2; pt3 2 2 2 ]

let test_hull3d_cube () =
  let h = Hull3d.of_points (pt3 1 1 1 :: cube_points) in
  Alcotest.(check int) "8 extreme vertices" 8 (List.length (Hull3d.vertices h));
  Alcotest.(check (float 1e-6)) "volume" 8.0 (Hull3d.volume h);
  Alcotest.(check bool) "interior point" true (Hull3d.contains h (pt3 1 1 1));
  Alcotest.(check bool) "face point" true (Hull3d.contains h [| 1.0; 1.0; 0.0 |]);
  Alcotest.(check bool) "outside" false (Hull3d.contains h (pt3 3 1 1))

let test_hull3d_tetra () =
  let h = Hull3d.of_points [ pt3 0 0 0; pt3 6 0 0; pt3 0 6 0; pt3 0 0 6 ] in
  Alcotest.(check int) "4 faces" 4 (List.length (Hull3d.faces h));
  Alcotest.(check (float 1e-6)) "volume" 36.0 (Hull3d.volume h)

let test_hull3d_coplanar_raises () =
  Alcotest.check_raises "coplanar" Hull3d.Degenerate (fun () ->
      ignore (Hull3d.of_points [ pt3 0 0 1; pt3 3 0 1; pt3 0 3 1; pt3 3 3 1 ]))

let test_hull3d_outward_normals () =
  let h = Hull3d.of_points cube_points in
  let c = Hull3d.centroid h in
  List.iter
    (fun (a, b, cc) ->
      let n = Vec.cross3 (Vec.sub b a) (Vec.sub cc a) in
      Alcotest.(check bool) "normal points away from centroid" true
        (Vec.dot n (Vec.sub a c) > 0.0))
    (Hull3d.faces h)

(* ---------------- Hull (generic) ---------------- *)

let test_hull_point () =
  let h = Hull.of_int_points [ [| 3; 4 |]; [| 3; 4 |] ] in
  Alcotest.(check int) "affine dim 0" 0 (Hull.affine_dim h);
  Alcotest.(check int) "lattice" 1 (Hull.lattice_count h);
  Alcotest.(check bool) "contains itself" true (Hull.contains_int h [| 3; 4 |]);
  Alcotest.(check bool) "not neighbour" false (Hull.contains_int h [| 3; 5 |])

let test_hull_segment () =
  let h = Hull.of_int_points [ [| 0; 0 |]; [| 6; 3 |]; [| 2; 1 |] ] in
  Alcotest.(check int) "affine dim 1" 1 (Hull.affine_dim h);
  Alcotest.(check bool) "midpoint on segment" true (Hull.contains_int h [| 4; 2 |]);
  Alcotest.(check bool) "off segment" false (Hull.contains_int h [| 4; 3 |]);
  Alcotest.(check int) "lattice points on segment" 4 (Hull.lattice_count h)

let test_hull_1d () =
  let h = Hull.of_int_points [ [| 2 |]; [| 9 |]; [| 5 |] ] in
  Alcotest.(check int) "segment" 1 (Hull.affine_dim h);
  Alcotest.(check int) "8 lattice points" 8 (Hull.lattice_count h);
  Alcotest.(check (float 1e-9)) "length" 7.0 (Hull.measure h)

let test_hull_flat3 () =
  let h = Hull.of_int_points [ [| 0; 0; 2 |]; [| 4; 0; 2 |]; [| 0; 4; 2 |]; [| 4; 4; 2 |] ] in
  Alcotest.(check int) "planar polygon" 2 (Hull.affine_dim h);
  Alcotest.(check int) "5x5 lattice" 25 (Hull.lattice_count h);
  Alcotest.(check bool) "in-plane interior" true (Hull.contains_int h [| 2; 2; 2 |]);
  Alcotest.(check bool) "off-plane" false (Hull.contains_int h [| 2; 2; 3 |]);
  Alcotest.(check (float 1e-6)) "area" 16.0 (Hull.measure h)

let test_hull_tilted_flat3 () =
  (* plane x + y + z = 4 *)
  let pts = [ [| 4; 0; 0 |]; [| 0; 4; 0 |]; [| 0; 0; 4 |] ] in
  let h = Hull.of_int_points pts in
  Alcotest.(check int) "planar" 2 (Hull.affine_dim h);
  Alcotest.(check bool) "lattice point in plane" true (Hull.contains_int h [| 1; 1; 2 |]);
  Alcotest.(check bool) "off plane" false (Hull.contains_int h [| 1; 1; 1 |])

let test_hull_centroid_and_distances () =
  let a = Hull.of_int_points [ [| 0; 0 |]; [| 2; 0 |]; [| 2; 2 |]; [| 0; 2 |] ] in
  let b = Hull.of_int_points [ [| 6; 0 |]; [| 8; 0 |]; [| 8; 2 |]; [| 6; 2 |] ] in
  Alcotest.(check (array (float 1e-9))) "centroid" [| 1.0; 1.0 |] (Hull.centroid a);
  Alcotest.(check (float 1e-9)) "center distance" 6.0 (Hull.center_distance a b);
  Alcotest.(check (float 1e-9)) "boundary distance" 4.0 (Hull.boundary_distance a b)

let test_hull_merge_covers_both () =
  let a = Hull.of_int_points [ [| 0; 0 |]; [| 1; 0 |]; [| 0; 1 |] ] in
  let b = Hull.of_int_points [ [| 5; 5 |]; [| 6; 5 |]; [| 5; 6 |] ] in
  let m = Hull.merge a b in
  List.iter
    (fun h ->
      List.iter
        (fun v -> Alcotest.(check bool) "merge contains operand vertices" true (Hull.contains m v))
        (Hull.vertices h))
    [ a; b ]

let test_hull_merge_point_into_polygon () =
  let a = Hull.of_int_points [ [| 0; 0 |] ] in
  let b = Hull.of_int_points [ [| 4; 0 |]; [| 4; 4 |]; [| 0; 4 |] ] in
  let m = Hull.merge a b in
  Alcotest.(check int) "full polygon" 2 (Hull.affine_dim m);
  Alcotest.(check bool) "interior of combined hull" true (Hull.contains_int m [| 2; 2 |])

(* property: hull of random int points contains every input point *)
let arb_points_2d =
  QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_range 0 30) (int_range 0 30)))

let qcheck_hull2_contains_inputs =
  QCheck.Test.make ~name:"2D hull contains all inputs" ~count:300 arb_points_2d (fun pts ->
      QCheck.assume (pts <> []);
      let points = List.map (fun (x, y) -> [| x; y |]) pts in
      let h = Hull.of_int_points points in
      List.for_all (fun p -> Hull.contains_int h p) points)

let arb_points_3d =
  QCheck.(list_of_size (Gen.int_range 1 30) (triple (int_range 0 12) (int_range 0 12) (int_range 0 12)))

let qcheck_hull3_contains_inputs =
  QCheck.Test.make ~name:"3D hull contains all inputs" ~count:300 arb_points_3d (fun pts ->
      QCheck.assume (pts <> []);
      let points = List.map (fun (x, y, z) -> [| x; y; z |]) pts in
      let h = Hull.of_int_points points in
      List.for_all (fun p -> Hull.contains_int h p) points)

let qcheck_merge_superset =
  QCheck.Test.make ~name:"merged hull contains both hulls' lattices" ~count:100
    QCheck.(pair arb_points_2d arb_points_2d)
    (fun (p1, p2) ->
      QCheck.assume (p1 <> [] && p2 <> []);
      let mk pts = Hull.of_int_points (List.map (fun (x, y) -> [| x; y |]) pts) in
      let a = mk p1 and b = mk p2 in
      let m = Hull.merge a b in
      let ok = ref true in
      Hull.iter_lattice a (fun p -> if not (Hull.contains_int m p) then ok := false);
      Hull.iter_lattice b (fun p -> if not (Hull.contains_int m p) then ok := false);
      !ok)

let qcheck_lattice_within_bbox =
  QCheck.Test.make ~name:"hull lattice is within its bbox" ~count:200 arb_points_2d (fun pts ->
      QCheck.assume (pts <> []);
      let h = Hull.of_int_points (List.map (fun (x, y) -> [| x; y |]) pts) in
      let b = Hull.bbox h in
      let ok = ref true in
      Hull.iter_lattice h (fun p ->
          if not (Bbox.contains b (Array.map float_of_int p)) then ok := false);
      !ok)

let qcheck_hull_measure_le_bbox =
  QCheck.Test.make ~name:"hull measure bounded by bbox volume" ~count:200 arb_points_2d
    (fun pts ->
      QCheck.assume (List.length pts >= 3);
      let h = Hull.of_int_points (List.map (fun (x, y) -> [| x; y |]) pts) in
      Hull.measure h <= Bbox.volume (Hull.bbox h) +. 1e-6)

let suite =
  ( "geometry",
    [ Alcotest.test_case "vec ops" `Quick test_vec_ops;
      Alcotest.test_case "vec cross2" `Quick test_vec_cross2;
      Alcotest.test_case "vec cross3" `Quick test_vec_cross3;
      Alcotest.test_case "vec centroid" `Quick test_vec_centroid;
      Alcotest.test_case "bbox of points" `Quick test_bbox_of_points;
      Alcotest.test_case "bbox contains" `Quick test_bbox_contains;
      Alcotest.test_case "bbox lattice" `Quick test_bbox_lattice;
      Alcotest.test_case "bbox lattice fractional bounds" `Quick test_bbox_lattice_fractional;
      Alcotest.test_case "bbox min dist" `Quick test_bbox_min_dist;
      Alcotest.test_case "bbox volume and union" `Quick test_bbox_volume_union;
      Alcotest.test_case "hull2d square" `Quick test_hull2d_square;
      Alcotest.test_case "hull2d ccw orientation" `Quick test_hull2d_ccw;
      Alcotest.test_case "hull2d collinear raises" `Quick test_hull2d_collinear_raises;
      Alcotest.test_case "hull2d too small raises" `Quick test_hull2d_too_small_raises;
      Alcotest.test_case "hull2d duplicates" `Quick test_hull2d_duplicates;
      Alcotest.test_case "hull2d drops edge-interior vertices" `Quick
        test_hull2d_collinear_interior_dropped;
      Alcotest.test_case "hull3d cube" `Quick test_hull3d_cube;
      Alcotest.test_case "hull3d tetra" `Quick test_hull3d_tetra;
      Alcotest.test_case "hull3d coplanar raises" `Quick test_hull3d_coplanar_raises;
      Alcotest.test_case "hull3d outward normals" `Quick test_hull3d_outward_normals;
      Alcotest.test_case "hull point" `Quick test_hull_point;
      Alcotest.test_case "hull segment" `Quick test_hull_segment;
      Alcotest.test_case "hull 1d" `Quick test_hull_1d;
      Alcotest.test_case "hull planar in 3d" `Quick test_hull_flat3;
      Alcotest.test_case "hull tilted plane in 3d" `Quick test_hull_tilted_flat3;
      Alcotest.test_case "hull centroid and distances" `Quick test_hull_centroid_and_distances;
      Alcotest.test_case "hull merge covers both" `Quick test_hull_merge_covers_both;
      Alcotest.test_case "hull merge point into polygon" `Quick test_hull_merge_point_into_polygon;
      QCheck_alcotest.to_alcotest qcheck_hull2_contains_inputs;
      QCheck_alcotest.to_alcotest qcheck_hull3_contains_inputs;
      QCheck_alcotest.to_alcotest qcheck_merge_superset;
      QCheck_alcotest.to_alcotest qcheck_lattice_within_bbox;
      QCheck_alcotest.to_alcotest qcheck_hull_measure_le_bbox ] )
