(* Tests for the KH5 file format: writer/reader roundtrips, hyperslab
   reads, sparse (debloated) files, corruption handling. *)

open Kondo_dataarray
open Kondo_interval
open Kondo_h5

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("kondo_test_" ^ name)

let fill idx = float_of_int ((idx.(0) * 1000) + if Array.length idx > 1 then idx.(1) else 0)

let mk_dense ?(name = "data") ?(dtype = Dtype.Float64) ?layout dims =
  Dataset.dense ~name ~dtype ~shape:(Shape.create dims) ?layout ()

let test_roundtrip_contiguous () =
  let path = tmp "rt.kh5" in
  let ds = mk_dense [| 6; 7 |] in
  Writer.write path [ (ds, fill) ];
  let f = File.open_file path in
  Shape.iter ds.Dataset.shape (fun idx ->
      Alcotest.(check (float 1e-9)) "value" (fill idx) (File.read_element f "data" idx));
  File.close f

let test_roundtrip_chunked () =
  let path = tmp "rt_chunked.kh5" in
  let ds = mk_dense ~layout:(Layout.Chunked [| 4; 3 |]) [| 6; 7 |] in
  Writer.write path [ (ds, fill) ];
  let f = File.open_file path in
  Shape.iter ds.Dataset.shape (fun idx ->
      Alcotest.(check (float 1e-9)) "value" (fill idx) (File.read_element f "data" idx));
  File.close f

let test_roundtrip_all_dtypes () =
  List.iter
    (fun dtype ->
      let path = tmp ("dt_" ^ Dtype.to_string dtype ^ ".kh5") in
      let ds = mk_dense ~dtype [| 3; 4 |] in
      Writer.write path [ (ds, fill) ];
      let f = File.open_file path in
      Shape.iter ds.Dataset.shape (fun idx ->
          Alcotest.(check (float 1e-6)) (Dtype.to_string dtype) (fill idx)
            (File.read_element f "data" idx));
      File.close f)
    Dtype.all

let test_multiple_datasets () =
  let path = tmp "multi.kh5" in
  let a = mk_dense ~name:"a" [| 2; 2 |] in
  let b = mk_dense ~name:"b" ~dtype:Dtype.Int32 [| 5 |] in
  Writer.write path [ (a, fill); (b, fun idx -> float_of_int (idx.(0) * 2)) ];
  let f = File.open_file path in
  Alcotest.(check (list string)) "order preserved" [ "a"; "b" ]
    (List.map (fun d -> d.Dataset.name) (File.datasets f));
  Alcotest.(check (float 1e-9)) "b value" 6.0 (File.read_element f "b" [| 3 |]);
  File.close f

let test_duplicate_names_rejected () =
  let a = mk_dense ~name:"x" [| 2 |] in
  Alcotest.check_raises "duplicates" (Invalid_argument "Writer.write: duplicate dataset names")
    (fun () -> ignore (Writer.write_bytes [ (a, fill); (a, fill) ]))

let test_unknown_dataset () =
  let path = tmp "unknown.kh5" in
  Writer.write path [ (mk_dense [| 2; 2 |], fill) ];
  let f = File.open_file path in
  Alcotest.check_raises "Not_found" Not_found (fun () -> ignore (File.find f "nope"));
  File.close f

let test_corrupt_magic () =
  let path = tmp "corrupt.kh5" in
  let oc = open_out_bin path in
  output_string oc "NOTKH5xxxxxxxxxxxxx";
  close_out oc;
  Alcotest.check_raises "bad magic" (Binio.Corrupt "bad magic") (fun () ->
      ignore (File.open_file path))

let test_truncated_file () =
  let path = tmp "trunc.kh5" in
  let oc = open_out_bin path in
  output_string oc "KH5";
  close_out oc;
  Alcotest.check_raises "truncated" (Binio.Corrupt "truncated superblock") (fun () ->
      ignore (File.open_file path))

let test_read_slab_matches_elementwise () =
  let path = tmp "slab.kh5" in
  let ds = mk_dense [| 8; 8 |] in
  Writer.write path [ (ds, fill) ];
  let f = File.open_file path in
  let slab = Hyperslab.make ~start:[| 1; 2 |] ~stride:[| 3; 2 |] ~count:[| 2; 3 |] ~block:[| 2; 1 |] () in
  let seen = ref [] in
  File.read_slab f "data" slab (fun idx v ->
      Alcotest.(check (float 1e-9)) "slab value" (fill idx) v;
      seen := Array.copy idx :: !seen);
  Alcotest.(check int) "all selected" (Hyperslab.nelems slab) (List.length !seen);
  File.close f

let test_read_slab_clips () =
  let path = tmp "clip.kh5" in
  Writer.write path [ (mk_dense [| 4; 4 |], fill) ];
  let f = File.open_file path in
  let n = ref 0 in
  File.read_slab f "data" (Hyperslab.block_at [| 2; 2 |] [| 4; 4 |]) (fun _ _ -> incr n);
  Alcotest.(check int) "clipped" 4 !n;
  File.close f

let test_slab_read_batches () =
  (* a dense row read should issue one pread for the row, not one per
     element *)
  let path = tmp "batch.kh5" in
  Writer.write path [ (mk_dense [| 4; 16 |], fill) ];
  let tracer = Kondo_audit.Tracer.create () in
  let f = File.open_file ~tracer path in
  let before = Kondo_audit.Tracer.event_count tracer in
  File.read_slab f "data" (Hyperslab.block_at [| 1; 0 |] [| 1; 16 |]) (fun _ _ -> ());
  let reads = Kondo_audit.Tracer.event_count tracer - before in
  Alcotest.(check int) "single batched read" 1 reads;
  File.close f

let test_mean_slab () =
  let path = tmp "mean.kh5" in
  Writer.write path [ (mk_dense [| 2; 2 |], fun idx -> float_of_int (idx.(0) + idx.(1))) ];
  let f = File.open_file path in
  Alcotest.(check (float 1e-9)) "mean" 1.0
    (File.mean_slab f "data" (Hyperslab.block_at [| 0; 0 |] [| 2; 2 |]));
  File.close f

let debloated_pair ~keep_rows () =
  let src = tmp "deb_src.kh5" and dst = tmp "deb_dst.kh5" in
  let ds = mk_dense [| 8; 8 |] in
  Writer.write src [ (ds, fill) ];
  let f = File.open_file src in
  let esz = Dtype.size Dtype.Float64 in
  let keep _ =
    Interval_set.of_list
      (List.map (fun r -> Interval.make (r * 8 * esz) ((r + 1) * 8 * esz)) keep_rows)
  in
  Writer.write_debloated dst ~source:f ~keep;
  File.close f;
  (src, dst)

let test_debloated_reads_kept_data () =
  let _, dst = debloated_pair ~keep_rows:[ 2; 5 ] () in
  let d = File.open_file dst in
  List.iter
    (fun r ->
      for c = 0 to 7 do
        Alcotest.(check (float 1e-9)) "kept row" (fill [| r; c |]) (File.read_element d "data" [| r; c |])
      done)
    [ 2; 5 ];
  File.close d

let test_debloated_missing_raises () =
  let _, dst = debloated_pair ~keep_rows:[ 2 ] () in
  let d = File.open_file dst in
  (try
     ignore (File.read_element d "data" [| 0; 0 |]);
     Alcotest.fail "expected Data_missing"
   with File.Data_missing m ->
     Alcotest.(check string) "dataset" "data" m.File.dataset;
     Alcotest.(check (array int)) "index" [| 0; 0 |] m.File.index);
  File.close d

let test_debloated_smaller () =
  let src, dst = debloated_pair ~keep_rows:[ 1 ] () in
  let s = File.open_file src and d = File.open_file dst in
  Alcotest.(check bool) "smaller file" true (File.file_size d < File.file_size s);
  let ds = File.find d "data" in
  Alcotest.(check bool) "marked sparse" true (Dataset.is_sparse ds);
  Alcotest.(check int) "stored bytes = one row" (8 * 8) (Dataset.stored_bytes ds);
  File.close s;
  File.close d

let test_debloated_roundtrip_reopen () =
  (* the sparse run table survives a write/parse cycle *)
  let _, dst = debloated_pair ~keep_rows:[ 0; 7 ] () in
  let d = File.open_file dst in
  (match (File.find d "data").Dataset.storage with
  | Dataset.Sparse keep -> Alcotest.(check int) "two runs" 2 (Interval_set.cardinal keep)
  | Dataset.Dense -> Alcotest.fail "expected sparse");
  File.close d

let test_read_raw () =
  let path = tmp "raw.kh5" in
  Writer.write path [ (mk_dense [| 2; 2 |], fill) ];
  let f = File.open_file path in
  let b = File.read_raw f "data" (Interval.make 0 8) in
  Alcotest.(check (float 1e-9)) "decoded first element" (fill [| 0; 0 |])
    (Dtype.decode Dtype.Float64 b 0);
  File.close f

let test_align_keep_rounds_to_elements () =
  (* a keep range cutting an element in half must still allow reading it *)
  let src = tmp "align_src.kh5" and dst = tmp "align_dst.kh5" in
  Writer.write src [ (mk_dense [| 4 |], fill) ];
  let f = File.open_file src in
  (* bytes 4..12 straddle elements 0 and 1 (8-byte floats) *)
  Writer.write_debloated dst ~source:f ~keep:(fun _ -> Interval_set.of_list [ Interval.make 4 12 ]);
  File.close f;
  let d = File.open_file dst in
  Alcotest.(check (float 1e-9)) "element 0" (fill [| 0 |]) (File.read_element d "data" [| 0 |]);
  Alcotest.(check (float 1e-9)) "element 1" (fill [| 1 |]) (File.read_element d "data" [| 1 |]);
  File.close d

let test_write_bytes_equals_file () =
  let path = tmp "wb.kh5" in
  let ds = mk_dense [| 3; 3 |] in
  Writer.write path [ (ds, fill) ];
  let mem = Writer.write_bytes [ (ds, fill) ] in
  let ic = open_in_bin path in
  let disk = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "identical bytes" disk (Bytes.to_string mem)

let test_attributes_roundtrip () =
  let path = tmp "attrs.kh5" in
  let attrs =
    [ ("units", Dataset.Str "kelvin"); ("scale", Dataset.Num 0.25); ("note", Dataset.Str "") ]
  in
  let ds = Dataset.dense ~name:"data" ~dtype:Dtype.Float64 ~shape:(Shape.create [| 2; 2 |]) ~attrs () in
  Writer.write path [ (ds, fill) ];
  let f = File.open_file path in
  let got = File.find f "data" in
  Alcotest.(check int) "attr count" 3 (List.length got.Dataset.attrs);
  Alcotest.(check bool) "string attr" true (Dataset.attr got "units" = Some (Dataset.Str "kelvin"));
  Alcotest.(check bool) "numeric attr" true (Dataset.attr got "scale" = Some (Dataset.Num 0.25));
  Alcotest.(check bool) "missing attr" true (Dataset.attr got "nope" = None);
  File.close f

let test_crc_verifies_clean_file () =
  let path = tmp "crc_ok.kh5" in
  Writer.write path [ (mk_dense [| 6; 6 |], fill) ];
  let f = File.open_file path in
  Alcotest.(check bool) "verify" true (File.verify f "data");
  Alcotest.(check bool) "verify_all" true (File.verify_all f);
  File.close f

let test_crc_detects_corruption () =
  let path = tmp "crc_bad.kh5" in
  Writer.write path [ (mk_dense [| 6; 6 |], fill) ];
  (* flip one byte of the data section (the last byte of the file) *)
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let all = Bytes.create n in
  really_input ic all 0 n;
  close_in ic;
  Bytes.set all (n - 1) (Char.chr (Char.code (Bytes.get all (n - 1)) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc all;
  close_out oc;
  let f = File.open_file path in
  Alcotest.(check bool) "corruption detected" false (File.verify f "data");
  File.close f

let test_crc_on_debloated () =
  let _, dst = debloated_pair ~keep_rows:[ 1; 4 ] () in
  let f = File.open_file dst in
  Alcotest.(check bool) "sparse section verifies" true (File.verify_all f);
  File.close f

let arb_file_case =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 1 3) (int_range 1 8) >>= fun dims ->
      let dims = Array.of_list dims in
      oneofl [ None; Some (Array.map (fun d -> max 1 (d / 2)) dims) ] >|= fun chunk ->
      (dims, chunk))
  in
  make gen

let qcheck_roundtrip_random_shapes =
  QCheck.Test.make ~name:"KH5 roundtrip over random shapes and layouts" ~count:60 arb_file_case
    (fun (dims, chunk) ->
      let layout = match chunk with None -> None | Some c -> Some (Layout.Chunked c) in
      let ds = mk_dense ?layout dims in
      let mem = Writer.write_bytes [ (ds, fill) ] in
      let f = File.open_port (Kondo_audit.Io_port.of_bytes ~path:"mem" mem) in
      let ok = ref true in
      Shape.iter ds.Dataset.shape (fun idx ->
          if File.read_element f "data" idx <> fill idx then ok := false);
      !ok)

let suite =
  ( "h5",
    [ Alcotest.test_case "roundtrip contiguous" `Quick test_roundtrip_contiguous;
      Alcotest.test_case "roundtrip chunked" `Quick test_roundtrip_chunked;
      Alcotest.test_case "roundtrip all dtypes" `Quick test_roundtrip_all_dtypes;
      Alcotest.test_case "multiple datasets" `Quick test_multiple_datasets;
      Alcotest.test_case "duplicate names rejected" `Quick test_duplicate_names_rejected;
      Alcotest.test_case "unknown dataset" `Quick test_unknown_dataset;
      Alcotest.test_case "corrupt magic" `Quick test_corrupt_magic;
      Alcotest.test_case "truncated file" `Quick test_truncated_file;
      Alcotest.test_case "read_slab matches element reads" `Quick test_read_slab_matches_elementwise;
      Alcotest.test_case "read_slab clips" `Quick test_read_slab_clips;
      Alcotest.test_case "dense slab reads batch" `Quick test_slab_read_batches;
      Alcotest.test_case "mean_slab" `Quick test_mean_slab;
      Alcotest.test_case "debloated file serves kept data" `Quick test_debloated_reads_kept_data;
      Alcotest.test_case "debloated file raises Data_missing" `Quick test_debloated_missing_raises;
      Alcotest.test_case "debloated file is smaller" `Quick test_debloated_smaller;
      Alcotest.test_case "debloated run table reopens" `Quick test_debloated_roundtrip_reopen;
      Alcotest.test_case "read_raw" `Quick test_read_raw;
      Alcotest.test_case "keep ranges align to elements" `Quick test_align_keep_rounds_to_elements;
      Alcotest.test_case "write_bytes equals file" `Quick test_write_bytes_equals_file;
      Alcotest.test_case "attributes roundtrip" `Quick test_attributes_roundtrip;
      Alcotest.test_case "crc verifies clean file" `Quick test_crc_verifies_clean_file;
      Alcotest.test_case "crc detects corruption" `Quick test_crc_detects_corruption;
      Alcotest.test_case "crc on debloated file" `Quick test_crc_on_debloated;
      QCheck_alcotest.to_alcotest qcheck_roundtrip_random_shapes ] )
