(* Integration tests: the full Alice-and-Bob container story of §I-II —
   spec, image, Kondo debloating, transfer accounting, user-side runtime
   with the data-missing exception and remote fallback, plus lineage from
   audited execution. *)

open Kondo_dataarray
open Kondo_interval
open Kondo_audit
open Kondo_container
open Kondo_workload
open Kondo_core

let read_file path =
  let ic = open_in_bin path in
  let b = Bytes.create (in_channel_length ic) in
  really_input ic b 0 (Bytes.length b);
  close_in ic;
  b

let mkdtemp prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let config = { Config.default with Config.max_iter = 500; stop_iter = 200; seed = 21 }

(* Alice builds a container for the RDC program. *)
let alice_builds () =
  let p = Stencils.rdc2d ~n:32 () in
  let src = Filename.temp_file "kondo_alice" ".kh5" in
  Datafile.write_for ~path:src p;
  let spec =
    { Spec.empty with
      Spec.base = "ubuntu:20.04";
      env_deps = [ "apt-get install -y libhdf5-dev" ];
      data_deps = [ { Spec.src; dst = "/app/data.kh5" } ];
      param_space = p.Program.param_space;
      entrypoint = Some "/app/rdc" }
  in
  let image = Image.build spec ~fetch:(fun path -> read_file path) in
  (p, src, image)

let test_full_story () =
  let p, src, image = alice_builds () in
  (* Kondo debloats the data layer *)
  let debloated, report = Pipeline.debloat_image ~config p ~image ~dst:"/app/data.kh5" in
  Alcotest.(check bool) "data shrank" true (Image.data_size debloated < Image.data_size image);
  (* Bob pulls the debloated container: transfer accounting via Merkle *)
  let cold = Image.transfer_size debloated ~have:Merkle.HashSet.empty in
  Alcotest.(check bool) "cold transfer includes env layers" true (cold > Image.env_size debloated);
  let warm = Image.transfer_size debloated ~have:(Image.chunk_hashes debloated) in
  Alcotest.(check bool) "warm data transfer deduplicates" true (warm <= Image.env_size debloated);
  (* Bob runs the container with parameters Kondo observed: all reads work *)
  let dir = mkdtemp "kondo_bob" in
  let rt = Runtime.boot ~image:debloated ~dir () in
  let observed =
    List.filter_map
      (fun (o : Schedule.outcome) -> if o.Schedule.useful then Some o.Schedule.params else None)
      report.Pipeline.fuzz.Schedule.trace
  in
  Alcotest.(check bool) "some useful params observed" true (observed <> []);
  List.iteri
    (fun i v ->
      if i < 20 then
        List.iter
          (fun slab ->
            Hyperslab.iter ~clip:p.Program.shape slab (fun idx ->
                let value = Runtime.read_element rt ~dst:"/app/data.kh5" ~dataset:p.Program.dataset idx in
                Alcotest.(check (float 1e-9)) "original data" (Datafile.fill idx) value))
          (p.Program.plan v))
    observed;
  Alcotest.(check int) "no misses on supported params" 0 (Runtime.stats rt).Runtime.misses;
  Runtime.shutdown rt;
  Sys.remove src

let test_unsupported_param_raises_then_remote () =
  let p, src, image = alice_builds () in
  (* debloat with a crippled schedule so misses are likely *)
  let weak = { config with Config.max_iter = 6; stop_iter = 6; n_init = 2 } in
  let debloated, _ = Pipeline.debloat_image ~config:weak p ~image ~dst:"/app/data.kh5" in
  let dir = mkdtemp "kondo_bob2" in
  (* find an index the debloated file lacks *)
  let truth = Program.ground_truth p in
  let local = Runtime.boot ~image:debloated ~dir () in
  let missing = ref None in
  (try
     Index_set.iter truth (fun idx ->
         try
           ignore (Kondo_h5.File.read_element (Runtime.file local ~dst:"/app/data.kh5") p.Program.dataset idx)
         with Kondo_h5.File.Data_missing _ ->
           missing := Some (Array.copy idx);
           raise Exit)
   with Exit -> ());
  Runtime.shutdown local;
  match !missing with
  | None -> () (* weak schedule still covered everything: nothing to check *)
  | Some idx ->
    let rt = Runtime.boot ~image:debloated ~dir () in
    (try
       ignore (Runtime.read_element rt ~dst:"/app/data.kh5" ~dataset:p.Program.dataset idx);
       Alcotest.fail "expected Data_missing"
     with Kondo_h5.File.Data_missing _ -> ());
    Runtime.shutdown rt;
    (* §VI: the runtime can pull missing offsets from a remote server *)
    let rt = Runtime.boot ~remote:true ~image:debloated ~dir () in
    let v = Runtime.read_element rt ~dst:"/app/data.kh5" ~dataset:p.Program.dataset idx in
    Alcotest.(check (float 1e-9)) "remote fetch returns original" (Datafile.fill idx) v;
    Runtime.shutdown rt;
    Sys.remove src

let test_lineage_of_audited_container_run () =
  let p, src, image = alice_builds () in
  let dir = mkdtemp "kondo_lin" in
  let tracer = Tracer.create () in
  let rt = Runtime.boot ~tracer ~image ~dir () in
  ignore
    (Program.run_io p (Runtime.file rt ~dst:"/app/data.kh5") [| 6.0; 6.0 |]);
  Runtime.shutdown rt;
  let g = Kondo_provenance.Lineage.of_tracer tracer in
  (* coarse lineage sees the materialized data file *)
  let files = Kondo_provenance.Lineage.files_used_by g ~pid:1 in
  Alcotest.(check int) "one file used" 1 (List.length files);
  (* fine lineage has non-empty byte ranges *)
  let ranges = Kondo_provenance.Lineage.ranges_used_any g ~path:(List.hd files) in
  Alcotest.(check bool) "offset-level ranges" true (Interval_set.total_length ranges > 0);
  Sys.remove src

let test_debloat_keeps_recall_on_fresh_params () =
  (* missed-access rate on the whole parameter space stays small
     (§V-D1: 0.0-0.8% in the paper) *)
  let p = Stencils.ldc2d ~n:32 () in
  let r = Pipeline.evaluate ~config p in
  let rate = Metrics.missed_valuation_rate p ~approx:r.Pipeline.approx in
  Alcotest.(check bool) (Printf.sprintf "missed rate %.4f < 0.05" rate) true (rate < 0.05)

let test_audit_overhead_positive_but_bounded () =
  (* reading through the tracer costs something but not orders of
     magnitude (§V-D6 reports ~31%) *)
  let p = Stencils.prl2d ~n:64 () in
  let path = Filename.temp_file "kondo_ovh" ".kh5" in
  Datafile.write_for ~path p;
  let params = [| 12.0; 14.0 |] in
  let time_run tracer =
    let f = Kondo_h5.File.open_file ?tracer path in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 20 do
      ignore (Program.run_io p f params)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Kondo_h5.File.close f;
    dt
  in
  let plain = time_run None in
  let audited = time_run (Some (Tracer.create ())) in
  Alcotest.(check bool) "audit not free but < 20x" true (audited > 0.0 && audited < plain *. 20.0)

let suite =
  ( "integration",
    [ Alcotest.test_case "full Alice-and-Bob story" `Quick test_full_story;
      Alcotest.test_case "unsupported param: exception then remote fetch" `Quick
        test_unsupported_param_raises_then_remote;
      Alcotest.test_case "lineage of audited container run" `Quick
        test_lineage_of_audited_container_run;
      Alcotest.test_case "missed-access rate small (§V-D1)" `Quick
        test_debloat_keeps_recall_on_fresh_params;
      Alcotest.test_case "audit overhead bounded (§V-D6)" `Quick
        test_audit_overhead_positive_but_bounded ] )
