(* Unit and property tests for intervals, coalescing sets, and the
   interval B-tree. *)

open Kondo_interval

let iv lo hi = Interval.make lo hi

(* ---------------- Interval ---------------- *)

let test_interval_basics () =
  let a = iv 0 10 in
  Alcotest.(check int) "length" 10 (Interval.length a);
  Alcotest.(check bool) "non-empty" false (Interval.is_empty a);
  Alcotest.(check bool) "empty" true (Interval.is_empty (iv 5 5));
  Alcotest.(check bool) "point in" true (Interval.contains_point a 0);
  Alcotest.(check bool) "hi exclusive" false (Interval.contains_point a 10)

let test_interval_of_event () =
  let a = Interval.of_event ~offset:70 ~size:30 in
  Alcotest.(check int) "lo" 70 a.Interval.lo;
  Alcotest.(check int) "hi" 100 a.Interval.hi

let test_interval_overlap_touch () =
  Alcotest.(check bool) "overlap" true (Interval.overlaps (iv 0 10) (iv 5 15));
  Alcotest.(check bool) "adjacent not overlapping" false (Interval.overlaps (iv 0 10) (iv 10 20));
  Alcotest.(check bool) "adjacent touches" true (Interval.touches (iv 0 10) (iv 10 20));
  Alcotest.(check bool) "gap" false (Interval.touches (iv 0 10) (iv 11 20))

let test_interval_union_inter () =
  Alcotest.(check bool) "union" true (Interval.union (iv 0 10) (iv 5 15) = iv 0 15);
  Alcotest.(check bool) "inter" true (Interval.inter (iv 0 10) (iv 5 15) = Some (iv 5 10));
  Alcotest.(check bool) "disjoint inter" true (Interval.inter (iv 0 5) (iv 7 9) = None)

let test_interval_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (iv 5 3))

(* ---------------- Interval_set ---------------- *)

let test_set_paper_example () =
  (* §IV-C: events (0,110) (70,30) (130,20) (90,30) -> (0,120) (130,150) *)
  let s =
    List.fold_left
      (fun s (off, sz) -> Interval_set.add s (Interval.of_event ~offset:off ~size:sz))
      Interval_set.empty
      [ (0, 110); (70, 30); (130, 20); (90, 30) ]
  in
  Alcotest.(check (list (pair int int))) "merged ranges"
    [ (0, 120); (130, 150) ]
    (List.map (fun m -> (m.Interval.lo, m.Interval.hi)) (Interval_set.to_list s))

let test_set_adjacent_coalesce () =
  let s = Interval_set.of_list [ iv 0 5; iv 5 10 ] in
  Alcotest.(check int) "one member" 1 (Interval_set.cardinal s);
  Alcotest.(check int) "total" 10 (Interval_set.total_length s)

let test_set_bridge () =
  let s = Interval_set.of_list [ iv 0 5; iv 10 15; iv 4 11 ] in
  Alcotest.(check int) "bridged" 1 (Interval_set.cardinal s);
  Alcotest.(check bool) "covers" true (Interval_set.covers s (iv 0 15))

let test_set_covers () =
  let s = Interval_set.of_list [ iv 0 10; iv 20 30 ] in
  Alcotest.(check bool) "inside member" true (Interval_set.covers s (iv 2 8));
  Alcotest.(check bool) "straddles gap" false (Interval_set.covers s (iv 5 25));
  Alcotest.(check bool) "empty probe" true (Interval_set.covers s (iv 15 15))

let test_set_complement () =
  let s = Interval_set.of_list [ iv 2 4; iv 6 8 ] in
  let gaps = Interval_set.complement s ~within:(iv 0 10) in
  Alcotest.(check (list (pair int int))) "gaps"
    [ (0, 2); (4, 6); (8, 10) ]
    (List.map (fun m -> (m.Interval.lo, m.Interval.hi)) (Interval_set.to_list gaps))

let test_set_complement_full_cover () =
  let s = Interval_set.of_list [ iv 0 10 ] in
  Alcotest.(check bool) "no gaps" true
    (Interval_set.is_empty (Interval_set.complement s ~within:(iv 2 8)))

let test_set_overlapping () =
  let s = Interval_set.of_list [ iv 0 5; iv 10 15; iv 20 25 ] in
  Alcotest.(check int) "two overlap" 2 (List.length (Interval_set.overlapping s (iv 4 12)))

let test_set_of_sorted () =
  let l = [ iv 0 3; iv 3 5; iv 8 10 ] in
  Alcotest.(check bool) "of_sorted = of_list" true
    (Interval_set.equal (Interval_set.of_sorted l) (Interval_set.of_list l));
  Alcotest.check_raises "unsorted rejected" (Invalid_argument "Interval_set.of_sorted: unsorted")
    (fun () -> ignore (Interval_set.of_sorted [ iv 5 6; iv 0 1 ]))

let arb_intervals =
  QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_range 0 100) (int_range 0 20)))

let model_membership l x = List.exists (fun (lo, sz) -> x >= lo && x < lo + sz) l

let qcheck_set_matches_model =
  QCheck.Test.make ~name:"interval set membership matches a point model" ~count:300 arb_intervals
    (fun l ->
      let s = Interval_set.of_list (List.map (fun (lo, sz) -> Interval.of_event ~offset:lo ~size:sz) l) in
      let ok = ref true in
      for x = 0 to 130 do
        if Interval_set.mem s x <> model_membership l x then ok := false
      done;
      !ok)

let qcheck_set_invariant =
  QCheck.Test.make ~name:"interval set stays sorted, disjoint, non-touching" ~count:300
    arb_intervals (fun l ->
      let s = Interval_set.of_list (List.map (fun (lo, sz) -> Interval.of_event ~offset:lo ~size:sz) l) in
      let rec check = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) -> a.Interval.hi < b.Interval.lo && check rest
      in
      check (Interval_set.to_list s))

let qcheck_set_total_length =
  QCheck.Test.make ~name:"total_length counts covered points" ~count:300 arb_intervals (fun l ->
      let s = Interval_set.of_list (List.map (fun (lo, sz) -> Interval.of_event ~offset:lo ~size:sz) l) in
      let n = ref 0 in
      for x = 0 to 200 do
        if model_membership l x then incr n
      done;
      Interval_set.total_length s = !n)

let qcheck_union_commutes =
  QCheck.Test.make ~name:"set union is commutative" ~count:200
    QCheck.(pair arb_intervals arb_intervals)
    (fun (la, lb) ->
      let mk l = Interval_set.of_list (List.map (fun (lo, sz) -> Interval.of_event ~offset:lo ~size:sz) l) in
      let a = mk la and b = mk lb in
      Interval_set.equal (Interval_set.union a b) (Interval_set.union b a))

(* ---------------- Interval_btree ---------------- *)

let test_btree_empty () =
  let t : unit Interval_btree.t = Interval_btree.create () in
  Alcotest.(check int) "cardinal" 0 (Interval_btree.cardinal t);
  Alcotest.(check int) "height" 0 (Interval_btree.height t);
  Alcotest.(check (list reject)) "no overlaps" [] (Interval_btree.overlapping t (iv 0 100))

let test_btree_insert_query () =
  let t = Interval_btree.create ~min_degree:2 () in
  List.iteri (fun i (lo, hi) -> Interval_btree.insert t (iv lo hi) i)
    [ (0, 10); (20, 30); (5, 15); (40, 50) ];
  Alcotest.(check int) "cardinal" 4 (Interval_btree.cardinal t);
  let hits = Interval_btree.overlapping t (iv 8 22) in
  Alcotest.(check int) "3 overlaps" 3 (List.length hits);
  Interval_btree.check_invariants t

let test_btree_stab () =
  let t = Interval_btree.create ~min_degree:2 () in
  List.iter (fun (lo, hi) -> Interval_btree.insert t (iv lo hi) ()) [ (0, 10); (5, 15); (20, 30) ];
  Alcotest.(check int) "stab 7" 2 (List.length (Interval_btree.stab t 7));
  Alcotest.(check int) "stab 16" 0 (List.length (Interval_btree.stab t 16));
  Alcotest.(check int) "stab at lo" 1 (List.length (Interval_btree.stab t 20))

let test_btree_duplicates () =
  let t = Interval_btree.create ~min_degree:2 () in
  for i = 1 to 5 do
    Interval_btree.insert t (iv 3 9) i
  done;
  Alcotest.(check int) "kept all" 5 (Interval_btree.cardinal t);
  Alcotest.(check int) "all stabbed" 5 (List.length (Interval_btree.stab t 4))

let test_btree_iter_sorted () =
  let t = Interval_btree.create ~min_degree:2 () in
  List.iter (fun lo -> Interval_btree.insert t (iv lo (lo + 5)) ()) [ 30; 10; 50; 0; 20; 40 ];
  let keys = ref [] in
  Interval_btree.iter t (fun k () -> keys := k.Interval.lo :: !keys);
  Alcotest.(check (list int)) "in key order" [ 0; 10; 20; 30; 40; 50 ] (List.rev !keys)

let test_btree_grows_balanced () =
  let t = Interval_btree.create ~min_degree:2 () in
  for i = 0 to 999 do
    Interval_btree.insert t (iv i (i + 3)) i
  done;
  Interval_btree.check_invariants t;
  Alcotest.(check bool) "logarithmic height" true (Interval_btree.height t <= 10);
  Alcotest.(check int) "cardinal" 1000 (Interval_btree.cardinal t)

let test_btree_coalesced_matches_paper () =
  let t = Interval_btree.create () in
  List.iter
    (fun (off, sz) -> Interval_btree.insert t (Interval.of_event ~offset:off ~size:sz) ())
    [ (0, 110); (70, 30); (130, 20); (90, 30) ];
  let s = Interval_btree.coalesced t in
  Alcotest.(check (list (pair int int))) "(0,120) (130,150)"
    [ (0, 120); (130, 150) ]
    (List.map (fun m -> (m.Interval.lo, m.Interval.hi)) (Interval_set.to_list s))

let qcheck_btree_overlap_matches_naive =
  QCheck.Test.make ~name:"btree overlap query matches linear scan" ~count:200
    QCheck.(pair arb_intervals (pair (int_range 0 110) (int_range 1 30)))
    (fun (l, (qlo, qsz)) ->
      let t = Interval_btree.create ~min_degree:2 () in
      List.iteri (fun i (lo, sz) -> Interval_btree.insert t (Interval.of_event ~offset:lo ~size:sz) i) l;
      Interval_btree.check_invariants t;
      let probe = Interval.of_event ~offset:qlo ~size:qsz in
      let expected =
        List.filteri (fun _ _ -> true) l
        |> List.mapi (fun i (lo, sz) -> (Interval.of_event ~offset:lo ~size:sz, i))
        |> List.filter (fun (ivl, _) -> Interval.overlaps ivl probe)
        |> List.length
      in
      List.length (Interval_btree.overlapping t probe) = expected)

let qcheck_btree_random_order_invariants =
  QCheck.Test.make ~name:"btree invariants hold under random insertion orders" ~count:100
    QCheck.(pair (int_range 2 5) (list_of_size (Gen.int_range 0 200) (int_range 0 1000)))
    (fun (degree, keys) ->
      let t = Interval_btree.create ~min_degree:degree () in
      List.iter (fun lo -> Interval_btree.insert t (iv lo (lo + 7)) lo) keys;
      Interval_btree.check_invariants t;
      Interval_btree.cardinal t = List.length keys)

let suite =
  ( "interval",
    [ Alcotest.test_case "interval basics" `Quick test_interval_basics;
      Alcotest.test_case "interval of_event" `Quick test_interval_of_event;
      Alcotest.test_case "interval overlap/touch" `Quick test_interval_overlap_touch;
      Alcotest.test_case "interval union/inter" `Quick test_interval_union_inter;
      Alcotest.test_case "interval invalid" `Quick test_interval_invalid;
      Alcotest.test_case "set: paper IV-C example" `Quick test_set_paper_example;
      Alcotest.test_case "set: adjacent coalesce" `Quick test_set_adjacent_coalesce;
      Alcotest.test_case "set: bridging add" `Quick test_set_bridge;
      Alcotest.test_case "set: covers" `Quick test_set_covers;
      Alcotest.test_case "set: complement" `Quick test_set_complement;
      Alcotest.test_case "set: complement full cover" `Quick test_set_complement_full_cover;
      Alcotest.test_case "set: overlapping" `Quick test_set_overlapping;
      Alcotest.test_case "set: of_sorted" `Quick test_set_of_sorted;
      QCheck_alcotest.to_alcotest qcheck_set_matches_model;
      QCheck_alcotest.to_alcotest qcheck_set_invariant;
      QCheck_alcotest.to_alcotest qcheck_set_total_length;
      QCheck_alcotest.to_alcotest qcheck_union_commutes;
      Alcotest.test_case "btree: empty" `Quick test_btree_empty;
      Alcotest.test_case "btree: insert and query" `Quick test_btree_insert_query;
      Alcotest.test_case "btree: stab" `Quick test_btree_stab;
      Alcotest.test_case "btree: duplicates kept" `Quick test_btree_duplicates;
      Alcotest.test_case "btree: iter sorted" `Quick test_btree_iter_sorted;
      Alcotest.test_case "btree: grows balanced" `Quick test_btree_grows_balanced;
      Alcotest.test_case "btree: coalesced paper example" `Quick test_btree_coalesced_matches_paper;
      QCheck_alcotest.to_alcotest qcheck_btree_overlap_matches_naive;
      QCheck_alcotest.to_alcotest qcheck_btree_random_order_invariants ] )
