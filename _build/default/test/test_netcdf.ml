(* Tests for the NetCDF classic (CDF-1) reader/writer. *)

open Kondo_dataarray
open Kondo_h5

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("kondo_nc_" ^ name)

let fill idx = float_of_int ((idx.(0) * 100) + if Array.length idx > 1 then idx.(1) else 0)

let write_simple ?(ty = Netcdf.Nc_double) path =
  Netcdf.write path
    ~dims:[ { Netcdf.dim_name = "x"; size = 5 }; { Netcdf.dim_name = "y"; size = 7 } ]
    ~vars:[ ("temperature", [| 0; 1 |], ty, fill) ]

let test_roundtrip_double () =
  let path = tmp "rt.nc" in
  write_simple path;
  let f = Netcdf.open_file path in
  let v = Netcdf.find_var f "temperature" in
  let shape = Netcdf.shape_of_var f v in
  Alcotest.(check string) "shape" "5x7" (Shape.to_string shape);
  Shape.iter shape (fun idx ->
      Alcotest.(check (float 1e-9)) "value" (fill idx) (Netcdf.read_element f "temperature" idx));
  Netcdf.close f

let test_roundtrip_all_types () =
  List.iter
    (fun ty ->
      let path = tmp "types.nc" in
      write_simple ~ty path;
      let f = Netcdf.open_file path in
      Alcotest.(check (float 1e-4)) "value survives type" (fill [| 3; 4 |])
        (Netcdf.read_element f "temperature" [| 3; 4 |]);
      Netcdf.close f)
    [ Netcdf.Nc_int; Netcdf.Nc_float; Netcdf.Nc_double ]

let test_multiple_vars_share_dims () =
  let path = tmp "multi.nc" in
  Netcdf.write path
    ~dims:[ { Netcdf.dim_name = "t"; size = 4 } ]
    ~vars:
      [ ("a", [| 0 |], Netcdf.Nc_double, fun idx -> float_of_int idx.(0));
        ("b", [| 0 |], Netcdf.Nc_int, fun idx -> float_of_int (idx.(0) * 10)) ];
  let f = Netcdf.open_file path in
  Alcotest.(check int) "two vars" 2 (List.length (Netcdf.vars f));
  Alcotest.(check (float 1e-9)) "a" 2.0 (Netcdf.read_element f "a" [| 2 |]);
  Alcotest.(check (float 1e-9)) "b" 30.0 (Netcdf.read_element f "b" [| 3 |]);
  Netcdf.close f

let test_big_endian_layout () =
  (* spot-check the on-disk encoding: magic, numrecs, and that an
     Nc_int 1 encodes big-endian *)
  let path = tmp "be.nc" in
  Netcdf.write path
    ~dims:[ { Netcdf.dim_name = "x"; size = 1 } ]
    ~vars:[ ("v", [| 0 |], Netcdf.Nc_int, fun _ -> 1.0) ];
  let ic = open_in_bin path in
  let all = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "magic" "CDF\x01" (String.sub all 0 4);
  (* last 4 bytes are the padded int data: 00 00 00 01 *)
  Alcotest.(check string) "big-endian int" "\x00\x00\x00\x01"
    (String.sub all (String.length all - 4) 4)

let test_read_slab_clips () =
  let path = tmp "slab.nc" in
  write_simple path;
  let f = Netcdf.open_file path in
  let n = ref 0 in
  Netcdf.read_slab f "temperature" (Hyperslab.block_at [| 3; 5 |] [| 4; 4 |]) (fun idx v ->
      Alcotest.(check (float 1e-9)) "slab value" (fill idx) v;
      incr n);
  Alcotest.(check int) "clipped to 2x2" 4 !n;
  Netcdf.close f

let test_audited_reads () =
  let path = tmp "audit.nc" in
  write_simple path;
  let tracer = Kondo_audit.Tracer.create () in
  let f = Netcdf.open_file ~tracer ~pid:3 path in
  ignore (Netcdf.read_element f "temperature" [| 1; 1 |]);
  Netcdf.close f;
  Alcotest.(check bool) "events recorded" true (Kondo_audit.Tracer.event_count tracer > 0);
  Alcotest.(check bool) "offsets indexed" true
    (not (Kondo_interval.Interval_set.is_empty (Kondo_audit.Tracer.offsets tracer ~pid:3 ~path)))

let test_corrupt_magic () =
  let path = tmp "corrupt.nc" in
  let oc = open_out_bin path in
  output_string oc "HDF5whatever else";
  close_out oc;
  Alcotest.check_raises "bad magic" (Binio.Corrupt "netcdf: bad magic") (fun () ->
      ignore (Netcdf.open_file path))

let test_unknown_var () =
  let path = tmp "unknown.nc" in
  write_simple path;
  let f = Netcdf.open_file path in
  Alcotest.check_raises "Not_found" Not_found (fun () -> ignore (Netcdf.find_var f "nope"));
  Netcdf.close f

let test_to_kh5 () =
  let path = tmp "conv.nc" in
  let out = tmp "conv.kh5" in
  write_simple path;
  let f = Netcdf.open_file path in
  Netcdf.to_kh5 f out;
  Netcdf.close f;
  let k = File.open_file out in
  let ds = File.find k "temperature" in
  Alcotest.(check string) "shape preserved" "5x7" (Shape.to_string ds.Dataset.shape);
  Shape.iter ds.Dataset.shape (fun idx ->
      Alcotest.(check (float 1e-9)) "converted value" (fill idx)
        (File.read_element k "temperature" idx));
  File.close k

let test_kh5_pipeline_on_netcdf_source () =
  (* the full debloating path for a NetCDF-backed application: convert,
     then debloat the KH5 conversion *)
  let open Kondo_workload in
  let open Kondo_core in
  let p = Stencils.ldc2d ~n:16 () in
  let nc = tmp "app.nc" in
  let kh5 = tmp "app.kh5" in
  let deb = tmp "app_debloated.kh5" in
  let dims = Shape.dims p.Program.shape in
  Netcdf.write nc
    ~dims:
      [ { Netcdf.dim_name = "x"; size = dims.(0) }; { Netcdf.dim_name = "y"; size = dims.(1) } ]
    ~vars:[ (p.Program.dataset, [| 0; 1 |], Netcdf.Nc_double, Datafile.fill) ];
  let f = Netcdf.open_file nc in
  Netcdf.to_kh5 f kh5;
  Netcdf.close f;
  let p64 = { p with Program.dtype = Dtype.Float64 } in
  let config = { Config.default with Config.max_iter = 300; stop_iter = 300 } in
  let report = Pipeline.debloat_file ~config p64 ~src:kh5 ~dst:deb in
  let d = File.open_file deb in
  let checked = ref 0 in
  Kondo_dataarray.Index_set.iter report.Pipeline.approx (fun idx ->
      if !checked < 50 then begin
        incr checked;
        Alcotest.(check (float 1e-9)) "netcdf value preserved through debloat"
          (Datafile.fill idx)
          (File.read_element d p.Program.dataset idx)
      end);
  File.close d

let suite =
  ( "netcdf",
    [ Alcotest.test_case "roundtrip double" `Quick test_roundtrip_double;
      Alcotest.test_case "roundtrip all types" `Quick test_roundtrip_all_types;
      Alcotest.test_case "multiple vars share dims" `Quick test_multiple_vars_share_dims;
      Alcotest.test_case "big-endian on-disk layout" `Quick test_big_endian_layout;
      Alcotest.test_case "read_slab clips" `Quick test_read_slab_clips;
      Alcotest.test_case "audited reads" `Quick test_audited_reads;
      Alcotest.test_case "corrupt magic" `Quick test_corrupt_magic;
      Alcotest.test_case "unknown var" `Quick test_unknown_var;
      Alcotest.test_case "conversion to KH5" `Quick test_to_kh5;
      Alcotest.test_case "debloat pipeline on NetCDF source" `Quick
        test_kh5_pipeline_on_netcdf_source ] )
