(* Unit and property tests for the deterministic PRNG. *)

open Kondo_prng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 5)

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues the stream" xa xb;
  ignore (Rng.bits64 a);
  (* advancing a does not affect b *)
  let xa2 = Rng.bits64 a and xb2 = Rng.bits64 b in
  Alcotest.(check bool) "streams now diverge in position" true (xa2 <> xb2 || xa2 = xb2);
  ignore (xa2, xb2)

let test_split_diverges () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 100 do
    if Rng.bits64 a = Rng.bits64 b then incr matches
  done;
  Alcotest.(check bool) "split streams differ" true (!matches < 5)

let test_int_in_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_in_inclusive () =
  let rng = Rng.create 4 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3);
    if v = -3 then seen_lo := true;
    if v = 3 then seen_hi := true
  done;
  Alcotest.(check bool) "bounds reachable" true (!seen_lo && !seen_hi)

let test_int_covers_all () =
  let rng = Rng.create 5 in
  let counts = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c -> Alcotest.(check bool) (Printf.sprintf "bucket %d populated" i) true (c > 500))
    counts

let test_float_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_float_in () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.float_in rng (-1.5) 4.25 in
    Alcotest.(check bool) "in range" true (v >= -1.5 && v < 4.25)
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 10 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli rng 1.0);
    Alcotest.(check bool) "p=0 always false" false (Rng.bernoulli rng 0.0)
  done

let test_bernoulli_rate () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.03)

let test_gaussian_moments () =
  let rng = Rng.create 12 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_shuffle_is_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_pick_member () =
  let rng = Rng.create 14 in
  let a = [| 2; 4; 6; 8 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element of array" true (Array.exists (( = ) (Rng.pick rng a)) a)
  done

let qcheck_int_bound =
  QCheck.Test.make ~name:"Rng.int respects arbitrary bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_float_in =
  QCheck.Test.make ~name:"Rng.float_in respects bounds" ~count:500
    QCheck.(triple small_int (float_range (-1000.0) 1000.0) (float_range 0.0 500.0))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let v = Rng.float_in rng lo (lo +. span) in
      v >= lo && (span = 0.0 || v < lo +. span))

let suite =
  ( "prng",
    [ Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy continues stream" `Quick test_copy_independent;
      Alcotest.test_case "split diverges" `Quick test_split_diverges;
      Alcotest.test_case "int bounds" `Quick test_int_in_bounds;
      Alcotest.test_case "int_in inclusive bounds" `Quick test_int_in_inclusive;
      Alcotest.test_case "int covers all buckets" `Quick test_int_covers_all;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      Alcotest.test_case "float_in bounds" `Quick test_float_in;
      Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
      Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
      Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
      Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
      Alcotest.test_case "pick returns member" `Quick test_pick_member;
      QCheck_alcotest.to_alcotest qcheck_int_bound;
      QCheck_alcotest.to_alcotest qcheck_float_in ] )
