(* Tests for the lineage graph. *)

open Kondo_interval
open Kondo_audit
open Kondo_provenance

let iv lo hi = Interval.make lo hi
let set l = Interval_set.of_list (List.map (fun (a, b) -> iv a b) l)

let test_coarse_lineage () =
  let g =
    Lineage.empty
    |> (fun g -> Lineage.add_process g { Lineage.pid = 1; name = "CS" })
    |> (fun g -> Lineage.add_edge g (Lineage.Used { pid = 1; path = "/d1"; ranges = set [ (0, 10) ] }))
    |> fun g -> Lineage.add_edge g (Lineage.Used { pid = 1; path = "/d2"; ranges = set [ (5, 9) ] })
  in
  Alcotest.(check (list string)) "files used" [ "/d1"; "/d2" ] (Lineage.files_used_by g ~pid:1)

let test_fine_lineage_merges () =
  let g =
    Lineage.empty
    |> (fun g -> Lineage.add_edge g (Lineage.Used { pid = 1; path = "/d"; ranges = set [ (0, 10) ] }))
    |> fun g -> Lineage.add_edge g (Lineage.Used { pid = 1; path = "/d"; ranges = set [ (8, 20) ] })
  in
  Alcotest.(check int) "ranges coalesced" 20
    (Interval_set.total_length (Lineage.ranges_used g ~pid:1 ~path:"/d"))

let test_unused_artifacts () =
  (* the Fig. 2 scenario: D2 is declared but never accessed *)
  let g =
    Lineage.empty
    |> (fun g -> Lineage.add_artifact g "/stencil/mnist.h5")
    |> (fun g -> Lineage.add_artifact g "/stencil/fuji.h5")
    |> fun g ->
    Lineage.add_edge g (Lineage.Used { pid = 1; path = "/stencil/mnist.h5"; ranges = set [ (0, 4) ] })
  in
  Alcotest.(check (list string)) "never-touched data dep" [ "/stencil/fuji.h5" ]
    (Lineage.unused_artifacts g)

let test_of_tracer () =
  let t = Tracer.create () in
  ignore (Tracer.record t ~pid:1 ~path:"/d" ~op:Event.Open ~offset:0 ~size:0);
  ignore (Tracer.record t ~pid:1 ~path:"/d" ~op:Event.Read ~offset:0 ~size:16);
  ignore (Tracer.record t ~pid:2 ~path:"/d" ~op:Event.Write ~offset:32 ~size:8);
  let g = Lineage.of_tracer ~names:(fun pid -> Printf.sprintf "proc%d" pid) t in
  Alcotest.(check int) "two processes" 2 (List.length (Lineage.processes g));
  Alcotest.(check int) "read range" 16
    (Interval_set.total_length (Lineage.ranges_used g ~pid:1 ~path:"/d"));
  Alcotest.(check bool) "writer did not 'use'" true
    (Interval_set.is_empty (Lineage.ranges_used g ~pid:2 ~path:"/d"))

let test_ranges_used_any () =
  let g =
    Lineage.empty
    |> (fun g -> Lineage.add_edge g (Lineage.Used { pid = 1; path = "/d"; ranges = set [ (0, 8) ] }))
    |> fun g -> Lineage.add_edge g (Lineage.Used { pid = 2; path = "/d"; ranges = set [ (8, 12) ] })
  in
  Alcotest.(check int) "merged across pids" 12
    (Interval_set.total_length (Lineage.ranges_used_any g ~path:"/d"))

let test_descendants () =
  let g =
    Lineage.empty
    |> (fun g -> Lineage.add_edge g (Lineage.Triggered { parent = 1; child = 2 }))
    |> (fun g -> Lineage.add_edge g (Lineage.Triggered { parent = 2; child = 3 }))
    |> fun g -> Lineage.add_edge g (Lineage.Triggered { parent = 1; child = 4 })
  in
  let d = List.sort compare (Lineage.descendants g ~pid:1) in
  Alcotest.(check (list int)) "transitive" [ 2; 3; 4 ] d;
  Alcotest.(check (list int)) "leaf" [] (Lineage.descendants g ~pid:3)

let test_to_dot () =
  let g =
    Lineage.empty
    |> (fun g -> Lineage.add_process g { Lineage.pid = 1; name = "CS" })
    |> fun g -> Lineage.add_edge g (Lineage.Used { pid = 1; path = "/d"; ranges = set [ (0, 4) ] })
  in
  let dot = Lineage.to_dot g in
  let contains sub =
    let ls = String.length sub and l = String.length dot in
    let rec go i = i + ls <= l && (String.sub dot i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph lineage");
  Alcotest.(check bool) "process node" true (contains "CS (pid 1)");
  Alcotest.(check bool) "used edge" true (contains "used")

let test_add_process_idempotent () =
  let g = Lineage.add_process Lineage.empty { Lineage.pid = 1; name = "a" } in
  let g = Lineage.add_process g { Lineage.pid = 1; name = "b" } in
  Alcotest.(check int) "one node" 1 (List.length (Lineage.processes g));
  Alcotest.(check string) "first name kept" "a" (List.hd (Lineage.processes g)).Lineage.name

let suite =
  ( "provenance",
    [ Alcotest.test_case "coarse lineage" `Quick test_coarse_lineage;
      Alcotest.test_case "fine lineage merges ranges" `Quick test_fine_lineage_merges;
      Alcotest.test_case "unused artifacts (Fig. 2 D2)" `Quick test_unused_artifacts;
      Alcotest.test_case "graph from tracer" `Quick test_of_tracer;
      Alcotest.test_case "ranges merged across pids" `Quick test_ranges_used_any;
      Alcotest.test_case "descendants" `Quick test_descendants;
      Alcotest.test_case "dot export" `Quick test_to_dot;
      Alcotest.test_case "add_process idempotent" `Quick test_add_process_idempotent ] )
