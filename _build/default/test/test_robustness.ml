(* Failure injection: corrupted inputs must produce clean errors, never
   crashes, unbounded allocations, or silent wrong data.

   Strategy: serialize valid artifacts, mutate them randomly, and check
   every parser either succeeds or raises its documented exception. *)

open Kondo_prng
open Kondo_dataarray
open Kondo_h5

let valid_kh5 =
  let ds =
    Dataset.dense ~name:"data" ~dtype:Dtype.Float64 ~shape:(Shape.create [| 6; 6 |])
      ~layout:(Layout.Chunked [| 2; 3 |])
      ~attrs:[ ("units", Dataset.Str "m"); ("scale", Dataset.Num 2.0) ]
      ()
  in
  Writer.write_bytes [ (ds, fun idx -> float_of_int (idx.(0) + idx.(1))) ]

let mutate rng buf =
  let b = Bytes.copy buf in
  let ops = 1 + Rng.int rng 4 in
  for _ = 1 to ops do
    match Rng.int rng 3 with
    | 0 ->
      (* flip a byte *)
      let i = Rng.int rng (Bytes.length b) in
      Bytes.set b i (Rng.byte rng)
    | 1 ->
      (* truncate *)
      ()
    | _ ->
      let i = Rng.int rng (Bytes.length b) in
      Bytes.set_uint8 b i 0xFF
  done;
  let len = if Rng.bernoulli rng 0.3 then 1 + Rng.int rng (Bytes.length b) else Bytes.length b in
  Bytes.sub b 0 len

(* Opening a corrupted KH5 either works (mutation hit the data section)
   or fails with a documented exception; reads on a successfully opened
   file behave the same way. *)
let test_kh5_corruption_fuzz () =
  let rng = Rng.create 99 in
  for _ = 1 to 500 do
    let mutated = mutate rng valid_kh5 in
    match File.open_port (Kondo_audit.Io_port.of_bytes ~path:"fuzz" mutated) with
    | exception (Binio.Corrupt _ | Invalid_argument _) -> ()
    | f -> (
      (* opened: element reads must not crash either *)
      try
        List.iter
          (fun ds ->
            Shape.iter ds.Dataset.shape (fun idx ->
                ignore (File.read_element f ds.Dataset.name idx)))
          (File.datasets f)
      with Binio.Corrupt _ | Invalid_argument _ | File.Data_missing _ -> ())
  done

let valid_nc =
  let path = Filename.temp_file "kondo_fuzz" ".nc" in
  Netcdf.write path
    ~dims:[ { Netcdf.dim_name = "x"; size = 4 }; { Netcdf.dim_name = "y"; size = 3 } ]
    ~vars:[ ("v", [| 0; 1 |], Netcdf.Nc_double, fun idx -> float_of_int idx.(0)) ];
  let ic = open_in_bin path in
  let b = Bytes.create (in_channel_length ic) in
  really_input ic b 0 (Bytes.length b);
  close_in ic;
  Sys.remove path;
  b

let test_netcdf_corruption_fuzz () =
  let rng = Rng.create 77 in
  for _ = 1 to 500 do
    let mutated = mutate rng valid_nc in
    match Netcdf.open_port (Kondo_audit.Io_port.of_bytes ~path:"fuzz" mutated) with
    | exception (Binio.Corrupt _ | Invalid_argument _) -> ()
    | f -> (
      try
        List.iter
          (fun v ->
            let shape = Netcdf.shape_of_var f v in
            Shape.iter shape (fun idx ->
                ignore (Netcdf.read_element f v.Netcdf.var_name idx)))
          (Netcdf.vars f)
      with Binio.Corrupt _ | Invalid_argument _ -> ())
  done

let test_event_log_corruption_fuzz () =
  let events =
    List.init 10 (fun i ->
        { Kondo_audit.Event.seq = i; pid = 1; path = "/f"; op = Kondo_audit.Event.Read;
          offset = i * 10; size = 5 })
  in
  let path = Filename.temp_file "kondo_fuzz" ".klog" in
  Kondo_audit.Event_log.save path events;
  let ic = open_in_bin path in
  let valid = Bytes.create (in_channel_length ic) in
  really_input ic valid 0 (Bytes.length valid);
  close_in ic;
  let rng = Rng.create 55 in
  for _ = 1 to 300 do
    let mutated = mutate rng valid in
    let oc = open_out_bin path in
    output_bytes oc mutated;
    close_out oc;
    match Kondo_audit.Event_log.load path with
    | exception Failure _ -> ()
    | exception End_of_file -> Alcotest.fail "End_of_file leaked from loader"
    | _ -> ()
  done;
  Sys.remove path

let test_campaign_corruption_fuzz () =
  let p = Kondo_workload.Stencils.ldc2d ~n:16 () in
  let config =
    { Kondo_core.Config.default with Kondo_core.Config.max_iter = 50; stop_iter = 50 }
  in
  let c = Kondo_core.Campaign.extend ~config p (Kondo_core.Campaign.fresh p) 1 in
  let path = Filename.temp_file "kondo_fuzz" ".kcam" in
  Kondo_core.Campaign.save c path;
  let ic = open_in_bin path in
  let valid = Bytes.create (in_channel_length ic) in
  really_input ic valid 0 (Bytes.length valid);
  close_in ic;
  let rng = Rng.create 33 in
  for _ = 1 to 200 do
    let mutated = mutate rng valid in
    let oc = open_out_bin path in
    output_bytes oc mutated;
    close_out oc;
    match Kondo_core.Campaign.load p path with
    | exception (Invalid_argument _ | Failure _ | End_of_file) -> ()
    | loaded ->
      (* a structurally valid mutation must still belong to this program *)
      Alcotest.(check string) "name preserved" p.Kondo_workload.Program.name
        (Kondo_core.Campaign.program_name loaded)
  done;
  Sys.remove path

let test_spec_parser_never_crashes () =
  let rng = Rng.create 11 in
  let directives = [ "FROM"; "RUN"; "ADD"; "PARAM"; "ENTRYPOINT"; "CMD"; "JUNK"; "" ] in
  for _ = 1 to 500 do
    let lines = 1 + Rng.int rng 8 in
    let text =
      String.concat "\n"
        (List.init lines (fun _ ->
             let d = List.nth directives (Rng.int rng (List.length directives)) in
             let arg = String.init (Rng.int rng 20) (fun _ -> Char.chr (32 + Rng.int rng 95)) in
             d ^ " " ^ arg))
    in
    match Kondo_container.Spec.parse text with Ok _ | Error _ -> ()
  done

let suite =
  ( "robustness",
    [ Alcotest.test_case "KH5 corruption fuzz (500 mutants)" `Quick test_kh5_corruption_fuzz;
      Alcotest.test_case "NetCDF corruption fuzz (500 mutants)" `Quick
        test_netcdf_corruption_fuzz;
      Alcotest.test_case "event log corruption fuzz" `Quick test_event_log_corruption_fuzz;
      Alcotest.test_case "campaign corruption fuzz" `Quick test_campaign_corruption_fuzz;
      Alcotest.test_case "spec parser never crashes" `Quick test_spec_parser_never_crashes ] )
