(* Tests for the benchmark programs: plan behaviour, usefulness, analytic
   vs exhaustive ground truth, coverage instrumentation, real I/O runs. *)

open Kondo_dataarray
open Kondo_workload

let v2 a b = [| float_of_int a; float_of_int b |]
let v3 a b c = [| float_of_int a; float_of_int b; float_of_int c |]

(* ---------------- CS ---------------- *)

let test_cs1_guard () =
  let p = Stencils.cs ~n:16 1 in
  Alcotest.(check bool) "sx<=sy useful" true (Program.is_useful p (v2 1 2));
  Alcotest.(check bool) "sx>sy rejected" false (Program.is_useful p (v2 3 2));
  Alcotest.(check bool) "negative rejected" false (Program.is_useful p [| -1.0; 2.0 |])

let test_cs1_zero_step_terminates () =
  let p = Stencils.cs ~n:16 1 in
  let set = Program.access p (v2 0 0) in
  Alcotest.(check int) "single 2x2 block" 4 (Index_set.cardinal set)

let test_cs1_walk_indices () =
  (* steps (1,1) from (0,0): blocks at (0,0),(1,1),...,(14,14) *)
  let p = Stencils.cs ~n:16 1 in
  let set = Program.access p (v2 1 1) in
  Alcotest.(check bool) "(0,0)" true (Index_set.mem set [| 0; 0 |]);
  Alcotest.(check bool) "(15,15) from last block" true (Index_set.mem set [| 15; 15 |]);
  Alcotest.(check bool) "(0,2) never touched" false (Index_set.mem set [| 0; 2 |])

let test_cs_access_in_bounds () =
  let p = Stencils.cs ~n:16 3 in
  for sx = 0 to 15 do
    for sy = 0 to 15 do
      Program.iter_access p (v2 sx sy) (fun idx ->
          if not (Shape.in_bounds p.Program.shape idx) then Alcotest.fail "out of bounds access")
    done
  done

let test_cs_variants_distinct () =
  let truth i = Program.ground_truth (Stencils.cs ~n:32 i) in
  let t1 = truth 1 and t2 = truth 2 and t3 = truth 3 in
  Alcotest.(check bool) "CS1 != CS2" false (Index_set.equal t1 t2);
  Alcotest.(check bool) "CS3 != CS1" false (Index_set.equal t3 t1)

let test_cs1_truth_triangularish () =
  (* the paper: accessed x-subscript is at most y-subscript + 2 (strictly,
     +1 with our 0-indexed walk); check no accessed point violates it *)
  let p = Stencils.cs ~n:32 1 in
  let truth = Program.ground_truth p in
  Index_set.iter truth (fun idx ->
      Alcotest.(check bool) "i <= j+1" true (idx.(0) <= idx.(1) + 1))

let test_cs5_two_regions () =
  let p = Stencils.cs ~n:64 5 in
  let truth = Program.ground_truth p in
  (* near-origin window and far corner window are both populated *)
  Alcotest.(check bool) "origin region" true (Index_set.mem truth [| 0; 0 |]);
  Alcotest.(check bool) "far corner region" true (Index_set.mem truth [| 56; 56 |]);
  Alcotest.(check bool) "middle gap" false (Index_set.mem truth [| 40; 20 |])

(* ---------------- PRL / LDC / RDC ---------------- *)

let analytic_matches_exhaustive p =
  let analytic =
    match p.Program.truth with
    | Some pred ->
      let set = Index_set.create p.Program.shape in
      Shape.iter p.Program.shape (fun idx -> if pred idx then Index_set.add set idx);
      set
    | None -> Alcotest.fail "program has no analytic truth"
  in
  let exhaustive = Program.exhaustive_truth p in
  Alcotest.(check int) "same cardinality" (Index_set.cardinal exhaustive) (Index_set.cardinal analytic);
  Alcotest.(check bool) "identical sets" true (Index_set.equal analytic exhaustive)

let test_prl2d_truth () = analytic_matches_exhaustive (Stencils.prl2d ~n:32 ())
let test_ldc2d_truth () = analytic_matches_exhaustive (Stencils.ldc2d ~n:32 ())
let test_rdc2d_truth () = analytic_matches_exhaustive (Stencils.rdc2d ~n:32 ())
let test_prl3d_truth () = analytic_matches_exhaustive (Stencils.prl3d ~m:20 ())
let test_ldc3d_truth () = analytic_matches_exhaustive (Stencils.ldc3d ~m:16 ())
let test_rdc3d_truth () = analytic_matches_exhaustive (Stencils.rdc3d ~m:16 ())

let test_prl_has_hole () =
  let p = Stencils.prl2d ~n:64 () in
  let truth = Program.ground_truth p in
  Alcotest.(check bool) "center is a hole" false (Index_set.mem truth [| 32; 32 |]);
  Alcotest.(check bool) "frame point" true (Index_set.mem truth [| 32 + 15; 32 |])

let test_ldc_two_disjoint_blocks () =
  let p = Stencils.ldc2d ~n:32 () in
  let truth = Program.ground_truth p in
  Alcotest.(check bool) "top-left" true (Index_set.mem truth [| 0; 0 |]);
  Alcotest.(check bool) "bottom-right" true (Index_set.mem truth [| 31; 31 |]);
  Alcotest.(check bool) "center empty" false (Index_set.mem truth [| 16; 16 |]);
  Alcotest.(check bool) "anti-corner empty" false (Index_set.mem truth [| 0; 31 |])

let test_rdc_anti_diagonal () =
  let p = Stencils.rdc2d ~n:32 () in
  let truth = Program.ground_truth p in
  Alcotest.(check bool) "top-right" true (Index_set.mem truth [| 31; 0 |]);
  Alcotest.(check bool) "bottom-left" true (Index_set.mem truth [| 0; 31 |]);
  Alcotest.(check bool) "main-diagonal corners empty" false (Index_set.mem truth [| 0; 0 |])

let test_guard_invalid_region () =
  let p = Stencils.ldc2d ~n:32 () in
  Alcotest.(check bool) "tiny extent not useful" false (Program.is_useful p (v2 2 2));
  Alcotest.(check bool) "valid extent useful" true (Program.is_useful p (v2 5 5))

(* ---------------- ARD / MSI ---------------- *)

let test_ard_geometry () =
  let p = Realapps.ard () in
  let truth = Program.ground_truth p in
  let frac = Index_set.fraction truth in
  (* paper: 97.20% debloat -> ~2.8% accessed *)
  Alcotest.(check bool) "fraction ~2.8%" true (Float.abs (frac -. 0.028) < 0.002);
  Alcotest.(check int) "3 parameters" 3 (Program.arity p)

let test_ard_temporal_param_redundant () =
  let p = Realapps.ard () in
  let a = Program.access p (v3 10 20 0) in
  let b = Program.access p (v3 10 20 100) in
  Alcotest.(check bool) "t0 does not change the accessed set" true (Index_set.equal a b)

let test_msi_geometry () =
  let p = Realapps.msi () in
  let truth = Program.ground_truth p in
  let frac = Index_set.fraction truth in
  (* paper: 96.24% debloat -> ~3.8% accessed *)
  Alcotest.(check bool) "fraction ~3.8%" true (Float.abs (frac -. 0.0385) < 0.003)

let test_msi_truth_small_scale () = analytic_matches_exhaustive (Realapps.msi ~scale:1024 ())

let test_msi_plane_and_line () =
  let p = Realapps.msi () in
  let zlo = int_of_float (fst p.Program.param_space.(0)) in
  let set = Program.access p [| float_of_int zlo; 5.0; 6.0 |] in
  let dims = Shape.dims p.Program.shape in
  (* full plane at zlo plus the spectrum line (one z already in plane) *)
  let win = int_of_float (snd p.Program.param_space.(0)) - zlo + 1 in
  Alcotest.(check int) "plane + line" ((dims.(0) * dims.(1)) + win - 1) (Index_set.cardinal set)

(* ---------------- Idioms (Lofstead / Tang subsetting patterns) -------- *)

let test_plane_truth () = analytic_matches_exhaustive (Idioms.plane ~m:16 ())
let test_subvol_truth () = analytic_matches_exhaustive (Idioms.subvol ~m:16 ())
let test_vars_truth () = analytic_matches_exhaustive (Idioms.varsubset ~vars:8 ~m:12 ())
let test_thresh_truth () = analytic_matches_exhaustive (Idioms.threshold ~m:16 ())

let test_plane_is_planar () =
  let p = Idioms.plane ~m:16 () in
  let set = Program.access p [| 8.0; 1.0 |] in
  Alcotest.(check int) "one full plane" (16 * 16) (Index_set.cardinal set);
  Index_set.iter set (fun idx -> Alcotest.(check int) "fixed z" 8 idx.(2))

let test_plane_strided_subset_of_full () =
  let p = Idioms.plane ~m:16 () in
  let full = Program.access p [| 8.0; 1.0 |] in
  let strided = Program.access p [| 8.0; 3.0 |] in
  Alcotest.(check bool) "strided ⊆ full" true (Index_set.subset strided full);
  Alcotest.(check bool) "strided smaller" true
    (Index_set.cardinal strided < Index_set.cardinal full)

let test_subvol_fixed_size () =
  let p = Idioms.subvol ~m:64 () in
  let a = Program.access p [| 0.0; 0.0; 0.0 |] in
  let b = Program.access p [| 17.0; 5.0; 23.0 |] in
  Alcotest.(check int) "same volume everywhere" (Index_set.cardinal a) (Index_set.cardinal b)

let test_vars_unsupported_variable () =
  let p = Idioms.varsubset ~vars:8 ~m:12 () in
  Alcotest.(check bool) "supported variable useful" true (Program.is_useful p (v2 1 3));
  Alcotest.(check bool) "unsupported variable rejected" false (Program.is_useful p (v2 6 3))

let test_thresh_monotone () =
  (* higher threshold -> smaller region, nested *)
  let p = Idioms.threshold ~m:32 () in
  let lo = Program.access p [| 4.0; 0.0 |] in
  let hi = Program.access p [| 12.0; 0.0 |] in
  Alcotest.(check bool) "nested" true (Index_set.subset hi lo);
  Alcotest.(check bool) "strictly smaller" true (Index_set.cardinal hi < Index_set.cardinal lo)

let test_idioms_kondo_accuracy () =
  (* Kondo should handle each idiom well: recall high, precision decent *)
  let open Kondo_core in
  List.iter
    (fun p ->
      let config = { Config.default with Config.max_iter = 600; stop_iter = 300 } in
      let r = Pipeline.evaluate ~config p in
      let a = Option.get r.Pipeline.accuracy in
      Alcotest.(check bool)
        (Printf.sprintf "%s recall %.3f > 0.9" p.Program.name a.Metrics.recall)
        true (a.Metrics.recall > 0.9);
      Alcotest.(check bool)
        (Printf.sprintf "%s precision %.3f > 0.7" p.Program.name a.Metrics.precision)
        true (a.Metrics.precision > 0.7))
    (Suite.extended ~m:24 ())

(* ---------------- Program generics ---------------- *)

let test_param_count () =
  let p = Stencils.cs ~n:16 1 in
  Alcotest.(check int) "16x16 valuations" 256 (Program.param_count p)

let test_iter_param_space_count () =
  let p = Stencils.ldc2d ~n:16 () in
  let n = ref 0 in
  Program.iter_param_space p (fun _ -> incr n);
  Alcotest.(check int) "matches param_count" (Program.param_count p) !n

let test_clamp_params () =
  let p = Stencils.cs ~n:16 1 in
  Alcotest.(check (array (float 1e-9))) "clamped" [| 0.0; 15.0 |]
    (Program.clamp_params p [| -3.7; 99.0 |])

let test_coverage_edges () =
  let p = Stencils.cs ~n:16 1 in
  let edges = ref [] in
  Program.coverage p (v2 0 0) (fun e -> edges := e :: !edges);
  (* guard edge 1 (useful) + 4 index edges *)
  Alcotest.(check int) "5 edges" 5 (List.length !edges);
  Alcotest.(check bool) "guard useful" true (List.mem 1 !edges);
  let not_useful = ref [] in
  Program.coverage p (v2 5 1) (fun e -> not_useful := e :: !not_useful);
  Alcotest.(check (list int)) "only guard edge 0" [ 0 ] !not_useful

let test_access_equals_iter_access () =
  let p = Stencils.prl2d ~n:32 () in
  let v = v2 6 7 in
  let set = Program.access p v in
  let set2 = Index_set.create p.Program.shape in
  Program.iter_access p v (fun idx -> Index_set.add set2 idx);
  Alcotest.(check bool) "same set" true (Index_set.equal set set2)

let test_run_io_against_file () =
  let p = Stencils.ldc2d ~n:16 () in
  let path = Filename.temp_file "kondo_wl" ".kh5" in
  Datafile.write_for ~path p;
  let f = Kondo_h5.File.open_file path in
  let n = Program.run_io p f (v2 5 5) in
  Alcotest.(check int) "elements read = plan size" (Index_set.cardinal (Program.access p (v2 5 5))) n;
  Kondo_h5.File.close f;
  Sys.remove path

let test_ground_truth_cached () =
  let p = Stencils.cs ~n:16 1 in
  let a = Program.ground_truth p and b = Program.ground_truth p in
  Alcotest.(check bool) "same object" true (a == b)

let test_suite_registry () =
  Alcotest.(check int) "11 micro+synthetic" 11 (List.length (Suite.all11 ~n:16 ~m:8 ()));
  Alcotest.(check int) "17 names" 17 (List.length Suite.names);
  List.iter
    (fun name ->
      match Suite.by_name ~n:16 ~m:8 name with
      | Some p -> Alcotest.(check string) "name matches" name p.Program.name
      | None -> Alcotest.fail ("missing " ^ name))
    Suite.names;
  Alcotest.(check bool) "unknown name" true (Suite.by_name "XYZ" = None)

let test_micro_group () =
  Alcotest.(check string) "CS3 -> CS" "CS" (Suite.micro_group (Stencils.cs ~n:16 3));
  Alcotest.(check string) "PRL3D -> PRL" "PRL" (Suite.micro_group (Stencils.prl3d ~m:8 ()));
  Alcotest.(check string) "ARD is its own group" "ARD" (Suite.micro_group (Realapps.ard ()))

let test_render_ascii () =
  let p = Stencils.ldc2d ~n:32 () in
  let art = Render.ascii ~cols:16 ~rows:16 (Program.ground_truth p) in
  Alcotest.(check bool) "has dense cells" true (String.contains art '#');
  Alcotest.(check bool) "has empty cells" true (String.contains art ' ')

let test_render_overlay () =
  let shape = Shape.create [| 16; 16 |] in
  let a = Index_set.of_list shape [ [| 0; 0 |] ] in
  let b = Index_set.of_list shape [ [| 15; 15 |]; [| 0; 0 |] ] in
  let art = Render.overlay ~cols:16 ~rows:16 shape [ ('a', a); ('b', b) ] in
  Alcotest.(check bool) "later overlay wins contested cells" true (not (String.contains art 'a'));
  Alcotest.(check bool) "marks present" true (String.contains art 'b')

let test_render_3d_mid_slice () =
  let p = Stencils.ldc3d ~m:8 () in
  let art = Render.ascii ~cols:8 ~rows:8 (Program.ground_truth p) in
  (* the middle z-slice of LDC3D shows nothing: corners do not reach z=4 *)
  Alcotest.(check bool) "renders without error" true (String.length art > 0)

let contains_sub s sub =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let test_svg_document () =
  let shape = Shape.create [| 8; 8 |] in
  let set = Index_set.of_list shape [ [| 1; 2 |]; [| 3; 4 |] ] in
  let hull = Kondo_geometry.Hull.of_int_points [ [| 0; 0 |]; [| 5; 0 |]; [| 0; 5 |] ] in
  let doc =
    Svg.document ~width:200.0 ~height:200.0
      [ Svg.points set; Svg.hull_outline hull; Svg.marks [ (1.0, 1.0) ] ]
  in
  Alcotest.(check bool) "svg root" true (contains_sub doc "<svg");
  Alcotest.(check bool) "dots rendered" true (contains_sub doc "<circle");
  Alcotest.(check bool) "hull polygon rendered" true (contains_sub doc "<polygon");
  Alcotest.(check bool) "closes" true (contains_sub doc "</svg>")

let test_svg_degenerate_hulls () =
  let point = Kondo_geometry.Hull.of_int_points [ [| 2; 2 |] ] in
  let seg = Kondo_geometry.Hull.of_int_points [ [| 0; 0 |]; [| 4; 4 |] ] in
  let doc = Svg.document ~width:100.0 ~height:100.0 [ Svg.hull_outline point; Svg.hull_outline seg ] in
  Alcotest.(check bool) "point as dot" true (contains_sub doc "<circle");
  Alcotest.(check bool) "segment as line" true (contains_sub doc "<line")

let test_svg_save () =
  let path = Filename.temp_file "kondo_svg" ".svg" in
  let shape = Shape.create [| 4; 4 |] in
  Svg.save path ~width:50.0 ~height:50.0 [ Svg.points (Index_set.of_list shape [ [| 0; 0 |] ]) ];
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check bool) "file starts with svg" true (contains_sub line "<svg");
  Sys.remove path

let test_datafile_attrs () =
  let p = Stencils.ldc2d ~n:8 () in
  let path = Filename.temp_file "kondo_attrs" ".kh5" in
  Datafile.write_for ~path p;
  let f = Kondo_h5.File.open_file path in
  let ds = Kondo_h5.File.find f "data" in
  Alcotest.(check bool) "program attr" true
    (Kondo_h5.Dataset.attr ds "program" = Some (Kondo_h5.Dataset.Str "LDC2D"));
  Alcotest.(check bool) "crc verifies" true (Kondo_h5.File.verify_all f);
  Kondo_h5.File.close f;
  Sys.remove path

let test_with_dataset () =
  let p = Program.with_dataset (Stencils.cs ~n:16 1) "other" in
  Alcotest.(check string) "dataset renamed" "other" p.Program.dataset;
  Alcotest.(check bool) "name disambiguated" true (p.Program.name <> "CS1")

let test_datafile_write_many () =
  let p1 = Program.with_dataset (Stencils.ldc2d ~n:8 ()) "a" in
  let p2 = Program.with_dataset (Stencils.rdc2d ~n:8 ()) "b" in
  let path = Filename.temp_file "kondo_many" ".kh5" in
  Datafile.write_many ~path [ p1; p2 ];
  let f = Kondo_h5.File.open_file path in
  Alcotest.(check int) "two datasets" 2 (List.length (Kondo_h5.File.datasets f));
  Alcotest.(check (float 1e-9)) "values" (Datafile.fill [| 1; 2 |])
    (Kondo_h5.File.read_element f "b" [| 1; 2 |]);
  Kondo_h5.File.close f;
  Sys.remove path

let qcheck_useful_iff_plan_nonempty =
  QCheck.Test.make ~name:"is_useful iff the clipped plan selects something" ~count:200
    QCheck.(pair (int_range 0 31) (int_range 0 31))
    (fun (a, b) ->
      let p = Stencils.cs ~n:32 3 in
      let v = v2 a b in
      Program.is_useful p v = not (Index_set.is_empty (Program.access p v)))

let qcheck_access_within_truth =
  QCheck.Test.make ~name:"every in-Θ access lies within ground truth" ~count:100
    QCheck.(pair (int_range 0 31) (int_range 0 31))
    (fun (a, b) ->
      let p = Stencils.prl2d ~n:32 () in
      (* ground truth is defined over Θ: clamp the fuzzed value into it *)
      let v = Program.clamp_params p (v2 a b) in
      let truth = Program.ground_truth p in
      let ok = ref true in
      Program.iter_access p v (fun idx -> if not (Index_set.mem truth idx) then ok := false);
      !ok)

let suite =
  ( "workload",
    [ Alcotest.test_case "CS1 guard" `Quick test_cs1_guard;
      Alcotest.test_case "CS zero step terminates" `Quick test_cs1_zero_step_terminates;
      Alcotest.test_case "CS1 walk indices" `Quick test_cs1_walk_indices;
      Alcotest.test_case "CS accesses stay in bounds" `Quick test_cs_access_in_bounds;
      Alcotest.test_case "CS variants differ" `Quick test_cs_variants_distinct;
      Alcotest.test_case "CS1 truth triangular" `Quick test_cs1_truth_triangularish;
      Alcotest.test_case "CS5 two distant regions" `Quick test_cs5_two_regions;
      Alcotest.test_case "PRL2D analytic = exhaustive" `Quick test_prl2d_truth;
      Alcotest.test_case "LDC2D analytic = exhaustive" `Quick test_ldc2d_truth;
      Alcotest.test_case "RDC2D analytic = exhaustive" `Quick test_rdc2d_truth;
      Alcotest.test_case "PRL3D analytic = exhaustive" `Slow test_prl3d_truth;
      Alcotest.test_case "LDC3D analytic = exhaustive" `Slow test_ldc3d_truth;
      Alcotest.test_case "RDC3D analytic = exhaustive" `Slow test_rdc3d_truth;
      Alcotest.test_case "PRL keeps its hole" `Quick test_prl_has_hole;
      Alcotest.test_case "LDC two disjoint blocks" `Quick test_ldc_two_disjoint_blocks;
      Alcotest.test_case "RDC anti-diagonal" `Quick test_rdc_anti_diagonal;
      Alcotest.test_case "guards create invalid regions" `Quick test_guard_invalid_region;
      Alcotest.test_case "ARD geometry (2.8% accessed)" `Quick test_ard_geometry;
      Alcotest.test_case "ARD temporal param redundant" `Quick test_ard_temporal_param_redundant;
      Alcotest.test_case "MSI geometry (3.8% accessed)" `Quick test_msi_geometry;
      Alcotest.test_case "MSI analytic = exhaustive (small)" `Slow test_msi_truth_small_scale;
      Alcotest.test_case "MSI plane and line" `Quick test_msi_plane_and_line;
      Alcotest.test_case "PLANE analytic = exhaustive" `Slow test_plane_truth;
      Alcotest.test_case "SUBVOL analytic = exhaustive" `Slow test_subvol_truth;
      Alcotest.test_case "VARS analytic = exhaustive" `Slow test_vars_truth;
      Alcotest.test_case "THRESH analytic = exhaustive" `Slow test_thresh_truth;
      Alcotest.test_case "PLANE reads one plane" `Quick test_plane_is_planar;
      Alcotest.test_case "PLANE strided subset" `Quick test_plane_strided_subset_of_full;
      Alcotest.test_case "SUBVOL fixed size" `Quick test_subvol_fixed_size;
      Alcotest.test_case "VARS unsupported variable" `Quick test_vars_unsupported_variable;
      Alcotest.test_case "THRESH monotone nesting" `Quick test_thresh_monotone;
      Alcotest.test_case "idioms: Kondo accuracy" `Slow test_idioms_kondo_accuracy;
      Alcotest.test_case "param count" `Quick test_param_count;
      Alcotest.test_case "iter_param_space count" `Quick test_iter_param_space_count;
      Alcotest.test_case "clamp params" `Quick test_clamp_params;
      Alcotest.test_case "coverage edges" `Quick test_coverage_edges;
      Alcotest.test_case "access = iter_access" `Quick test_access_equals_iter_access;
      Alcotest.test_case "run_io against KH5 file" `Quick test_run_io_against_file;
      Alcotest.test_case "ground truth cached" `Quick test_ground_truth_cached;
      Alcotest.test_case "suite registry" `Quick test_suite_registry;
      Alcotest.test_case "micro groups" `Quick test_micro_group;
      Alcotest.test_case "ascii render" `Quick test_render_ascii;
      Alcotest.test_case "overlay render" `Quick test_render_overlay;
      Alcotest.test_case "3d mid-slice render" `Quick test_render_3d_mid_slice;
      Alcotest.test_case "svg document" `Quick test_svg_document;
      Alcotest.test_case "svg degenerate hulls" `Quick test_svg_degenerate_hulls;
      Alcotest.test_case "svg save" `Quick test_svg_save;
      Alcotest.test_case "datafile provenance attrs" `Quick test_datafile_attrs;
      Alcotest.test_case "with_dataset" `Quick test_with_dataset;
      Alcotest.test_case "datafile write_many" `Quick test_datafile_write_many;
      QCheck_alcotest.to_alcotest qcheck_useful_iff_plan_nonempty;
      QCheck_alcotest.to_alcotest qcheck_access_within_truth ] )
