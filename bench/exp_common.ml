(* Shared helpers for the experiment drivers. *)

open Kondo_workload
open Kondo_core

let mean l =
  match l with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let std l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean l in
    sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

let header id title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "==================================================================\n%!"

let row fmt = Printf.printf fmt

let pct x = 100.0 *. x

(* The paper's budget methodology (§V-C): per program, the budget is what
   Kondo needs to reach (at least 97% of) its eventual recall — here
   expressed as a debloat-test count, the honest cost unit of a system
   whose per-test price is dominated by the audited execution. *)
let kondo_reference_budget ?(config = Config.default) p =
  let r = Schedule.run ~config:(Config.with_seed config 1) p in
  max 200 r.Schedule.evaluations

let kondo_run ~seed ~budget p =
  let config =
    { Config.default with Config.seed; max_iter = budget; stop_iter = budget }
  in
  Pipeline.approximate ~config p

let accuracy_vs truth approx = Metrics.accuracy ~truth ~approx

(* Average Kondo accuracy over [seeds] runs at a fixed budget. *)
let kondo_avg ?(seeds = 10) ~budget p =
  let truth = Program.ground_truth p in
  let accs =
    List.init seeds (fun s ->
        let r = kondo_run ~seed:(s + 1) ~budget p in
        accuracy_vs truth r.Pipeline.approx)
  in
  let recalls = List.map (fun (a : Metrics.accuracy) -> a.Metrics.recall) accs in
  let precisions = List.map (fun (a : Metrics.accuracy) -> a.Metrics.precision) accs in
  let bloats = List.map (fun (a : Metrics.accuracy) -> a.Metrics.bloat) accs in
  ( (mean recalls, std recalls),
    (mean precisions, std precisions),
    (mean bloats, std bloats) )

let group_by_family programs =
  let groups = [ "CS"; "PRL"; "LDC"; "RDC" ] in
  List.map
    (fun g -> (g, List.filter (fun p -> Suite.micro_group p = g) programs))
    groups

let recall_of p set = Metrics.recall ~truth:(Program.ground_truth p) ~approx:set

let precision_of p set = Metrics.precision ~truth:(Program.ground_truth p) ~approx:set

(* Wall clock for every experiment driver, via the observability clock
   so bench timing and production instrumentation share one source. *)
let now () = Kondo_obs.Clock.now Kondo_obs.Clock.real

(* Per-phase wall-time recorder: a driver wraps each phase of its
   workload in [timed_phase] and embeds [phases_json] into its
   BENCH_*.json doc, so the artifacts carry a per-phase breakdown next
   to the headline numbers. *)
type phases = { mutable phase_entries : (string * float) list (* newest first *) }

let new_phases () = { phase_entries = [] }

let timed_phase ph name f =
  let t0 = now () in
  let v = f () in
  ph.phase_entries <- (name, now () -. t0) :: ph.phase_entries;
  v

let phases_json ph =
  Report.Json.Obj
    (List.rev_map (fun (name, s) -> (name, Report.Json.Float s)) ph.phase_entries)
