(* Fault-tolerant remote-fetch experiment: served-read fraction and
   recall under swept fault rates.

   Workload: CS1 is deliberately under-debloated (a tiny fuzz budget) so
   a large fraction of ground-truth reads miss locally and travel the
   runtime's remote-fetch path — retry/backoff, circuit breaker, CRC
   verification — while a deterministic fault plan injects transient
   failures, timeouts, and corrupted payloads at increasing rates.  For
   every transient-only row the runtime must serve 100% of the
   ground-truth reads (the §VI contract, given a sufficient retry
   budget); a permanent-fault row shows reads degrading to structured
   misses — never a crash — with every path accounted in the stats.
   Results land in artifacts/BENCH_faults.json. *)

open Kondo_dataarray
open Kondo_workload
open Kondo_container
open Kondo_core
open Kondo_faults
open Exp_common

let dst = "/app/data.kh5"

let build_debloated_image p =
  let src = Filename.temp_file "exp_faults_src" ".kh5" in
  Datafile.write_for ~path:src p;
  let spec =
    { Spec.empty with
      Spec.base = "scratch";
      data_deps = [ { Spec.src; dst } ];
      param_space = p.Program.param_space }
  in
  let read_file path =
    let ic = open_in_bin path in
    let b = Bytes.create (in_channel_length ic) in
    really_input ic b 0 (Bytes.length b);
    close_in ic;
    b
  in
  let image = Image.build spec ~fetch:read_file in
  (* a weak budget leaves plenty of in-truth offsets carved away *)
  let weak = { Config.default with Config.seed = 1; max_iter = 60; stop_iter = 60 } in
  let debloated, _ = Pipeline.debloat_image ~config:weak p ~image ~dst in
  (src, debloated)

type row = {
  label : string;
  plan_spec : string;
  served : int;
  total : int;
  degraded : int;
  retries : int;
  breaker_trips : int;
  corrupt_fetches : int;
  remote_fetches : int;
  wall_s : float;
}

let sweep_row p image ~label ~plan_spec =
  let plan =
    match Fault_plan.of_string plan_spec with
    | Ok pl -> pl
    | Error msg -> failwith ("exp_faults: bad plan: " ^ msg)
  in
  let retry =
    { Retry.default with Retry.max_attempts = 48; deadline_ms = 1e9; max_delay_ms = 200.0 }
  in
  let dir = Filename.temp_file "exp_faults_rt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rt = Runtime.boot ~remote:true ~faults:plan ~retry ~image ~dir () in
  let truth = Program.ground_truth p in
  let served = ref 0 and degraded = ref 0 and total = ref 0 in
  let t0 = now () in
  Index_set.iter truth (fun idx ->
      incr total;
      match Runtime.try_read_element rt ~dst ~dataset:p.Program.dataset idx with
      | Ok _ -> incr served
      | Error (Runtime.Degraded _) -> incr degraded
      | Error exn -> raise exn);
  let wall_s = now () -. t0 in
  let s = Runtime.stats rt in
  Runtime.shutdown rt;
  { label;
    plan_spec;
    served = !served;
    total = !total;
    degraded = !degraded;
    retries = s.Runtime.retries;
    breaker_trips = s.Runtime.breaker_trips;
    corrupt_fetches = s.Runtime.corrupt_fetches;
    remote_fetches = s.Runtime.remote_fetches;
    wall_s }

let json_path () =
  let dir = "artifacts" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Filename.concat dir "BENCH_faults.json"

let run () =
  header "faults" "Fault-tolerant remote fetch: served reads under swept fault rates";
  let p = Stencils.cs ~n:128 1 in
  let ph = new_phases () in
  let src, image = timed_phase ph "build_debloated_image" (fun () -> build_debloated_image p) in
  let transient_rows =
    List.map
      (fun rate ->
        let spec =
          if rate = 0.0 then "seed=11"
          else
            Printf.sprintf "seed=11,transient=%g,timeout=%g,corrupt=%g,short=%g"
              (0.5 *. rate) (0.2 *. rate) (0.2 *. rate) (0.1 *. rate)
        in
        (Printf.sprintf "transient r=%.1f" rate, spec))
      [ 0.0; 0.2; 0.4; 0.6 ]
  in
  let rows =
    timed_phase ph "fault_rate_sweep" (fun () ->
        List.map
          (fun (label, spec) -> sweep_row p image ~label ~plan_spec:spec)
          transient_rows
        @ [ sweep_row p image ~label:"permanent r=1.0" ~plan_spec:"seed=11,permanent=1.0" ])
  in
  Printf.printf "  %-18s %8s %8s %8s %8s %7s %8s %7s\n" "plan" "served" "degraded" "fetches"
    "retries" "trips" "corrupt" "wall";
  List.iter
    (fun r ->
      Printf.printf "  %-18s %7.1f%% %8d %8d %8d %7d %8d %6.2fs\n" r.label
        (100.0 *. float_of_int r.served /. float_of_int r.total)
        r.degraded r.remote_fetches r.retries r.breaker_trips r.corrupt_fetches r.wall_s)
    rows;
  (* the §VI contract: retryable-only fault plans with a sufficient
     budget must not lose a single ground-truth read *)
  List.iteri
    (fun i r ->
      ignore i;
      if r.label <> "permanent r=1.0" && r.served <> r.total then
        failwith
          (Printf.sprintf "exp_faults: %s served %d of %d under a retryable-only plan"
             r.label r.served r.total))
    rows;
  let open Report.Json in
  let doc =
    Obj
      [ ("experiment", String "exp_faults");
        ("program", String p.Program.name);
        ("truth_reads", Int (List.hd rows).total);
        ( "note",
          String
            "CS1 under-debloated (60-test budget) so most ground-truth reads go remote; \
             retry budget 48 attempts, virtual deadline unbounded; every retryable-only \
             row must serve 100%" );
        ( "rows",
          List
            (List.map
               (fun r ->
                 Obj
                   [ ("label", String r.label);
                     ("fault_plan", String r.plan_spec);
                     ("served", Int r.served);
                     ("total", Int r.total);
                     ( "served_fraction",
                       Float (float_of_int r.served /. float_of_int r.total) );
                     ("recall_served", Float (float_of_int r.served /. float_of_int r.total));
                     ("degraded_reads", Int r.degraded);
                     ("remote_fetches", Int r.remote_fetches);
                     ("retries", Int r.retries);
                     ("breaker_trips", Int r.breaker_trips);
                     ("corrupt_fetches", Int r.corrupt_fetches);
                     ("wall_s", Float r.wall_s) ])
               rows) );
        ("phase_timings", phases_json ph) ]
  in
  let out = json_path () in
  let oc = open_out out in
  output_string oc (to_string ~indent:2 doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (json saved to %s)\n" out;
  try Sys.remove src with Sys_error _ -> ()
