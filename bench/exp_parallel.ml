(* Parallel engine experiment: sequential vs domain-parallel wall time.

   Workload: the domain-parallel fan-out paths introduced with
   `kondo_parallel` — (a) a multi-round fuzz campaign (independent
   Alg. 1 schedules whose discoveries are unioned) and (b) multi-program
   debloating (one fuzz+carve pipeline per program).  Both are measured
   at jobs = 1 and jobs = 4 (plus the hardware domain count when it
   differs), the parity of the accumulated index sets is asserted, and
   everything is recorded in artifacts/BENCH_parallel.json.

   Speedup is hardware-bound: on a single-core container the parallel
   run cannot beat the sequential one; on >= 4 cores the workload is
   embarrassingly parallel and approaches the domain count. *)

open Kondo_dataarray
open Kondo_workload
open Kondo_core
open Exp_common

let rounds = 8
let campaign_iters = 4000

let campaign_workload ~jobs =
  let p = Stencils.cs ~n:384 1 in
  let config =
    { Config.default with Config.seed = 7; max_iter = campaign_iters;
      stop_iter = campaign_iters; jobs }
  in
  let t0 = now () in
  let c = Campaign.extend ~config p (Campaign.fresh p) rounds in
  (now () -. t0, Campaign.observed c)

let many_programs () =
  [ Program.with_dataset (Stencils.ldc2d ~n:192 ()) "ldc";
    Program.with_dataset (Stencils.rdc2d ~n:192 ()) "rdc";
    Program.with_dataset (Stencils.prl2d ~n:192 ()) "prl";
    Program.with_dataset (Stencils.cs ~n:192 2) "cs2" ]

let many_workload ~jobs =
  let programs = many_programs () in
  let src = Filename.temp_file "exp_parallel_src" ".kh5" in
  let dst = Filename.temp_file "exp_parallel_dst" ".kh5" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove src with Sys_error _ -> ());
      try Sys.remove dst with Sys_error _ -> ())
    (fun () ->
      let mk p =
        Kondo_h5.Dataset.dense ~name:p.Program.dataset ~dtype:p.Program.dtype
          ~shape:p.Program.shape ()
      in
      Kondo_h5.Writer.write src (List.map (fun p -> (mk p, Datafile.fill)) programs);
      let config =
        { Config.default with Config.seed = 7; max_iter = 2500; stop_iter = 2500; jobs }
      in
      let t0 = now () in
      let reports = Pipeline.debloat_file_many ~config programs ~src ~dst in
      let elapsed = now () -. t0 in
      let observed =
        List.map (fun (name, r) -> (name, Index_set.cardinal r.Pipeline.approx)) reports
      in
      (elapsed, observed))

let json_path () =
  let dir = "artifacts" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Filename.concat dir "BENCH_parallel.json"

let run () =
  header "parallel" "Domain-parallel fan-out: sequential vs parallel wall time";
  let recommended = Kondo_parallel.Pool.default_jobs () in
  Printf.printf "  hardware domains: %d\n%!" recommended;
  let ph = new_phases () in
  let t_camp_1, obs_1 = timed_phase ph "campaign_jobs1" (fun () -> campaign_workload ~jobs:1) in
  let t_camp_4, obs_4 = timed_phase ph "campaign_jobs4" (fun () -> campaign_workload ~jobs:4) in
  let camp_parity = Index_set.equal obs_1 obs_4 in
  Printf.printf "  campaign (%d rounds x %d iters): jobs=1 %.2fs, jobs=4 %.2fs — %.2fx, parity %b\n%!"
    rounds campaign_iters t_camp_1 t_camp_4 (t_camp_1 /. t_camp_4) camp_parity;
  let t_many_1, many_obs_1 = timed_phase ph "debloat_many_jobs1" (fun () -> many_workload ~jobs:1) in
  let t_many_4, many_obs_4 = timed_phase ph "debloat_many_jobs4" (fun () -> many_workload ~jobs:4) in
  let many_parity = many_obs_1 = many_obs_4 in
  Printf.printf "  debloat_file_many (4 programs): jobs=1 %.2fs, jobs=4 %.2fs — %.2fx, parity %b\n%!"
    t_many_1 t_many_4 (t_many_1 /. t_many_4) many_parity;
  if not (camp_parity && many_parity) then
    failwith "exp_parallel: parallel run diverged from the sequential one";
  let speedup seq par = seq /. Float.max 1e-9 par in
  let open Report.Json in
  let workload name seq par parity =
    Obj
      [ ("workload", String name);
        ("seq_s", Float seq);
        ("par_s", Float par);
        ("jobs", Int 4);
        ("speedup", Float (speedup seq par));
        ("deterministic_parity", Bool parity) ]
  in
  let doc =
    Obj
      [ ("experiment", String "exp_parallel");
        ("hardware_domains", Int recommended);
        ( "note",
          String
            "speedup is hardware-bound: ~1.0x on a single core, approaching the domain \
             count on >= 4 cores; parity is asserted in all cases" );
        ( "workloads",
          List
            [ workload
                (Printf.sprintf "campaign_%dx%d" rounds campaign_iters)
                t_camp_1 t_camp_4 camp_parity;
              workload "debloat_file_many_4p" t_many_1 t_many_4 many_parity ] );
        ("phase_timings", phases_json ph) ]
  in
  let out = json_path () in
  let oc = open_out out in
  output_string oc (to_string ~indent:2 doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (json saved to %s)\n" out
