(* Content-addressed store experiment: serve an under-debloated CS1's
   carved-away reads from the chunk server and sweep the server-side
   cache budget.

   Workload: CS1 debloated with a tiny fuzz budget, so most ground-truth
   reads miss locally and travel the store path — manifest-verified
   chunk fetches over the loopback transport, batched per contiguous
   miss run, with the byte-budgeted single-flight cache in front of the
   block store.  Every read must come back correct (checked against the
   analytic fill); the sweep shows the cache hit rate and fetch traffic
   as the budget grows from nothing to comfortably-whole-file.  Results
   land in artifacts/BENCH_store.json. *)

open Kondo_dataarray
open Kondo_workload
open Kondo_container
open Kondo_core
open Kondo_store
open Exp_common

let dst = "/app/data.kh5"

let read_file path =
  let ic = open_in_bin path in
  let b = Bytes.create (in_channel_length ic) in
  really_input ic b 0 (Bytes.length b);
  close_in ic;
  b

let build_debloated_image p =
  let src = Filename.temp_file "exp_store_src" ".kh5" in
  Datafile.write_for ~path:src p;
  let spec =
    { Spec.empty with
      Spec.base = "scratch";
      data_deps = [ { Spec.src; dst } ];
      param_space = p.Program.param_space }
  in
  let image = Image.build spec ~fetch:read_file in
  let weak = { Config.default with Config.seed = 1; max_iter = 60; stop_iter = 60 } in
  let debloated, _ = Pipeline.debloat_image ~config:weak p ~image ~dst in
  (src, debloated)

type row = {
  cache_bytes : int;
  served : int;
  total : int;
  store_fetches : int;
  fetched_chunks : int;
  fetched_bytes : int;
  range_gets : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  hit_rate : float;
  wall_s : float;
}

let store_source_for client =
  let manifests = Hashtbl.create 4 in
  let manifest_for dataset =
    match Hashtbl.find_opt manifests dataset with
    | Some m -> Ok m
    | None -> (
      match Client.manifest client ~name:("#" ^ dataset) with
      | Ok m ->
        Hashtbl.add manifests dataset m;
        Ok m
      | Error _ as e -> e)
  in
  { Runtime.source_name = "loopback";
    store_fetch =
      (fun ~dst:_ ~dataset ~offset ~length ->
        match manifest_for dataset with
        | Error e -> Error e
        | Ok m -> Client.read_bytes client m ~offset ~length) }

let sweep_row p image ~src ~cache_bytes =
  let server = Server.create ~cache_bytes ~store:(Block_store.create ()) () in
  ignore (Server.add_kh5 server ~name:(Filename.basename src) src);
  let client = Client.connect (Transport.loopback ~handle:(Server.handle server)) in
  let dir = Filename.temp_file "exp_store_rt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rt = Runtime.boot ~store:(store_source_for client) ~image ~dir () in
  let truth = Program.ground_truth p in
  let served = ref 0 and total = ref 0 in
  let t0 = now () in
  Index_set.iter truth (fun idx ->
      incr total;
      match Runtime.try_read_element rt ~dst ~dataset:p.Program.dataset idx with
      | Ok v ->
        if abs_float (v -. Datafile.fill idx) > 1e-9 then
          failwith "exp_store: store served a wrong value";
        incr served
      | Error exn -> raise exn);
  let wall_s = now () -. t0 in
  let s = Runtime.stats rt in
  let cs = Client.stats client in
  let srv = Cache.stats (Server.cache server) in
  Runtime.shutdown rt;
  Client.close client;
  let lookups = srv.Cache.hits + srv.Cache.misses in
  { cache_bytes;
    served = !served;
    total = !total;
    store_fetches = s.Runtime.store_fetches;
    fetched_chunks = cs.Client.fetched_chunks;
    fetched_bytes = cs.Client.fetched_bytes;
    range_gets = cs.Client.range_gets;
    cache_hits = srv.Cache.hits;
    cache_misses = srv.Cache.misses;
    cache_evictions = srv.Cache.evictions;
    hit_rate = (if lookups = 0 then 0.0 else float_of_int srv.Cache.hits /. float_of_int lookups);
    wall_s }

let json_path () =
  let dir = "artifacts" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Filename.concat dir "BENCH_store.json"

let run () =
  header "store" "Content-addressed store: cache budget sweep over an under-debloated CS1";
  let p = Stencils.cs ~n:128 1 in
  let ph = new_phases () in
  let src, image = timed_phase ph "build_debloated_image" (fun () -> build_debloated_image p) in
  let budgets = [ 0; 16 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024 ] in
  let rows =
    timed_phase ph "cache_budget_sweep" (fun () ->
        List.map (fun b -> sweep_row p image ~src ~cache_bytes:b) budgets)
  in
  Printf.printf "  %-12s %8s %8s %8s %9s %9s %9s %7s\n" "cache" "served" "fetches" "chunks"
    "hits" "evicts" "hit-rate" "wall";
  List.iter
    (fun r ->
      Printf.printf "  %9d B %8d %8d %8d %9d %9d %8.1f%% %6.2fs\n" r.cache_bytes r.served
        r.store_fetches r.fetched_chunks r.cache_hits r.cache_evictions
        (100.0 *. r.hit_rate) r.wall_s)
    rows;
  (* the store contract: every ground-truth read is served correctly at
     every cache budget, and a whole-file budget re-fetches nothing *)
  List.iter
    (fun r ->
      if r.served <> r.total then
        failwith
          (Printf.sprintf "exp_store: served %d of %d at budget %d" r.served r.total
             r.cache_bytes))
    rows;
  let open Report.Json in
  let doc =
    Obj
      [ ("experiment", String "exp_store");
        ("program", String p.Program.name);
        ("truth_reads", Int (List.hd rows).total);
        ( "note",
          String
            "CS1 under-debloated (60-test budget); carved reads served from the chunk \
             store over loopback; server-side LRU cache budget swept; every row must \
             serve 100% of ground-truth reads with digest-verified chunks" );
        ( "rows",
          List
            (List.map
               (fun r ->
                 Obj
                   [ ("cache_bytes", Int r.cache_bytes);
                     ("served", Int r.served);
                     ("total", Int r.total);
                     ("store_fetches", Int r.store_fetches);
                     ("fetched_chunks", Int r.fetched_chunks);
                     ("fetched_bytes", Int r.fetched_bytes);
                     ("range_gets", Int r.range_gets);
                     ("cache_hits", Int r.cache_hits);
                     ("cache_misses", Int r.cache_misses);
                     ("cache_evictions", Int r.cache_evictions);
                     ("cache_hit_rate", Float r.hit_rate);
                     ("wall_s", Float r.wall_s) ])
               rows) );
        ("phase_timings", phases_json ph) ]
  in
  let path = json_path () in
  let oc = open_out path in
  output_string oc (Report.Json.to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  Sys.remove src
