(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation (SecV); see
   DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-
   measured numbers.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig7 table3  # selected experiments
     dune exec bench/main.exe -- --list       # available ids *)

let experiments =
  [ ("table1", "Table I: stencil types", Exp_overview.table1);
    ("table2", "Table II: the 11 programs", Exp_overview.table2);
    ("fig1", "Figure 1: cross-stencil runs", Exp_overview.fig1);
    ("fig4", "Figure 4: EE vs boundary-EE", Exp_schedules.run);
    ("fig6", "Figure 6: hull merge vs single hull", Exp_overview.fig6);
    ("fig7", "Figure 7: recall at fixed budget", Exp_accuracy.fig7);
    ("fig8", "Figures 8+9: precision and identified bloat", Exp_accuracy.fig8_fig9);
    ("missed", "SecV-D1: missed valuation rates", Exp_accuracy.missed_rates);
    ("fig10", "Figure 10: budget to reach Kondo's recall", Exp_time.run);
    ("fig11a", "Figure 11a: accuracy vs data size", Exp_sensitivity.fig11a);
    ("fig11bc", "Figures 11b/c: merge-threshold sensitivity", Exp_sensitivity.fig11bc);
    ("ablation", "Design-choice ablations", Exp_sensitivity.ablation);
    ("audit", "SecV-D6: audit overhead", Exp_audit.run);
    ("table3", "Table III: ARD and MSI", Exp_realapps.run);
    ("idioms", "Extension: real-application subsetting idioms", Exp_idioms.run);
    ("filelevel", "Extension: offset-level vs file-level debloating", Exp_filelevel.run);
    ("parallel", "Parallel engine: sequential vs domain-parallel wall time", Exp_parallel.run);
    ("faults", "Fault tolerance: served reads under swept fault rates", Exp_faults.run);
    ("store", "Content-addressed store: cache budget sweep over served misses", Exp_store.run);
    ("micro", "Bechamel micro-benchmarks", Microbench.run) ]

let list_ids () =
  print_endline "available experiments:";
  List.iter (fun (id, title, _) -> Printf.printf "  %-10s %s\n" id title) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] -> list_ids ()
  | [] ->
    let t0 = Exp_common.now () in
    List.iter (fun (_, _, f) -> f ()) experiments;
    Printf.printf "\nAll experiments completed in %.1fs.\n" (Exp_common.now () -. t0)
  | ids ->
    List.iter
      (fun id ->
        match List.find_opt (fun (i, _, _) -> i = id) experiments with
        | Some (_, _, f) -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S\n" id;
          list_ids ();
          exit 1)
      ids
