(* kondo: the command-line front end.

   Subcommands:
     programs   list the registered benchmark programs
     mkdata     write a program's dense KH5 data file
     debloat    fuzz + carve + write the debloated KH5 file
     run        execute a program against a KH5 file (original or debloated)
     report     evaluate Kondo against a program's exact ground truth
     inspect    print a KH5 file's datasets *)

open Cmdliner
open Kondo_dataarray
open Kondo_workload
open Kondo_container
open Kondo_core

let find_program name n m =
  match Suite.by_name ?n ?m name with
  | Some p -> p
  | None ->
    Printf.eprintf "unknown program %S; try `kondo programs`\n" name;
    exit 2

(* ---- common options ---- *)

let program_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "p"; "program" ] ~docv:"NAME" ~doc:"Benchmark program (see $(b,kondo programs)).")

let n_arg =
  Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"2D array dimension (default 128).")

let m_arg =
  Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M" ~doc:"3D array dimension (default 64).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for the fuzz schedule.")

let max_iter_arg =
  Arg.(
    value
    & opt int Config.default.Config.max_iter
    & info [ "max-iter" ] ~docv:"ITERS" ~doc:"Maximum fuzz iterations (paper default 2000).")

let jobs_arg =
  Arg.(
    value
    & opt int (Kondo_parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel fan-out (campaign rounds, multi-program \
           debloating, per-cell hulls). Defaults to the hardware domain count; 1 is the \
           sequential legacy path. Results are bit-identical for any value.")

let config_of ?(jobs = 1) seed max_iter =
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  Config.with_jobs { Config.default with Config.seed; max_iter } jobs

(* ---- observability options ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans across the fuzz/carve/runtime/store layers and write them to \
           FILE as Chrome trace_event JSON (open in chrome://tracing or Perfetto). \
           Instrumentation never affects outputs: results are byte-identical with or \
           without this flag.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the process metrics registry (counters, gauges, latency histograms) to \
           FILE in Prometheus text exposition format when the command finishes.")

(* Install the ambient tracer for the duration of [f], then export the
   requested artifacts.  The tracer is only created when --trace was
   given, so untraced runs keep the zero-cost fast path. *)
let with_obs ~trace ~metrics f =
  let tracer = Option.map (fun _ -> Kondo_obs.Trace.create ()) trace in
  Kondo_obs.Obs.set_tracer tracer;
  Fun.protect
    ~finally:(fun () ->
      Kondo_obs.Obs.set_tracer None;
      (match (trace, tracer) with
      | Some file, Some tr ->
        let oc = open_out file in
        output_string oc (Kondo_obs.Trace.to_chrome_json tr);
        output_char oc '\n';
        close_out oc
      | _ -> ());
      match metrics with
      | None -> ()
      | Some file ->
        let oc = open_out file in
        output_string oc (Kondo_obs.Registry.expose Kondo_obs.Registry.default);
        close_out oc)
    f

(* ---- programs ---- *)

let programs_cmd =
  let run () =
    Printf.printf "%-7s %-8s %-9s %s\n" "name" "dims" "|Theta|" "description";
    List.iter
      (fun name ->
        match Suite.by_name name with
        | Some p ->
          Printf.printf "%-7s %-8s %-9d %s\n" p.Program.name
            (Shape.to_string p.Program.shape) (Program.param_count p) p.Program.description
        | None -> ())
      Suite.names
  in
  Cmd.v (Cmd.info "programs" ~doc:"List the registered benchmark programs.")
    Term.(const run $ const ())

(* ---- mkdata ---- *)

let path_arg idx doc = Arg.(required & pos idx (some string) None & info [] ~docv:"PATH" ~doc)

let mkdata_cmd =
  let run name n m path =
    let p = find_program name n m in
    Datafile.write_for ~path p;
    Printf.printf "wrote %s: %s of %s\n" path
      (Shape.to_string p.Program.shape)
      (Dtype.to_string p.Program.dtype)
  in
  Cmd.v
    (Cmd.info "mkdata" ~doc:"Write a program's dense KH5 data file.")
    Term.(const run $ program_arg $ n_arg $ m_arg $ path_arg 0 "Output KH5 path.")

(* ---- debloat ---- *)

let debloat_cmd =
  let run name n m seed max_iter jobs trace metrics src dst =
    let p = find_program name n m in
    let config = config_of ~jobs seed max_iter in
    let report =
      with_obs ~trace ~metrics (fun () -> Pipeline.debloat_file ~config p ~src ~dst)
    in
    let size path =
      let ic = open_in_bin path in
      let s = in_channel_length ic in
      close_in ic;
      s
    in
    Printf.printf "%s: %d debloat tests, %d hulls, kept %d of %d indices\n" p.Program.name
      report.Pipeline.fuzz.Schedule.evaluations
      (List.length report.Pipeline.carve.Carver.hulls)
      (Index_set.cardinal report.Pipeline.approx)
      (Shape.nelems p.Program.shape);
    Printf.printf "%s (%d KiB) -> %s (%d KiB)\n" src (size src / 1024) dst (size dst / 1024)
  in
  Cmd.v
    (Cmd.info "debloat" ~doc:"Fuzz, carve, and write the debloated KH5 file.")
    Term.(
      const run $ program_arg $ n_arg $ m_arg $ seed_arg $ max_iter_arg $ jobs_arg
      $ trace_arg $ metrics_arg
      $ path_arg 0 "Source (dense) KH5 file."
      $ path_arg 1 "Destination (debloated) KH5 file.")

(* ---- run ---- *)

let params_arg =
  Arg.(
    required
    & opt (some (list float)) None
    & info [ "params" ] ~docv:"V1,V2,..." ~doc:"Parameter value for the run.")

let remote_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"SRC"
        ~doc:
          "Serve carved-away offsets from this source file (the \"remote server\" copy of \
           paper SecVI) through the fault-tolerant fetch path: retry with capped \
           exponential backoff, a per-mount circuit breaker, and CRC-verified payloads. \
           Reads the remote cannot serve degrade to structured misses instead of \
           aborting the run.")

let remote_retries_arg =
  Arg.(
    value
    & opt int 3
    & info [ "remote-retries" ] ~docv:"N"
        ~doc:"Maximum retries per remote fetch (so N+1 attempts in total).")

let remote_deadline_arg =
  Arg.(
    value
    & opt float 5000.0
    & info [ "remote-deadline-ms" ] ~docv:"MS"
        ~doc:"Virtual time budget per remote fetch across attempts and backoff delays.")

let fault_plan_arg =
  Arg.(
    value
    & opt string "none"
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault-injection plan for remote fetches (test drives), e.g. \
           seed=7,transient=0.2,timeout=0.05,corrupt=0.1. Keys: seed, transient, \
           timeout, timeout-cost-ms, short, corrupt, permanent; rates are per-call \
           probabilities in [0,1]. The n-th decision at a call site is a pure function \
           of (seed, site, n), so runs reproduce exactly.")

let parse_fault_plan s =
  match Kondo_faults.Fault_plan.of_string s with
  | Ok plan -> plan
  | Error msg ->
    Printf.eprintf "bad --fault-plan: %s\n" msg;
    exit 2

let remote_store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote-store" ] ~docv:"SOCKET"
        ~doc:
          "Serve carved-away offsets from a kondo chunk server listening on this \
           Unix-domain socket (see $(b,kondo serve)). The store is tried ahead of \
           $(b,--remote); fetched chunks are verified against the manifest's content \
           digests and cached client-side. Store failures fall back to $(b,--remote) \
           when it is also set, else degrade.")

let store_name_arg =
  Arg.(
    value
    & opt string ""
    & info [ "store-name" ] ~docv:"NAME"
        ~doc:
          "Name the served file was registered under at the chunk server. Defaults to \
           matching the dataset suffix alone, which suffices when the server serves one \
           file.")

let store_cache_arg =
  Arg.(
    value
    & opt int (256 * 1024)
    & info [ "store-cache-bytes" ] ~docv:"BYTES"
        ~doc:"Client-side chunk cache budget (default 256 KiB).")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the runtime's statistics — plus the store client's counters when \
           $(b,--remote-store) is set — to FILE as a JSON object (feed it to \
           $(b,kondo report --runtime-stats)).")

let read_whole_file path =
  let ic = open_in_bin path in
  let b = Bytes.create (in_channel_length ic) in
  really_input ic b 0 (Bytes.length b);
  close_in ic;
  b

(* Order-sensitive digest of every value the run read, so CI can check a
   store-served run byte-for-byte against a local one. *)
let checksum_empty = Merkle.hash_bytes Bytes.empty
let checksum_add acc v = Merkle.hash_pair acc (Int64.bits_of_float v)

(* Build the runtime's store source from a chunk-server client: resolve
   (and memoize) one manifest per dataset, then serve each miss with
   [Client.read_bytes] over the dataset's logical data section. *)
let store_source_of_client client ~socket ~store_name =
  let manifests = Hashtbl.create 4 in
  let manifest_for dataset =
    match Hashtbl.find_opt manifests dataset with
    | Some m -> Ok m
    | None ->
      let key =
        if store_name = "" then "#" ^ dataset else store_name ^ "#" ^ dataset
      in
      (match Kondo_store.Client.manifest client ~name:key with
      | Ok m ->
        Hashtbl.add manifests dataset m;
        Ok m
      | Error _ as e -> e)
  in
  { Runtime.source_name = "unix:" ^ socket;
    store_fetch =
      (fun ~dst:_ ~dataset ~offset ~length ->
        match manifest_for dataset with
        | Error e -> Error e
        | Ok m -> Kondo_store.Client.read_bytes client m ~offset ~length) }

(* Run the program's access plan through the hardened container runtime:
   local reads from [path], carved-away offsets served by the chunk
   store and/or fetched from [src] under the retry/breaker machinery
   (and any injected faults). *)
let run_with_runtime p v ~path ~src ~remote_store ~store_name ~store_cache ~retries
    ~deadline_ms ~plan ~stats_json =
  let retry =
    { Kondo_faults.Retry.default with
      Kondo_faults.Retry.max_attempts = retries + 1;
      deadline_ms }
  in
  let dst = "/data" in
  let spec =
    { Spec.empty with
      Spec.base = "scratch";
      data_deps = [ { Spec.src = Option.value src ~default:""; dst } ] }
  in
  let image = Image.build spec ~fetch:(fun _ -> read_whole_file path) in
  let dir = Filename.temp_file "kondo_run" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let client, store =
    match remote_store with
    | None -> (None, None)
    | Some socket ->
      let conn =
        try Kondo_store.Transport.unix_connect socket
        with Unix.Unix_error (e, _, _) ->
          Printf.eprintf "cannot connect to store socket %s: %s\n" socket
            (Unix.error_message e);
          exit 2
      in
      let cache = Kondo_store.Cache.create ~budget_bytes:store_cache () in
      let client = Kondo_store.Client.connect ~retry ~faults:plan ~cache conn in
      (Some client, Some (store_source_of_client client ~socket ~store_name))
  in
  let rt = Runtime.boot ~remote:(src <> None) ?store ~faults:plan ~retry ~image ~dir () in
  let degraded = ref 0 in
  let csum = ref checksum_empty in
  Program.iter_access p v (fun idx ->
      match Runtime.try_read_element rt ~dst ~dataset:p.Program.dataset idx with
      | Ok value -> csum := checksum_add !csum value
      | Error (Runtime.Degraded _) -> incr degraded
      | Error exn -> raise exn);
  let s = Runtime.stats rt in
  Printf.printf "read %d elements: %d local, %d store-served, %d remote-fetched, %d degraded\n"
    s.Runtime.reads
    (s.Runtime.reads - s.Runtime.misses)
    s.Runtime.store_fetches s.Runtime.remote_fetches !degraded;
  Printf.printf "remote: %d retries, %d breaker trips, %d corrupt payloads, %d bytes fetched\n"
    s.Runtime.retries s.Runtime.breaker_trips s.Runtime.corrupt_fetches s.Runtime.remote_bytes;
  let extra =
    match client with
    | None -> []
    | Some c ->
      let cs = Kondo_store.Client.stats c in
      Printf.printf
        "store: %d fetched chunks over %d range GETs, %d corrupt, %d retries, %d client cache hits\n"
        cs.Kondo_store.Client.fetched_chunks cs.Kondo_store.Client.range_gets
        cs.Kondo_store.Client.corrupt_fetches cs.Kondo_store.Client.retries
        cs.Kondo_store.Client.cache_hits;
      let server_counters =
        match Kondo_store.Client.stat c with
        | Ok i ->
          Printf.printf "store server: %d chunks, cache %d hits / %d misses, %d coalesced\n"
            i.Kondo_store.Proto.chunks i.Kondo_store.Proto.cache_hits
            i.Kondo_store.Proto.cache_misses i.Kondo_store.Proto.cache_coalesced;
          [ ("server_cache_hits", i.Kondo_store.Proto.cache_hits);
            ("server_cache_misses", i.Kondo_store.Proto.cache_misses);
            ("server_cache_coalesced", i.Kondo_store.Proto.cache_coalesced) ]
        | Error _ -> []
      in
      [ ("client_requests", cs.Kondo_store.Client.requests);
        ("client_range_gets", cs.Kondo_store.Client.range_gets);
        ("client_fetched_chunks", cs.Kondo_store.Client.fetched_chunks);
        ("client_fetched_bytes", cs.Kondo_store.Client.fetched_bytes);
        ("client_corrupt_fetches", cs.Kondo_store.Client.corrupt_fetches);
        ("client_retries", cs.Kondo_store.Client.retries);
        ("client_cache_hits", cs.Kondo_store.Client.cache_hits) ]
      @ server_counters
  in
  Printf.printf "value checksum: %016Lx\n" !csum;
  if !degraded > 0 then
    Printf.printf "run completed with degraded reads — %d offsets unavailable locally and remotely\n"
      !degraded
  else Printf.printf "run fully served\n";
  (match stats_json with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (Runtime.stats_to_json ~extra s);
    output_char oc '\n';
    close_out oc;
    Printf.printf "stats written to %s\n" file);
  Runtime.shutdown rt;
  Option.iter Kondo_store.Client.close client

let run_cmd =
  let run name n m params path remote retries deadline_ms fault_plan remote_store
      store_name store_cache stats_json trace metrics =
    let p = find_program name n m in
    let v = Array.of_list params in
    if Array.length v <> Program.arity p then begin
      Printf.eprintf "%s expects %d parameters\n" p.Program.name (Program.arity p);
      exit 2
    end;
    let plan = parse_fault_plan fault_plan in
    with_obs ~trace ~metrics @@ fun () ->
    match (remote, remote_store) with
    | (Some _, _ | _, Some _) ->
      run_with_runtime p v ~path ~src:remote ~remote_store ~store_name ~store_cache
        ~retries ~deadline_ms ~plan ~stats_json
    | None, None ->
      let f = Kondo_h5.File.open_file path in
      (try
         let elems = ref 0 in
         let csum = ref checksum_empty in
         Program.iter_access p v (fun idx ->
             let value = Kondo_h5.File.read_element f p.Program.dataset idx in
             incr elems;
             csum := checksum_add !csum value);
         Printf.printf "read %d elements — run supported by this file\n" !elems;
         Printf.printf "value checksum: %016Lx\n" !csum
       with Kondo_h5.File.Data_missing miss ->
         Printf.printf "DATA MISSING at index (%s), byte offset %d — not containerized for this valuation\n"
           (String.concat ","
              (Array.to_list (Array.map string_of_int miss.Kondo_h5.File.index)))
           miss.Kondo_h5.File.offset;
         Kondo_h5.File.close f;
         exit 1);
      Kondo_h5.File.close f
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program against a KH5 file (original or debloated).")
    Term.(
      const run $ program_arg $ n_arg $ m_arg $ params_arg $ path_arg 0 "KH5 data file."
      $ remote_arg $ remote_retries_arg $ remote_deadline_arg $ fault_plan_arg
      $ remote_store_arg $ store_name_arg $ store_cache_arg $ stats_json_arg
      $ trace_arg $ metrics_arg)

(* ---- serve ---- *)

let serve_cmd =
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")
  in
  let store_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store-file" ] ~docv:"FILE"
          ~doc:
            "Persist chunks to this crash-safe backing file. An existing file is loaded \
             — torn tails from a crash are salvaged and truncated.")
  in
  let cache_bytes_arg =
    Arg.(
      value
      & opt int (1024 * 1024)
      & info [ "cache-bytes" ] ~docv:"BYTES"
          ~doc:"Server-side read cache budget (default 1 MiB).")
  in
  let chunk_size_arg =
    Arg.(
      value
      & opt int Kondo_store.Chunk.default_size
      & info [ "chunk-size" ] ~docv:"BYTES" ~doc:"Chunk size for served files.")
  in
  let files_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"KH5" ~doc:"Dense KH5 files to serve.")
  in
  let run socket store_file cache_bytes chunk_size jobs files =
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
      exit 2
    end;
    let store = Kondo_store.Block_store.create ?path:store_file () in
    (match store_file with
    | Some f ->
      let salvaged, intact = Kondo_store.Block_store.load_report store in
      if salvaged > 0 || not intact then
        Printf.printf "loaded %d chunk(s) from %s%s\n%!" salvaged f
          (if intact then "" else " (torn tail salvaged)")
    | None -> ());
    let server = Kondo_store.Server.create ~cache_bytes ~jobs ~store () in
    List.iter
      (fun path ->
        List.iter
          (fun m ->
            Printf.printf "serving %s: %d chunk(s), %d bytes\n%!" m.Kondo_store.Chunk.name
              (Kondo_store.Chunk.chunk_count m) m.Kondo_store.Chunk.total_len)
          (Kondo_store.Server.add_kh5 server ~chunk_size ~name:(Filename.basename path) path))
      files;
    Kondo_store.Server.serve_unix server ~socket
      ~on_ready:(fun () -> Printf.printf "listening on %s\n%!" socket)
      ~stop:(fun () -> false)
      ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve dense KH5 files as content-addressed chunks over a Unix-domain socket \
          (the server side of $(b,kondo run --remote-store)). Runs until killed.")
    Term.(
      const run $ socket_arg $ store_file_arg $ cache_bytes_arg $ chunk_size_arg
      $ jobs_arg $ files_arg)

(* ---- stats ---- *)

let stats_cmd =
  let run socket =
    let conn =
      try Kondo_store.Transport.unix_connect socket
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot connect to store socket %s: %s\n" socket
          (Unix.error_message e);
        exit 2
    in
    let client = Kondo_store.Client.connect conn in
    Fun.protect
      ~finally:(fun () -> Kondo_store.Client.close client)
      (fun () ->
        match Kondo_store.Client.scrape client with
        | Ok text -> print_string text
        | Error e ->
          Printf.eprintf "scrape failed: %s\n" (Kondo_faults.Fault.to_string e);
          exit 1)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Scrape a live $(b,kondo serve) process: print its metrics registry (request, \
          cache, and pool counters plus latency histograms) in Prometheus text \
          exposition format.")
    Term.(const run $ path_arg 0 "Unix-domain socket the server listens on.")

(* ---- report ---- *)

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let runtime_stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "runtime-stats" ] ~docv:"FILE"
        ~doc:
          "Fold a $(b,kondo run --stats-json) file into the report, surfacing the \
           remote/store fetch and cache counters alongside the debloat metrics.")

let fuzz_trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fuzz-trace" ] ~docv:"FILE"
        ~doc:
          "Dump the fuzz schedule's per-iteration outcomes (the paper's Fig. 4 scatter \
           data) to FILE as Chrome trace_event JSON: one event per debloat test at \
           ts = iteration, categorized useful/non-useful.")

let report_cmd =
  let run name n m seed max_iter jobs json runtime_stats fuzz_trace trace metrics =
    let p = find_program name n m in
    let config = config_of ~jobs seed max_iter in
    let r = with_obs ~trace ~metrics (fun () -> Pipeline.evaluate ~config p) in
    let stats_raw =
      Option.map
        (fun file -> String.trim (Bytes.unsafe_to_string (read_whole_file file)))
        runtime_stats
    in
    (match fuzz_trace with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Report.fuzz_trace_json r.Pipeline.fuzz);
      output_char oc '\n';
      close_out oc);
    if json then begin
      let base = Report.pipeline_json p r in
      let j =
        match base with
        | Report.Json.Obj fields ->
          let extra =
            (match stats_raw with
            | Some raw -> [ ("runtime_stats", Report.Json.Raw raw) ]
            | None -> [])
            @ [ ( "metrics",
                  Report.Json.Raw (Kondo_obs.Registry.to_json Kondo_obs.Registry.default)
                ) ]
          in
          Report.Json.Obj (fields @ extra)
        | _ -> base
      in
      print_endline (Report.Json.to_string ~indent:2 j)
    end
    else begin
      print_string (Report.pipeline_text p r);
      (match stats_raw with
      | Some raw -> Printf.printf "runtime stats: %s\n" raw
      | None -> ());
      let a = Option.get r.Pipeline.accuracy in
      Printf.printf "truth bloat: %.2f%%\n"
        (100.0 *. (Metrics.bloat_fraction (Program.ground_truth p)));
      ignore a;
      Printf.printf "missed     : %.3f%% of parameter valuations\n"
        (100.0 *. Metrics.missed_valuation_rate p ~approx:r.Pipeline.approx)
    end
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Evaluate Kondo against a program's exact ground truth.")
    Term.(
      const run $ program_arg $ n_arg $ m_arg $ seed_arg $ max_iter_arg $ jobs_arg
      $ json_arg $ runtime_stats_arg $ fuzz_trace_out_arg $ trace_arg $ metrics_arg)

(* ---- invariant ---- *)

let invariant_cmd =
  let run name n m seed max_iter =
    let p = find_program name n m in
    let config = config_of seed max_iter in
    let r = Pipeline.approximate ~config p in
    let carve = r.Pipeline.carve in
    let inv = Invariant.of_carve carve in
    Printf.printf
      "%s: the carved data subset as a disjunctive linear invariant\n(%d clauses, %d constraints):\n\n%s\n"
      p.Program.name
      (List.length (Invariant.clauses inv))
      (Invariant.constraint_count inv) (Invariant.to_string inv)
  in
  Cmd.v
    (Cmd.info "invariant"
       ~doc:"Print the carved subset as a disjunctive linear invariant (paper SecVII).")
    Term.(const run $ program_arg $ n_arg $ m_arg $ seed_arg $ max_iter_arg)

(* ---- audit ---- *)

let log_arg =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc:"Save the event log.")

let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Print the lineage graph in Graphviz form.")

let audit_cmd =
  let run name n m params path log dot =
    let p = find_program name n m in
    let tracer = Kondo_audit.Tracer.create () in
    let f = Kondo_h5.File.open_file ~tracer ~pid:1 path in
    let elems = Program.run_io p f (Array.of_list params) in
    Kondo_h5.File.close f;
    Printf.printf "read %d elements via %d events\n" elems
      (Kondo_audit.Tracer.event_count tracer);
    let offs = Kondo_audit.Tracer.offsets tracer ~pid:1 ~path in
    Printf.printf "accessed byte ranges: %s\n" (Kondo_interval.Interval_set.to_string offs);
    (match log with
    | Some out ->
      Kondo_audit.Event_log.save out (Kondo_audit.Tracer.events tracer);
      Printf.printf "event log saved to %s\n" out
    | None -> ());
    if dot then
      print_string
        (Kondo_provenance.Lineage.to_dot
           (Kondo_provenance.Lineage.of_tracer ~names:(fun _ -> name) tracer))
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Run a program under the fine-grained audit and report offsets.")
    Term.(
      const run $ program_arg $ n_arg $ m_arg $ params_arg $ path_arg 0 "KH5 data file."
      $ log_arg $ dot_arg)

(* ---- campaign ---- *)

let campaign_cmd =
  let state_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "state" ] ~docv:"FILE" ~doc:"Campaign state file (created when absent).")
  in
  let rounds_arg =
    Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"K" ~doc:"Fuzzing rounds to add.")
  in
  let run name n m seed max_iter jobs trace metrics state rounds =
    let p = find_program name n m in
    let config = config_of ~jobs seed max_iter in
    with_obs ~trace ~metrics @@ fun () ->
    let c =
      if Sys.file_exists state then (
        try
          let c, intact = Campaign.salvage p state in
          if not intact then
            Printf.eprintf
              "warning: %s was truncated or corrupt; salvaged %d observed indices over %d rounds\n"
              state
              (Index_set.cardinal (Campaign.observed c))
              (Campaign.rounds c);
          c
        with Invalid_argument msg ->
          Printf.eprintf "cannot resume campaign: %s\n" msg;
          exit 2)
      else Campaign.fresh p
    in
    let before = Index_set.cardinal (Campaign.observed c) in
    let c = Campaign.extend ~config p c rounds in
    Campaign.save c state;
    let approx = Campaign.carve ~config p c in
    Printf.printf
      "%s: %d total rounds; observed %d indices (+%d this session); carved subset %d indices (%.2f%%)\n"
      p.Program.name (Campaign.rounds c)
      (Index_set.cardinal (Campaign.observed c))
      (Index_set.cardinal (Campaign.observed c) - before)
      (Index_set.cardinal approx)
      (100.0 *. Index_set.fraction approx);
    Printf.printf "state saved to %s\n" state
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Extend a resumable fuzzing campaign (paper SecVI: let Kondo run for more time).")
    Term.(
      const run $ program_arg $ n_arg $ m_arg $ seed_arg $ max_iter_arg $ jobs_arg
      $ trace_arg $ metrics_arg $ state_arg $ rounds_arg)

(* ---- replay ---- *)

let replay_cmd =
  let run path =
    let tracer = Kondo_audit.Event_log.replay path in
    Printf.printf "%d events over %d file(s)\n"
      (Kondo_audit.Tracer.event_count tracer)
      (List.length (Kondo_audit.Tracer.paths tracer));
    List.iter
      (fun p ->
        Printf.printf "  %s: %s\n" p
          (Kondo_interval.Interval_set.to_string
             (Kondo_audit.Tracer.offsets_of_path tracer ~path:p)))
      (Kondo_audit.Tracer.paths tracer)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Rebuild offset summaries from a saved event log.")
    Term.(const run $ path_arg 0 "Event log file.")

(* ---- convert ---- *)

let convert_cmd =
  let run src dst =
    let f = Kondo_h5.Netcdf.open_file src in
    Kondo_h5.Netcdf.to_kh5 f dst;
    Printf.printf "converted %d variable(s) from %s to %s\n"
      (List.length (Kondo_h5.Netcdf.vars f))
      src dst;
    Kondo_h5.Netcdf.close f
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert a NetCDF classic file to KH5.")
    Term.(const run $ path_arg 0 "Source NetCDF file." $ path_arg 1 "Destination KH5 file.")

(* ---- inspect ---- *)

let inspect_cmd =
  let run path =
    let f = Kondo_h5.File.open_file path in
    Printf.printf "%s (%d bytes)\n" path (Kondo_h5.File.file_size f);
    List.iter
      (fun ds ->
        let name = ds.Kondo_h5.Dataset.name in
        Printf.printf "  %s [%s]\n" (Kondo_h5.Dataset.to_string ds)
          (if Kondo_h5.File.verify f name then "crc ok" else "CRC MISMATCH");
        List.iter
          (fun (k, attr) ->
            match attr with
            | Kondo_h5.Dataset.Str v -> Printf.printf "    @%s = %S\n" k v
            | Kondo_h5.Dataset.Num v -> Printf.printf "    @%s = %g\n" k v)
          ds.Kondo_h5.Dataset.attrs)
      (Kondo_h5.File.datasets f);
    Kondo_h5.File.close f
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print a KH5 file's datasets.")
    Term.(const run $ path_arg 0 "KH5 file.")

let () =
  let info =
    Cmd.info "kondo" ~version:"1.0.0"
      ~doc:"Provenance-driven data debloating (reproduction of Kondo, ICDE 2024)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ programs_cmd; mkdata_cmd; debloat_cmd; run_cmd; serve_cmd; stats_cmd;
            report_cmd; inspect_cmd; invariant_cmd; audit_cmd; campaign_cmd; replay_cmd;
            convert_cmd ]))
