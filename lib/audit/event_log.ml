open Kondo_faults

let magic_v1 = "KLOG\x01"
let magic = "KLOG\x02"

(* ---- varint encoding (LEB128, unsigned) ---- *)

let put_varint buf v =
  if v < 0 then invalid_arg "Event_log: negative field";
  let rec go v =
    if v < 0x80 then Buffer.add_uint8 buf v
    else begin
      Buffer.add_uint8 buf (v land 0x7F lor 0x80);
      go (v lsr 7)
    end
  in
  go v

let get_varint s pos =
  let rec go shift acc pos =
    if pos >= String.length s then failwith "Event_log: truncated varint";
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then (acc, pos + 1) else go (shift + 7) acc (pos + 1)
  in
  go 0 0 pos

let op_code = function
  | Event.Open -> 0
  | Event.Read -> 1
  | Event.Write -> 2
  | Event.Mmap -> 3
  | Event.Close -> 4

let op_of_code = function
  | 0 -> Event.Open
  | 1 -> Event.Read
  | 2 -> Event.Write
  | 3 -> Event.Mmap
  | 4 -> Event.Close
  | c -> failwith (Printf.sprintf "Event_log: bad op code %d" c)

(* ---- writing ----

   Since v2 every [log] call appends one CRC-framed record group (the
   event plus any path-definition it needs) and flushes, so a crash at
   any byte leaves a salvageable prefix of whole groups. *)

type writer = {
  oc : out_channel;
  paths : (string, int) Hashtbl.t;
  mutable next_path_id : int;
  buf : Buffer.t;
}

let writer_of_channel oc = { oc; paths = Hashtbl.create 8; next_path_id = 0; buf = Buffer.create 64 }

let create_writer path =
  let oc = open_out_bin path in
  output_string oc magic;
  flush oc;
  writer_of_channel oc

let path_id w path =
  match Hashtbl.find_opt w.paths path with
  | Some id -> id
  | None ->
    let id = w.next_path_id in
    w.next_path_id <- id + 1;
    Hashtbl.add w.paths path id;
    (* path definition record: tag 0 *)
    put_varint w.buf 0;
    put_varint w.buf id;
    put_varint w.buf (String.length path);
    Buffer.add_string w.buf path;
    id

let log w (e : Event.t) =
  Buffer.clear w.buf;
  let pid_of_path = path_id w e.Event.path in
  (* event record: tag 1 *)
  put_varint w.buf 1;
  put_varint w.buf e.Event.seq;
  put_varint w.buf e.Event.pid;
  put_varint w.buf pid_of_path;
  put_varint w.buf (op_code e.Event.op);
  put_varint w.buf e.Event.offset;
  put_varint w.buf e.Event.size;
  Frame.write w.oc (Buffer.contents w.buf)

let close_writer w = close_out w.oc

let save path events =
  Frame.atomic_write path (fun oc ->
      output_string oc magic;
      let w = writer_of_channel oc in
      List.iter (log w) events)

(* ---- loading ---- *)

let parse_records paths events payload =
  let n = String.length payload in
  let pos = ref 0 in
  while !pos < n do
    let tag, p = get_varint payload !pos in
    match tag with
    | 0 ->
      let id, p = get_varint payload p in
      let len, p = get_varint payload p in
      if p + len > n then failwith "Event_log: truncated path";
      Hashtbl.replace paths id (String.sub payload p len);
      pos := p + len
    | 1 ->
      let seq, p = get_varint payload p in
      let pid, p = get_varint payload p in
      let path_id, p = get_varint payload p in
      let op, p = get_varint payload p in
      let offset, p = get_varint payload p in
      let size, p = get_varint payload p in
      let op = op_of_code op in
      let path =
        match Hashtbl.find_opt paths path_id with
        | Some s -> s
        | None -> failwith "Event_log: undefined path id"
      in
      events := { Event.seq; pid; path; op; offset; size } :: !events;
      pos := p
    | tag -> failwith (Printf.sprintf "Event_log: bad record tag %d" tag)
  done

let load_v1 buf =
  (* Legacy unframed stream: strict, a truncated tail is an error the
     way it always was. *)
  let s = Bytes.unsafe_to_string buf in
  let n = String.length s in
  let paths : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let events = ref [] in
  let pos = ref (String.length magic_v1) in
  (try
     while !pos < n do
       let tag, p = get_varint s !pos in
       match tag with
       | 0 ->
         let id, p = get_varint s p in
         let len, p = get_varint s p in
         if p + len > n then failwith "Event_log: truncated path";
         Hashtbl.replace paths id (String.sub s p len);
         pos := p + len
       | 1 ->
         let seq, p = get_varint s p in
         let pid, p = get_varint s p in
         let path_id, p = get_varint s p in
         let op, p = get_varint s p in
         let offset, p = get_varint s p in
         let size, p = get_varint s p in
         let op = op_of_code op in
         let path =
           match Hashtbl.find_opt paths path_id with
           | Some pth -> pth
           | None -> failwith "Event_log: undefined path id"
         in
         events := { Event.seq; pid; path; op; offset; size } :: !events;
         pos := p
       | tag -> failwith (Printf.sprintf "Event_log: bad record tag %d" tag)
     done
   with Failure msg -> failwith msg);
  List.rev !events

let load_salvage path =
  let buf =
    try Frame.read_file path with Sys_error msg -> failwith ("Event_log: " ^ msg)
  in
  let have_magic m =
    Bytes.length buf >= String.length m && Bytes.sub_string buf 0 (String.length m) = m
  in
  if have_magic magic then begin
    let frames, intact = Frame.read_all buf ~pos:(String.length magic) in
    let paths : (int, string) Hashtbl.t = Hashtbl.create 8 in
    let events = ref [] in
    List.iter (parse_records paths events) frames;
    (List.rev !events, intact)
  end
  else if have_magic magic_v1 then (load_v1 buf, true)
  else if Bytes.length buf < String.length magic then
    (* shorter than any magic: nothing salvageable, treat as empty *)
    ([], false)
  else failwith "Event_log: bad magic"

let load path = fst (load_salvage path)

let replay path =
  let t = Tracer.create () in
  List.iter
    (fun (e : Event.t) ->
      ignore
        (Tracer.record t ~pid:e.Event.pid ~path:e.Event.path ~op:e.Event.op ~offset:e.Event.offset
           ~size:e.Event.size))
    (load path);
  t
