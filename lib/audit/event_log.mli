(** Persistent binary event logs.

    Kondo's audit "records system call arguments in a data store" (§V)
    so that carving and re-execution can happen offline, after the
    audited runs.  The log format is a compact LEB128-varint stream with
    a path string table (paths repeat across events), written append-only.

    Since format v2 every appended record group is CRC-framed
    ({!Kondo_faults.Frame}) and flushed, so a crash at {e any} byte
    leaves a salvageable prefix: {!load} drops a torn or corrupted tail
    and returns the longest valid event prefix instead of failing the
    whole log.  v1 logs still load.

    A saved log reloads into the exact event list; [replay] folds a log
    into a fresh {!Tracer} to rebuild its interval indexes. *)

type writer

val create_writer : string -> writer
(** Truncates/creates the file and writes the header. *)

val log : writer -> Event.t -> unit
(** Append one CRC-framed record group and flush. *)

val close_writer : writer -> unit

val save : string -> Event.t list -> unit
(** One-shot: write a whole event list atomically (temp file + rename). *)

val load : string -> Event.t list
(** Longest valid prefix of the log; a truncated or corrupted tail is
    dropped, not an error.  @raise Failure on logs that are not event
    logs at all (bad magic, malformed v1 streams). *)

val load_salvage : string -> Event.t list * bool
(** Like {!load}, also reporting whether the log was fully intact
    ([false] when a torn/corrupt tail was dropped). *)

val replay : string -> Tracer.t
(** Load a log and rebuild a tracer from it (event sequence numbers are
    preserved from the log). *)
