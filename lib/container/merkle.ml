type chunk = { offset : int; length : int; hash : int64 }

(* FNV-1a, 64-bit. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let hash_region buf off len =
  let h = ref fnv_offset in
  for i = off to off + len - 1 do
    h := fnv_byte !h (Char.code (Bytes.unsafe_get buf i))
  done;
  !h

let hash_pair a b = fnv_byte (Int64.logxor (Int64.mul a 0x9E3779B97F4A7C15L) b) 0x5B

let hash_bytes buf = hash_region buf 0 (Bytes.length buf)

(* Sliding-window polynomial rolling hash.  The boundary decision depends
   only on the last [window] bytes, so a local edit re-synchronizes chunk
   boundaries within one window — the property that makes content-defined
   dedup survive edits. *)
let window = 48
let roll_mod = 0xFFFFFF

let window_pow =
  (* 31^window mod 2^24 *)
  let p = ref 1 in
  for _ = 1 to window do
    p := !p * 31 land roll_mod
  done;
  !p

let chunk_bytes ?(avg_bits = 12) ?(min_len = 256) ?(max_len = 65536) buf =
  if min_len < 1 || max_len < min_len then invalid_arg "Merkle.chunk_bytes: bad bounds";
  let mask = (1 lsl avg_bits) - 1 in
  let n = Bytes.length buf in
  let chunks = ref [] in
  let start = ref 0 in
  let cut stop =
    if stop > !start then
      chunks :=
        { offset = !start; length = stop - !start; hash = hash_region buf !start (stop - !start) }
        :: !chunks;
    start := stop
  in
  let roll = ref 0 in
  for i = 0 to n - 1 do
    let incoming = Char.code (Bytes.unsafe_get buf i) in
    let outgoing = if i >= window then Char.code (Bytes.unsafe_get buf (i - window)) else 0 in
    roll := ((!roll * 31) + incoming - (outgoing * window_pow)) land roll_mod;
    let len = i - !start + 1 in
    if len >= max_len || (len >= min_len && !roll land mask = mask) then cut (i + 1)
  done;
  cut n;
  List.rev !chunks

type node = Leaf of chunk | Node of { hash : int64; left : node; right : node }

type t = { root : node option; chunk_list : chunk list; total : int }

let node_hash = function Leaf c -> c.hash | Node n -> n.hash

let rec pair_up = function
  | [] -> []
  | [ x ] -> [ x ]
  | a :: b :: rest -> Node { hash = hash_pair (node_hash a) (node_hash b); left = a; right = b } :: pair_up rest

let build ?avg_bits buf =
  let chunk_list = chunk_bytes ?avg_bits buf in
  let rec up = function
    | [] -> None
    | [ x ] -> Some x
    | nodes -> up (pair_up nodes)
  in
  { root = up (List.map (fun c -> Leaf c) chunk_list); chunk_list; total = Bytes.length buf }

let root_hash t = match t.root with None -> fnv_offset | Some n -> node_hash n

let chunks t = t.chunk_list
let total_bytes t = t.total

module HashSet = Set.Make (Int64)

let chunk_hash_set t = HashSet.of_list (List.map (fun c -> c.hash) t.chunk_list)

let transfer_size ~have t =
  List.fold_left
    (fun acc c -> if HashSet.mem c.hash have then acc else acc + c.length)
    0 t.chunk_list

let diff_summary ~old_tree ~new_tree =
  let have = chunk_hash_set old_tree in
  let transferred = transfer_size ~have new_tree in
  (total_bytes new_tree - transferred, transferred)
