(** Content-defined chunking and Merkle trees for container delivery.

    The paper's group previously proposed content-defined Merkle trees
    for efficient container delivery (ref. [31]); this module provides
    that substrate so examples can report how many bytes a user must
    actually transfer when a debloated image replaces a full one (shared
    chunks deduplicate). *)

type chunk = { offset : int; length : int; hash : int64 }

val hash_bytes : bytes -> int64
(** FNV-1a digest of a whole buffer — the same digest {!chunk_bytes}
    assigns to a chunk's content, exposed so other layers (the block
    store) can content-address fixed-size chunks identically. *)

val hash_pair : int64 -> int64 -> int64
(** The interior-node combiner of {!build}'s Merkle tree, exposed so a
    chunk manifest can carry a root digest over its chunk ids. *)

val chunk_bytes : ?avg_bits:int -> ?min_len:int -> ?max_len:int -> bytes -> chunk list
(** Content-defined chunk boundaries via a rolling hash.  [avg_bits]
    (default 12, i.e. ~4 KiB average) sets the boundary mask; chunks are
    clamped to [\[min_len, max_len\]] (defaults 256 and 65536).  The
    chunks tile the input exactly. *)

type t
(** A Merkle tree over the chunk hashes of one blob. *)

val build : ?avg_bits:int -> bytes -> t
val root_hash : t -> int64
val chunks : t -> chunk list
val total_bytes : t -> int

module HashSet : Set.S with type elt = int64

val chunk_hash_set : t -> HashSet.t

val transfer_size : have:HashSet.t -> t -> int
(** Bytes a client holding chunks [have] must download to materialize
    this blob. *)

val diff_summary : old_tree:t -> new_tree:t -> int * int
(** [(reused_bytes, transferred_bytes)] when updating from old to new. *)
