type backend = {
  b_put : int64 -> bytes -> bool;
  b_get : int64 -> bytes option;
  b_remove : int64 -> int;
  b_hashes : unit -> int64 list;
  b_count : unit -> int;
  b_bytes : unit -> int;
}

let memory_backend () =
  let tbl : (int64, bytes) Hashtbl.t = Hashtbl.create 256 in
  let bytes = ref 0 in
  { b_put =
      (fun h c ->
        if Hashtbl.mem tbl h then false
        else begin
          Hashtbl.add tbl h (Bytes.copy c);
          bytes := !bytes + Bytes.length c;
          true
        end);
    b_get = (fun h -> Option.map Bytes.copy (Hashtbl.find_opt tbl h));
    b_remove =
      (fun h ->
        match Hashtbl.find_opt tbl h with
        | None -> 0
        | Some c ->
          Hashtbl.remove tbl h;
          bytes := !bytes - Bytes.length c;
          Bytes.length c);
    b_hashes =
      (fun () -> List.sort Int64.compare (Hashtbl.fold (fun h _ acc -> h :: acc) tbl []));
    b_count = (fun () -> Hashtbl.length tbl);
    b_bytes = (fun () -> !bytes) }

type stored_layer =
  | Stored_env of { cmd : string; bytes : int }
  | Stored_data of { dst : string; size : int; chunks : int64 list }

type manifest = { spec : Spec.t; layers : stored_layer list }

type t = {
  chunks : backend;
  manifests : (string, manifest) Hashtbl.t;
}

let create ?backend () =
  let chunks = match backend with Some b -> b | None -> memory_backend () in
  { chunks; manifests = Hashtbl.create 8 }

let push t ~name image =
  let added = ref 0 in
  let layers =
    List.map
      (function
        | Image.Env e -> Stored_env { cmd = e.cmd; bytes = e.bytes }
        | Image.Data d ->
          let tree = Merkle.build d.content in
          let hashes =
            List.map
              (fun c ->
                if
                  t.chunks.b_put c.Merkle.hash
                    (Bytes.sub d.content c.Merkle.offset c.Merkle.length)
                then added := !added + c.Merkle.length;
                c.Merkle.hash)
              (Merkle.chunks tree)
          in
          Stored_data { dst = d.dst; size = Bytes.length d.content; chunks = hashes })
      image.Image.layers
  in
  Hashtbl.replace t.manifests name { spec = image.Image.spec; layers };
  !added

let find_manifest t name =
  match Hashtbl.find_opt t.manifests name with Some m -> m | None -> raise Not_found

let env_identity cmd = Int64.of_int (Hashtbl.hash cmd)

let pull t ~name ~have =
  let m = find_manifest t name in
  let transferred = ref 0 in
  let layers =
    List.map
      (function
        | Stored_env e ->
          if not (Merkle.HashSet.mem (env_identity e.cmd) have) then
            transferred := !transferred + e.bytes;
          Image.Env { cmd = e.cmd; bytes = e.bytes }
        | Stored_data d ->
          let content = Bytes.create d.size in
          let pos = ref 0 in
          List.iter
            (fun h ->
              let chunk =
                match t.chunks.b_get h with
                | Some c -> c
                | None -> failwith "Registry: dangling chunk"
              in
              Bytes.blit chunk 0 content !pos (Bytes.length chunk);
              pos := !pos + Bytes.length chunk;
              if not (Merkle.HashSet.mem h have) then
                transferred := !transferred + Bytes.length chunk)
            d.chunks;
          Image.Data { dst = d.dst; content })
      m.layers
  in
  ({ Image.spec = m.spec; layers }, !transferred)

let manifest_names t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.manifests [])

let chunk_count t = t.chunks.b_count ()

let stored_bytes t = t.chunks.b_bytes ()

let chunks_of t ~name =
  let m = find_manifest t name in
  List.fold_left
    (fun acc layer ->
      match layer with
      | Stored_env e -> Merkle.HashSet.add (env_identity e.cmd) acc
      | Stored_data d -> List.fold_left (fun acc h -> Merkle.HashSet.add h acc) acc d.chunks)
    Merkle.HashSet.empty m.layers

let gc t ~keep =
  let kept_manifests = List.map (fun name -> (name, find_manifest t name)) keep in
  let live =
    List.fold_left
      (fun acc (_, m) ->
        List.fold_left
          (fun acc layer ->
            match layer with
            | Stored_env _ -> acc
            | Stored_data d -> List.fold_left (fun acc h -> Merkle.HashSet.add h acc) acc d.chunks)
          acc m.layers)
      Merkle.HashSet.empty kept_manifests
  in
  let reclaimed = ref 0 in
  List.iter
    (fun h ->
      if not (Merkle.HashSet.mem h live) then reclaimed := !reclaimed + t.chunks.b_remove h)
    (t.chunks.b_hashes ());
  Hashtbl.reset t.manifests;
  List.iter (fun (name, m) -> Hashtbl.replace t.manifests name m) kept_manifests;
  !reclaimed
