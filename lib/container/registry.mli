(** A content-addressed container registry.

    Models the distribution side of the debloating story (paper refs
    [6] Slacker and [31] content-defined Merkle trees): images are pushed
    as manifests referencing content-defined chunks, chunks deduplicate
    across images and versions, and a pull transfers only the chunks the
    client does not already hold.  This is what makes shipping a
    debloated image next to the original cheap: the kept data chunks are
    shared.

    Chunk storage is pluggable: the default {!memory_backend} is an
    in-process table, while [Kondo_store.Block_store.registry_backend]
    routes every push/pull chunk through the sharded, disk-backed block
    store — the registry and the serve/fetch runtime then share one
    content-addressed chunk universe. *)

type backend = {
  b_put : int64 -> bytes -> bool;   (** store under an id; [true] when new *)
  b_get : int64 -> bytes option;
  b_remove : int64 -> int;          (** bytes reclaimed (0 when absent) *)
  b_hashes : unit -> int64 list;
  b_count : unit -> int;
  b_bytes : unit -> int;
}
(** The chunk-storage interface a registry writes through. *)

val memory_backend : unit -> backend
(** A fresh in-memory chunk table (the historical behaviour). *)

type t

val create : ?backend:backend -> unit -> t
(** Defaults to a fresh {!memory_backend}. *)

val push : t -> name:string -> Image.t -> int
(** Store an image under [name]; returns the bytes of {e new} chunks
    actually added to the store (0 when everything deduplicated). *)

val pull : t -> name:string -> have:Merkle.HashSet.t -> (Image.t * int)
(** Reconstruct the image and report the bytes a client holding [have]
    transfers (env layers count fully unless the exact layer is held —
    identified by its command hash, like a cached base layer).
    @raise Not_found for unknown names. *)

val manifest_names : t -> string list
val chunk_count : t -> int
val stored_bytes : t -> int
(** Data bytes in the chunk store (deduplicated). *)

val chunks_of : t -> name:string -> Merkle.HashSet.t
(** The chunk set of a stored image (what a client holds after pulling
    it).  @raise Not_found. *)

val gc : t -> keep:string list -> int
(** Drop manifests not in [keep] and unreferenced chunks; returns bytes
    reclaimed.  @raise Not_found when a kept name is unknown. *)
