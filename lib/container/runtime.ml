open Kondo_dataarray
open Kondo_faults
module Kfile = Kondo_h5.File

type stats = {
  mutable reads : int;
  mutable misses : int;
  mutable remote_fetches : int;
  mutable remote_bytes : int;
  mutable store_fetches : int;
  mutable store_bytes : int;
  mutable store_fallbacks : int;
  mutable retries : int;
  mutable breaker_trips : int;
  mutable degraded_reads : int;
  mutable corrupt_fetches : int;
}

let stats_fields s =
  [ ("reads", s.reads);
    ("misses", s.misses);
    ("remote_fetches", s.remote_fetches);
    ("remote_bytes", s.remote_bytes);
    ("store_fetches", s.store_fetches);
    ("store_bytes", s.store_bytes);
    ("store_fallbacks", s.store_fallbacks);
    ("retries", s.retries);
    ("breaker_trips", s.breaker_trips);
    ("degraded_reads", s.degraded_reads);
    ("corrupt_fetches", s.corrupt_fetches) ]

let pp_stats fmt s =
  List.iter (fun (k, v) -> Format.fprintf fmt "%-16s %d@." k v) (stats_fields s)

(* Registry mirrors of the monotonic [stats] fields, bumped at the same
   sites so a scrape reconciles exactly with the legacy struct.
   [breaker_trips] is deliberately absent: it is recomputed from the
   per-mount breakers (sync_breaker_stats), and the faults layer already
   exports kondo_breaker_trips_total at the trip site. *)
module Rt_obs = struct
  open Kondo_obs

  let c name help = lazy (Registry.counter ~help Registry.default name)
  let reads = c "kondo_runtime_reads_total" "Element reads issued to the runtime"
  let misses = c "kondo_runtime_misses_total" "Reads that missed the local debloated file"
  let remote_fetches = c "kondo_runtime_remote_fetches_total" "Misses served by the remote source"
  let remote_bytes = c "kondo_runtime_remote_bytes_total" "Bytes fetched from the remote source"
  let store_fetches = c "kondo_runtime_store_fetches_total" "Misses served by the block store"
  let store_bytes = c "kondo_runtime_store_bytes_total" "Bytes fetched from the block store"
  let store_fallbacks =
    c "kondo_runtime_store_fallbacks_total" "Store failures handed to the remote path"
  let retries = c "kondo_runtime_retries_total" "Remote fetch retries"
  let degraded_reads = c "kondo_runtime_degraded_reads_total" "Reads that degraded"
  let corrupt_fetches = c "kondo_runtime_corrupt_fetches_total" "Fetches failing CRC verification"

  let fetch_seconds =
    lazy
      (Registry.histogram ~help:"Latency of serving one miss (store or remote path)"
         Registry.default "kondo_runtime_fetch_seconds")

  let inc ?by m = Registry.inc ?by (Lazy.force m)
end

let stats_to_json ?(extra = []) s =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" k v))
    (stats_fields s @ extra);
  Buffer.add_string b "}";
  Buffer.contents b

type store_source = {
  source_name : string;
  store_fetch :
    dst:string -> dataset:string -> offset:int -> length:int ->
    (bytes, Fault.error) result;
}

type mount = {
  dst : string;
  local : Kfile.t;
  src : string; (* original source path, the "remote server" copy *)
  mutable remote_file : Kfile.t option;
  breaker : Breaker.t;
}

type degraded_cause =
  | Breaker_open
  | Fetch_failed of Fault.error

exception Degraded of { missing : Kfile.missing; cause : degraded_cause }

let cause_to_string = function
  | Breaker_open -> "circuit breaker open"
  | Fetch_failed e -> Fault.to_string e

let () =
  Printexc.register_printer (function
    | Degraded { missing; cause } ->
      Some
        (Printf.sprintf "Runtime.Degraded(%s:%s at offset %d: %s)" missing.Kfile.path
           missing.Kfile.dataset missing.Kfile.offset (cause_to_string cause))
    | _ -> None)

type t = {
  image : Image.t;
  mounts : mount list;
  remote : bool;
  store : store_source option;
  faults : Fault_plan.t;
  retry : Retry.policy;
  rng : Kondo_prng.Rng.t; (* jitter stream: seeded from the plan, advanced per fetch *)
  mutable now_ms : float; (* virtual clock fed by retry outcomes *)
  stats : stats;
}

let boot ?tracer ?(remote = false) ?store ?(faults = Fault_plan.none)
    ?(retry = Retry.default) ?(breaker = Breaker.default) ~image ~dir () =
  Retry.validate retry;
  let mapping = Image.materialize image ~dir in
  let mounts =
    List.map
      (fun (dst, path) ->
        let src =
          match Spec.data_dep_for image.Image.spec dst with
          | Some d -> d.Spec.src
          | None -> ""
        in
        { dst;
          local = Kfile.open_file ?tracer path;
          src;
          remote_file = None;
          breaker = Breaker.create ~config:breaker () })
      mapping
  in
  { image;
    mounts;
    remote;
    store;
    faults;
    retry;
    rng = Kondo_prng.Rng.create (Fault_plan.seed faults);
    now_ms = 0.0;
    stats =
      { reads = 0;
        misses = 0;
        remote_fetches = 0;
        remote_bytes = 0;
        store_fetches = 0;
        store_bytes = 0;
        store_fallbacks = 0;
        retries = 0;
        breaker_trips = 0;
        degraded_reads = 0;
        corrupt_fetches = 0 } }

let mount t dst =
  match List.find_opt (fun m -> String.equal m.dst dst) t.mounts with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Runtime.mount: no mount at %S (mounted: %s)" dst
         (match t.mounts with
         | [] -> "none"
         | ms -> String.concat ", " (List.map (fun m -> m.dst) ms)))

let file t ~dst = (mount t dst).local

let breaker_state t ~dst = Breaker.state (mount t dst).breaker

let remote_file t m =
  match m.remote_file with
  | Some f -> Some f
  | None ->
    if t.remote && m.src <> "" && Sys.file_exists m.src then begin
      let f = Kfile.open_file m.src in
      m.remote_file <- Some f;
      Some f
    end
    else None

let sync_breaker_stats t =
  t.stats.breaker_trips <-
    List.fold_left (fun acc m -> acc + (Breaker.stats m.breaker).Breaker.trips) 0 t.mounts

(* One remote fetch protocol round: the server reads the element and
   returns (payload, CRC-32 of payload); the fault plan may preempt the
   round, truncate the payload, or corrupt it after the CRC was
   computed.  The client end verifies length and CRC — KH5's own data
   corruption defense, reused at element granularity — and converts a
   mismatch into a retryable [Corrupt] error. *)
let fetch_once t m f ~dataset idx =
  let payload_len = 8 in
  let attempt =
    Fault_plan.wrap t.faults
      ~site:("fetch:" ^ m.dst)
      ~shorten:(fun (b, crc) -> (Bytes.sub b 0 (Bytes.length b - 1), crc))
      ~corrupt:(fun (b, crc) ->
        let b = Bytes.copy b in
        Bytes.set_uint8 b 0 (Bytes.get_uint8 b 0 lxor 0xFF);
        (b, crc))
      (fun () ->
        match Kfile.read_element f dataset idx with
        | v ->
          let b = Bytes.create payload_len in
          Bytes.set_int64_le b 0 (Int64.bits_of_float v);
          Ok (b, Kondo_h5.Binio.crc32 b)
        | exception Kfile.Data_missing _ ->
          Error (Fault.Permanent "offset also missing at the remote source")
        | exception Kondo_h5.Binio.Corrupt msg ->
          Error (Fault.Permanent (Printf.sprintf "remote source corrupt (%s)" msg)))
  in
  match attempt with
  | Error _ as e -> e
  | Ok (payload, crc) ->
    if Bytes.length payload <> payload_len then
      Error (Fault.Transient (Printf.sprintf "short read (%d of %d bytes)" (Bytes.length payload) payload_len))
    else if Kondo_h5.Binio.crc32 payload <> crc then begin
      t.stats.corrupt_fetches <- t.stats.corrupt_fetches + 1;
      Rt_obs.inc Rt_obs.corrupt_fetches;
      Error (Fault.Corrupt "payload CRC mismatch")
    end
    else Ok (Int64.float_of_bits (Bytes.get_int64_le payload 0))

let degrade t miss cause =
  t.stats.degraded_reads <- t.stats.degraded_reads + 1;
  Rt_obs.inc Rt_obs.degraded_reads;
  sync_breaker_stats t;
  Error (Degraded { missing = miss; cause })

(* Serve a miss remotely: breaker gate, then retry/backoff around the
   CRC-verified fetch protocol.  Every failure path lands in a
   structured [Degraded] value — never a leaked exception. *)
let fetch_remote t m ~dataset idx (miss : Kfile.missing) =
  match remote_file t m with
  | None -> Error (Kfile.Data_missing miss)
  | Some f ->
    if not (Breaker.allow m.breaker ~now_ms:t.now_ms) then degrade t miss Breaker_open
    else begin
      let outcome =
        Retry.run t.retry ~rng:t.rng (fun ~attempt:_ -> fetch_once t m f ~dataset idx)
      in
      t.now_ms <- t.now_ms +. outcome.Retry.elapsed_ms +. 1.0;
      t.stats.retries <- t.stats.retries + Retry.retries outcome;
      Rt_obs.inc ~by:(Retry.retries outcome) Rt_obs.retries;
      match outcome.Retry.result with
      | Ok v ->
        Breaker.record_success m.breaker;
        t.stats.remote_fetches <- t.stats.remote_fetches + 1;
        Rt_obs.inc Rt_obs.remote_fetches;
        let ds = Kfile.find f dataset in
        let esz = Dtype.size ds.Kondo_h5.Dataset.dtype in
        t.stats.remote_bytes <- t.stats.remote_bytes + esz;
        Rt_obs.inc ~by:esz Rt_obs.remote_bytes;
        sync_breaker_stats t;
        Ok v
      | Error e ->
        Breaker.record_failure m.breaker ~now_ms:t.now_ms;
        degrade t miss (Fetch_failed e)
    end

(* Serve a miss from the chunk-store source: one element's bytes at the
   miss offset of the dataset's logical data section.  A store failure
   (or a wrong-sized payload) counts as a fallback and hands the miss to
   the remote file path when one is configured, else degrades. *)
let fetch_store t m ~dataset idx (miss : Kfile.missing) s =
  let ds = Kfile.find m.local dataset in
  let dt = ds.Kondo_h5.Dataset.dtype in
  let esz = Dtype.size dt in
  let outcome =
    match s.store_fetch ~dst:m.dst ~dataset ~offset:miss.Kfile.offset ~length:esz with
    | Ok b when Bytes.length b = esz -> Ok b
    | Ok b ->
      Error
        (Fault.Corrupt
           (Printf.sprintf "store %s returned %d bytes, wanted %d" s.source_name
              (Bytes.length b) esz))
    | Error e -> Error e
  in
  match outcome with
  | Ok b ->
    t.stats.store_fetches <- t.stats.store_fetches + 1;
    t.stats.store_bytes <- t.stats.store_bytes + esz;
    Rt_obs.inc Rt_obs.store_fetches;
    Rt_obs.inc ~by:esz Rt_obs.store_bytes;
    Ok (Dtype.decode dt b 0)
  | Error e ->
    t.stats.store_fallbacks <- t.stats.store_fallbacks + 1;
    Rt_obs.inc Rt_obs.store_fallbacks;
    if t.remote then fetch_remote t m ~dataset idx miss
    else degrade t miss (Fetch_failed e)

let try_read_element t ~dst ~dataset idx =
  let m = mount t dst in
  t.stats.reads <- t.stats.reads + 1;
  Rt_obs.inc Rt_obs.reads;
  match Kfile.read_element m.local dataset idx with
  | v -> Ok v
  | exception Kfile.Data_missing miss ->
    t.stats.misses <- t.stats.misses + 1;
    Rt_obs.inc Rt_obs.misses;
    let t0 = Kondo_obs.Clock.now Kondo_obs.Clock.real in
    let result =
      match t.store with
      | Some s -> fetch_store t m ~dataset idx miss s
      | None -> fetch_remote t m ~dataset idx miss
    in
    Kondo_obs.Registry.observe
      (Lazy.force Rt_obs.fetch_seconds)
      (Float.max 0.0 (Kondo_obs.Clock.now Kondo_obs.Clock.real -. t0));
    result

let read_element t ~dst ~dataset idx =
  match try_read_element t ~dst ~dataset idx with Ok v -> v | Error exn -> raise exn

let read_slab t ~dst ~dataset slab f =
  let m = mount t dst in
  let shape = (Kfile.find m.local dataset).Kondo_h5.Dataset.shape in
  Hyperslab.iter ~clip:shape slab (fun idx -> f idx (read_element t ~dst ~dataset idx))

let stats t = t.stats

let shutdown t =
  List.iter
    (fun m ->
      Kfile.close m.local;
      Option.iter Kfile.close m.remote_file)
    t.mounts
