open Kondo_dataarray
open Kondo_audit
open Kondo_faults

(** Kondo's user-side runtime (paper §III, hardened per §VI).

    Boots an image in a directory, opens its (possibly debloated) data
    files, and serves reads.  An access to a carved-away offset raises
    the data-missing exception — or, when remote fallback is enabled
    (§VI), fetches the value from the original file at its source
    location the way a container runtime pulls missing offsets from a
    remote server.

    The remote path is fault-tolerant: fetches run under a retry
    combinator with capped exponential backoff and a deadline budget, a
    per-mount circuit breaker stops hammering a failing source, and
    payloads are CRC-32-verified (a mismatch is a retryable fault).  A
    {!Fault_plan} injects deterministic failures into the fetch protocol
    for tests and benches.  When every recovery avenue is exhausted the
    read degrades to a structured {!Degraded} error carrying the missing
    offset and the cause — never an arbitrary leaked exception.
    Statistics account for every path. *)

type stats = {
  mutable reads : int;          (** element reads served *)
  mutable misses : int;         (** reads that hit carved-away data *)
  mutable remote_fetches : int; (** misses satisfied from the remote source file *)
  mutable remote_bytes : int;   (** bytes pulled from the remote source file *)
  mutable store_fetches : int;  (** misses satisfied by the chunk-store source *)
  mutable store_bytes : int;    (** bytes served by the chunk-store source *)
  mutable store_fallbacks : int;(** store-path failures that fell back to the file path *)
  mutable retries : int;        (** extra fetch attempts beyond the first *)
  mutable breaker_trips : int;  (** circuit-breaker open transitions *)
  mutable degraded_reads : int; (** remote-path reads that degraded to {!Degraded} *)
  mutable corrupt_fetches : int;(** payloads that failed CRC verification *)
}

val pp_stats : Format.formatter -> stats -> unit
(** Human-readable one-count-per-line rendering (for [kondo run] and
    [kondo report]). *)

val stats_to_json : ?extra:(string * int) list -> stats -> string
(** The stats as a JSON object; [extra] appends counters from
    surrounding layers (store client, caches) to the same object. *)

type store_source = {
  source_name : string;  (** for messages, e.g. ["unix:/run/kondo.sock"] *)
  store_fetch :
    dst:string -> dataset:string -> offset:int -> length:int ->
    (bytes, Kondo_faults.Fault.error) result;
      (** Serve [length] bytes at [offset] of the named dataset's
          logical data section (the byte space {!Kondo_h5.File.missing}
          offsets are expressed in). *)
}
(** A pluggable miss-serving source — how the content-addressed chunk
    store ([Kondo_store.Client]) plugs into the runtime without the
    container layer depending on it. *)

type degraded_cause =
  | Breaker_open                  (** the mount's circuit breaker refused the fetch *)
  | Fetch_failed of Fault.error   (** last error once retries/deadline were exhausted *)

exception Degraded of { missing : Kondo_h5.File.missing; cause : degraded_cause }
(** The structured data-missing-with-cause failure of the remote path:
    which offset was missing locally, and why the remote fetch could not
    serve it. *)

val cause_to_string : degraded_cause -> string

type t

val boot :
  ?tracer:Tracer.t ->
  ?remote:bool ->
  ?store:store_source ->
  ?faults:Fault_plan.t ->
  ?retry:Retry.policy ->
  ?breaker:Breaker.config ->
  image:Image.t ->
  dir:string ->
  unit ->
  t
(** Materialize the image's data layers under [dir] and open them.
    [remote] (default false) enables fallback to each data dependency's
    [src] file.  [store] plugs a chunk-store source in {e ahead} of the
    file fallback: a miss tries the store first and only falls back to
    the source file (when [remote] is also set) or degrades when the
    store cannot serve it.  [faults] (default {!Fault_plan.none})
    injects deterministic failures into remote file fetches; [retry]
    and [breaker] tune the recovery machinery.  [tracer] audits the
    container's reads. *)

val read_element : t -> dst:string -> dataset:string -> int array -> float
(** @raise Kondo_h5.File.Data_missing when the offset was carved away
    and remote fallback is off or the source file is unavailable.
    @raise Degraded when remote fallback was attempted and exhausted
    its retry budget, hit its circuit breaker, or failed permanently. *)

val try_read_element :
  t -> dst:string -> dataset:string -> int array -> (float, exn) result
(** Non-raising variant: [Error] carries exactly the exception
    {!read_element} would have raised. *)

val read_slab :
  t -> dst:string -> dataset:string -> Hyperslab.t -> (int array -> float -> unit) -> unit

val file : t -> dst:string -> Kondo_h5.File.t
(** Direct access to an opened data file.
    @raise Invalid_argument for an unknown mount point, naming the
    requested destination and the available mounts. *)

val breaker_state : t -> dst:string -> Breaker.state
(** The mount's circuit-breaker state. *)

val stats : t -> stats

val shutdown : t -> unit
