open Kondo_dataarray
open Kondo_workload
open Kondo_faults

type t = { name : string; rounds : int; observed : Index_set.t }

let fresh p =
  { name = p.Program.name; rounds = 0; observed = Index_set.create p.Program.shape }

let observed t = t.observed
let rounds t = t.rounds
let program_name t = t.name

let extend ~config p t k =
  if not (String.equal t.name p.Program.name) then invalid_arg "Campaign.extend: program mismatch";
  let observed = Index_set.copy t.observed in
  (* Rounds are independent schedules, fanned out over [config.jobs]
     domains; each is seeded purely from its absolute round number, so
     the accumulated set is the same whatever the jobs count or how the
     k rounds were split across sessions. *)
  let found = Schedule.run_rounds ~config p ~first_round:(t.rounds + 1) ~rounds:k in
  Index_set.union_into observed found;
  { t with rounds = t.rounds + k; observed }

let carve ~config p t =
  let result = Carver.carve ~config t.observed in
  let approx = Carver.rasterize p.Program.shape result.Carver.hulls in
  Index_set.union_into approx t.observed;
  approx

let magic_v1 = "KCAM\x01"
let magic = "KCAM\x02"

(* v2 layout: magic, then CRC frames ({!Kondo_faults.Frame}) — a header
   frame (rounds, program name) followed by the observed-set bytes in
   chunked frames.  Chunking bounds what a torn tail can destroy: a
   loader salvages every intact frame and zero-fills the rest of the
   bitmask, losing at most the last chunk of observations instead of
   the whole campaign. *)
let chunk_size = 4096

let save t path =
  Frame.atomic_write path (fun oc ->
      output_string oc magic;
      let hdr = Buffer.create 64 in
      Buffer.add_int32_le hdr (Int32.of_int t.rounds);
      Buffer.add_int32_le hdr (Int32.of_int (String.length t.name));
      Buffer.add_string hdr t.name;
      Frame.write oc (Buffer.contents hdr);
      let bytes = Index_set.to_bytes t.observed in
      let n = Bytes.length bytes in
      let pos = ref 0 in
      while !pos < n do
        let len = min chunk_size (n - !pos) in
        Frame.write oc (Bytes.sub_string bytes !pos len);
        pos := !pos + len
      done)

type parsed =
  | Parsed of t * bool (* campaign, file fully intact *)
  | Corrupt of string
  | Mismatch of string

let fail_of path p msg =
  Invalid_argument
    (Printf.sprintf "Campaign.load %S (program %s): %s" path p.Program.name msg)

let parse_v1 p buf =
  let n = Bytes.length buf in
  let base = String.length magic_v1 in
  if n < base + 8 then Corrupt "truncated header"
  else begin
    let rounds = Int32.to_int (Bytes.get_int32_le buf base) in
    let name_len = Int32.to_int (Bytes.get_int32_le buf (base + 4)) in
    if name_len < 0 || name_len > 4096 || base + 8 + name_len > n then
      Corrupt (Printf.sprintf "bad name length %d" name_len)
    else begin
      let name = Bytes.sub_string buf (base + 8) name_len in
      if not (String.equal name p.Program.name) then
        Mismatch (Printf.sprintf "campaign belongs to program %s" name)
      else begin
        let rest = Bytes.sub buf (base + 8 + name_len) (n - base - 8 - name_len) in
        match Index_set.of_bytes rest with
        | exception Invalid_argument msg -> Corrupt (Printf.sprintf "corrupt observed set (%s)" msg)
        | observed ->
          if not (Shape.equal (Index_set.shape observed) p.Program.shape) then
            Mismatch
              (Printf.sprintf "shape mismatch (%s in file, program wants %s)"
                 (Shape.to_string (Index_set.shape observed))
                 (Shape.to_string p.Program.shape))
          else Parsed ({ name; rounds; observed }, true)
      end
    end
  end

(* Rebuild the observed set from a (possibly partial) prefix of its
   serialized bytes: verify any salvaged piece of the embedded shape
   header against the program, zero-fill the missing bitmask tail. *)
let observed_of_prefix p prefix =
  let dims = Shape.dims p.Program.shape in
  let rank = Array.length dims in
  let expected = 4 + (4 * rank) + ((Shape.nelems p.Program.shape + 7) / 8) in
  let got = String.length prefix in
  if got > expected then Error "observed set longer than the program's shape allows"
  else begin
    let full = Bytes.make expected '\000' in
    Bytes.blit_string prefix 0 full 0 got;
    (* the full header survived: let of_bytes check it against the shape;
       a partial header is replaced with the program's own *)
    if got < 4 + (4 * rank) then begin
      Bytes.set_int32_le full 0 (Int32.of_int rank);
      Array.iteri (fun k d -> Bytes.set_int32_le full (4 + (4 * k)) (Int32.of_int d)) dims
    end;
    match Index_set.of_bytes full with
    | exception Invalid_argument msg -> Error (Printf.sprintf "corrupt observed set (%s)" msg)
    | observed ->
      if not (Shape.equal (Index_set.shape observed) p.Program.shape) then
        Error
          (Printf.sprintf "shape mismatch (%s in file, program wants %s)"
             (Shape.to_string (Index_set.shape observed))
             (Shape.to_string p.Program.shape))
      else Ok (observed, got = expected)
  end

let parse_v2 p buf =
  let frames, frames_intact = Frame.read_all buf ~pos:(String.length magic) in
  match frames with
  | [] -> Corrupt "no intact header frame"
  | hdr :: chunks ->
    if String.length hdr < 8 then Corrupt "short header frame"
    else begin
      let hb = Bytes.unsafe_of_string hdr in
      let rounds = Int32.to_int (Bytes.get_int32_le hb 0) in
      let name_len = Int32.to_int (Bytes.get_int32_le hb 4) in
      if name_len < 0 || name_len > 4096 || 8 + name_len <> String.length hdr then
        Corrupt (Printf.sprintf "bad name length %d" name_len)
      else if rounds < 0 then Corrupt (Printf.sprintf "bad round count %d" rounds)
      else begin
        let name = String.sub hdr 8 name_len in
        if not (String.equal name p.Program.name) then
          Mismatch (Printf.sprintf "campaign belongs to program %s" name)
        else
          match observed_of_prefix p (String.concat "" chunks) with
          | Error msg ->
            if frames_intact then Mismatch msg else Corrupt msg
          | Ok (observed, complete) ->
            Parsed ({ name; rounds; observed }, frames_intact && complete)
      end
    end

let parse p path =
  match Frame.read_file path with
  | exception Sys_error msg -> Corrupt msg
  | buf ->
    let have_magic m =
      Bytes.length buf >= String.length m && Bytes.sub_string buf 0 (String.length m) = m
    in
    if have_magic magic then parse_v2 p buf
    else if have_magic magic_v1 then parse_v1 p buf
    else if Bytes.length buf < String.length magic then Corrupt "truncated magic"
    else Mismatch "bad magic"

let load p path =
  match parse p path with
  | Parsed (t, _) -> t
  | Corrupt msg | Mismatch msg -> raise (fail_of path p msg)

let salvage p path =
  if not (Sys.file_exists path) then (fresh p, false)
  else
    match parse p path with
    | Parsed (t, intact) -> (t, intact)
    | Corrupt _ -> (fresh p, false)
    | Mismatch msg -> raise (fail_of path p msg)
