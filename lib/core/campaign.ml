open Kondo_dataarray
open Kondo_workload

type t = { name : string; rounds : int; observed : Index_set.t }

let fresh p =
  { name = p.Program.name; rounds = 0; observed = Index_set.create p.Program.shape }

let observed t = t.observed
let rounds t = t.rounds
let program_name t = t.name

let extend ~config p t k =
  if not (String.equal t.name p.Program.name) then invalid_arg "Campaign.extend: program mismatch";
  let observed = Index_set.copy t.observed in
  (* Rounds are independent schedules, fanned out over [config.jobs]
     domains; each is seeded purely from its absolute round number, so
     the accumulated set is the same whatever the jobs count or how the
     k rounds were split across sessions. *)
  let found = Schedule.run_rounds ~config p ~first_round:(t.rounds + 1) ~rounds:k in
  Index_set.union_into observed found;
  { t with rounds = t.rounds + k; observed }

let carve ~config p t =
  let result = Carver.carve ~config t.observed in
  let approx = Carver.rasterize p.Program.shape result.Carver.hulls in
  Index_set.union_into approx t.observed;
  approx

let magic = "KCAM\x01"

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let name = Bytes.of_string t.name in
      let hdr = Bytes.create 8 in
      Bytes.set_int32_le hdr 0 (Int32.of_int t.rounds);
      Bytes.set_int32_le hdr 4 (Int32.of_int (Bytes.length name));
      output_bytes oc hdr;
      output_bytes oc name;
      output_bytes oc (Index_set.to_bytes t.observed))

let load p path =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        invalid_arg
          (Printf.sprintf "Campaign.load %S (program %s): %s" path p.Program.name msg))
      fmt
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let head = really_input_string ic (String.length magic) in
      if head <> magic then fail "bad magic";
      let hdr = Bytes.create 8 in
      really_input ic hdr 0 8;
      let rounds = Int32.to_int (Bytes.get_int32_le hdr 0) in
      let name_len = Int32.to_int (Bytes.get_int32_le hdr 4) in
      if name_len < 0 || name_len > 4096 then fail "bad name length %d" name_len;
      let name = really_input_string ic name_len in
      if not (String.equal name p.Program.name) then
        fail "campaign belongs to program %s" name;
      let rest_len = in_channel_length ic - pos_in ic in
      let rest = Bytes.create rest_len in
      really_input ic rest 0 rest_len;
      let observed =
        try Index_set.of_bytes rest
        with Invalid_argument msg -> fail "corrupt observed set (%s)" msg
      in
      if not (Shape.equal (Index_set.shape observed) p.Program.shape) then
        fail "shape mismatch (%s in file, program wants %s)"
          (Shape.to_string (Index_set.shape observed))
          (Shape.to_string p.Program.shape);
      { name; rounds; observed })
