open Kondo_dataarray
open Kondo_workload

(** Resumable fuzzing campaigns.

    §VI suggests closing the recall gap by "let[ting] Kondo run for some
    more time": a campaign accumulates the observed index set across any
    number of fuzzing rounds — each round a full Alg. 1 schedule with a
    fresh seed — and persists the accumulated state to disk so later
    sessions extend, rather than restart, the exploration.  Carving is
    deferred to the moment a debloated file is actually produced. *)

type t

val fresh : Program.t -> t

val observed : t -> Index_set.t
val rounds : t -> int
val program_name : t -> string

val extend : config:Config.t -> Program.t -> t -> int -> t
(** [extend ~config p t k] runs [k] more schedule rounds on
    [config.jobs] domains and folds their discoveries in.  Round [r] is
    seeded purely from [(config.seed, r)] (see {!Schedule.run_rounds}),
    so the accumulated set is bit-identical for any jobs count and any
    way of splitting the rounds across sessions. *)

val carve : config:Config.t -> Program.t -> t -> Index_set.t
(** Carve the accumulated observations into the current [I'_Θ]. *)

val save : t -> string -> unit
(** Atomic and crash-safe: the state is CRC-framed
    ({!Kondo_faults.Frame}), written to [path ^ ".tmp"], flushed, and
    renamed over [path] — a crash at any point leaves either the old or
    the new complete state, never a torn file. *)

val load : Program.t -> string -> t
(** Load a v2 (CRC-framed) or legacy v1 state file.  A v2 file with a
    truncated or corrupted tail is {e salvaged}: every intact frame of
    the observed set is kept and the lost tail counts as unobserved, so
    the campaign still resumes.  @raise Invalid_argument when the file
    belongs to a different program or shape, or is not a campaign at
    all; the message names the offending file and the program. *)

val salvage : Program.t -> string -> t * bool
(** Like {!load} but total over corruption: a missing, torn, or
    unrecognizable file yields [(fresh p, false)] instead of raising;
    the boolean reports whether the file was fully intact.  Still
    raises on a valid campaign for a {e different} program — that is a
    user error, not corruption. *)
