open Kondo_dataarray
open Kondo_geometry

type result = { hulls : Hull.t list; initial_cells : int; merge_rounds : int; merges : int }

module Carve_obs = struct
  open Kondo_obs

  let runs =
    lazy (Registry.counter ~help:"Carver invocations" Registry.default "kondo_carve_runs_total")

  let cells =
    lazy
      (Registry.counter ~help:"Grid cells hulled (SPLIT output)" Registry.default
         "kondo_carve_cells_total")

  let merges =
    lazy
      (Registry.counter ~help:"Hull merges performed by the bottom-up sweeps"
         Registry.default "kondo_carve_merges_total")

  let hulls =
    lazy
      (Registry.counter ~help:"Hulls remaining after the merge fixpoint" Registry.default
         "kondo_carve_hulls_total")

  let vertices =
    lazy
      (Registry.counter ~help:"Vertices across the final merged hulls" Registry.default
         "kondo_carve_vertices_total")
end

let close ~config h1 h2 =
  let cfg : Config.t = config in
  let center_ok () = Hull.center_distance h1 h2 <= cfg.Config.center_d_thresh in
  let boundary_ok () = Hull.boundary_distance h1 h2 <= cfg.Config.bound_d_thresh in
  match cfg.Config.merge_policy with
  | Config.Either -> center_ok () || boundary_ok ()
  | Config.Both -> center_ok () && boundary_ok ()
  | Config.Center_only -> center_ok ()
  | Config.Boundary_only -> boundary_ok ()

(* SPLIT: partition points into grid cells of edge [cell].  Oversized
   cells are stride-sampled but always keep their per-axis extreme
   points, which are the only hull-relevant ones. *)
let split_cells ~cell ~cap points =
  let table : (int list, int array list ref * int ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun idx ->
      let key = Array.to_list (Array.map (fun x -> x / cell) idx) in
      match Hashtbl.find_opt table key with
      | Some (pts, n) ->
        incr n;
        pts := idx :: !pts
      | None -> Hashtbl.add table key (ref [ idx ], ref 1))
    points;
  Hashtbl.fold
    (fun _ (pts, n) acc ->
      let pts = !pts in
      let selected =
        if !n <= cap then pts
        else begin
          let stride = (!n + cap - 1) / cap in
          let sampled = List.filteri (fun i _ -> i mod stride = 0) pts in
          (* Support points along every direction in {-1,0,1}^d \ {0}:
             axis extremes plus diagonal corners, so the sampled hull
             keeps the cell's true extreme vertices. *)
          let d = Array.length (List.hd pts) in
          let dirs = ref [] in
          let dir = Array.make d 0 in
          let rec gen k =
            if k = d then begin
              if Array.exists (fun x -> x <> 0) dir then dirs := Array.copy dir :: !dirs
            end
            else
              List.iter
                (fun s ->
                  dir.(k) <- s;
                  gen (k + 1))
                [ -1; 0; 1 ]
          in
          gen 0;
          let score dir q =
            let s = ref 0 in
            Array.iteri (fun k w -> s := !s + (w * q.(k))) dir;
            !s
          in
          let supports =
            List.map
              (fun dir ->
                List.fold_left
                  (fun best q -> if score dir q > score dir best then q else best)
                  (List.hd pts) pts)
              !dirs
          in
          supports @ sampled
        end
      in
      selected :: acc)
    table []

(* Agglomerative sweeps: in each sweep, every hull absorbs all hulls
   still close to it; sweeps repeat until one makes no merge, i.e. until
   no two hulls are CLOSE — the fixpoint of the paper's merge loop,
   reached without restarting the O(n^2) scan per merge. *)
let merge_all ~config hulls =
  let arr = ref (Array.of_list hulls) in
  let rounds = ref 0 and merges = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr rounds;
    let n = Array.length !arr in
    let used = Array.make n false in
    let out = ref [] in
    for i = 0 to n - 1 do
      if not used.(i) then begin
        let acc = ref !arr.(i) in
        for j = i + 1 to n - 1 do
          if (not used.(j)) && close ~config !acc !arr.(j) then begin
            acc := Hull.merge !acc !arr.(j);
            used.(j) <- true;
            incr merges;
            changed := true
          end
        done;
        out := !acc :: !out
      end
    done;
    arr := Array.of_list (List.rev !out)
  done;
  (Array.to_list !arr, !rounds, !merges)

let carve_points ~config ~dims points =
  match points with
  | [] -> { hulls = []; initial_cells = 0; merge_rounds = 0; merges = 0 }
  | _ ->
    let cfg : Config.t = config in
    (* Merge thresholds track the index-space extent (Config.autoscale). *)
    let cfg =
      let extent = float_of_int (Array.fold_left max 1 dims) in
      let s = Config.scale_for cfg extent in
      { cfg with
        Config.center_d_thresh = cfg.Config.center_d_thresh *. s;
        bound_d_thresh = cfg.Config.bound_d_thresh *. s }
    in
    let config = cfg in
    let cell = Config.auto_cell_size cfg dims in
    let hulls =
      Kondo_obs.Obs.span "carve.cells" ~cat:"carve"
        ~result_args:(fun hulls -> [ ("cells", string_of_int (List.length hulls)) ])
        (fun () ->
          let cells = split_cells ~cell ~cap:cfg.Config.max_cell_points points in
          (* Per-cell hulls are independent; the pool preserves cell order, so
             the (order-sensitive) bottom-up merge below sees the same input
             as a sequential run and stays bit-identical for any jobs count. *)
          let pool = Kondo_parallel.Pool.create ~jobs:cfg.Config.jobs in
          Kondo_parallel.Pool.map_list pool Hull.of_int_points cells)
    in
    let initial_cells = List.length hulls in
    let merged, merge_rounds, merges =
      Kondo_obs.Obs.span "carve.merge" ~cat:"carve"
        ~args:[ ("cells", string_of_int initial_cells) ]
        ~result_args:(fun (merged, sweeps, merges) ->
          [ ("hulls", string_of_int (List.length merged));
            ("sweeps", string_of_int sweeps);
            ("merges", string_of_int merges) ])
        (fun () -> merge_all ~config hulls)
    in
    let final_vertices =
      List.fold_left (fun acc h -> acc + List.length (Hull.vertices h)) 0 merged
    in
    let open Kondo_obs in
    Registry.inc (Lazy.force Carve_obs.runs);
    Registry.inc ~by:initial_cells (Lazy.force Carve_obs.cells);
    Registry.inc ~by:merges (Lazy.force Carve_obs.merges);
    Registry.inc ~by:(List.length merged) (Lazy.force Carve_obs.hulls);
    Registry.inc ~by:final_vertices (Lazy.force Carve_obs.vertices);
    { hulls = merged; initial_cells; merge_rounds; merges }

let carve ~config is =
  let points = ref [] in
  Index_set.iter is (fun idx -> points := Array.copy idx :: !points);
  carve_points ~config ~dims:(Shape.dims (Index_set.shape is)) !points

let single_hull is =
  if Index_set.is_empty is then None
  else begin
    let points = ref [] in
    Index_set.iter is (fun idx -> points := Array.copy idx :: !points);
    Some (Hull.of_int_points !points)
  end

let rasterize shape hulls =
  let out = Index_set.create shape in
  List.iter (fun h -> Hull.iter_lattice h (fun idx -> ignore (Index_set.add_if_in_bounds out idx))) hulls;
  out
