type schedule_kind = Ee | Boundary_ee

type merge_policy = Either | Both | Center_only | Boundary_only

type t = {
  seed : int;
  n_init : int;
  schedule : schedule_kind;
  max_iter : int;
  stop_iter : int;
  u_reps : int;
  n_reps : int;
  u_dist : float * float;
  n_dist : float * float;
  diameter : float;
  restart : int;
  decay_iter : int;
  decay : float;
  epsilon0 : float;
  time_budget : float option;
  cell_size : int option;
  max_cell_points : int;
  center_d_thresh : float;
  bound_d_thresh : float;
  merge_policy : merge_policy;
  autoscale : bool;
  reference_extent : float;
  jobs : int;
}

let default =
  { seed = 1;
    n_init = 20;
    schedule = Boundary_ee;
    max_iter = 2000;
    stop_iter = 500;
    u_reps = 8;
    n_reps = 5;
    u_dist = (5.0, 15.0);
    n_dist = (30.0, 50.0);
    diameter = 20.0;
    restart = 250;
    decay_iter = 200;
    decay = 0.97;
    epsilon0 = 1.0;
    time_budget = None;
    cell_size = None;
    max_cell_points = 2048;
    center_d_thresh = 20.0;
    bound_d_thresh = 10.0;
    merge_policy = Either;
    autoscale = true;
    reference_extent = 128.0;
    jobs = 1 }

let with_seed t seed = { t with seed }

let with_jobs t jobs =
  if jobs < 1 then invalid_arg "Config.with_jobs: jobs must be >= 1";
  { t with jobs }

let scale_for t extent =
  if not t.autoscale then 1.0
  else Float.max 0.25 (Float.min 32.0 (extent /. Float.max 1.0 t.reference_extent))

let auto_cell_size t dims =
  match t.cell_size with
  | Some s -> s
  | None ->
    let maxd = Array.fold_left max 1 dims in
    max 8 (maxd / 16)

let merge_policy_name = function
  | Either -> "either"
  | Both -> "both"
  | Center_only -> "center-only"
  | Boundary_only -> "boundary-only"

let schedule_name = function Ee -> "EE" | Boundary_ee -> "boundary-EE"
