(** Kondo configuration (paper Fig. 5 plus carver controls).

    Defaults are the paper's evaluation settings (§V-B): [u_reps = 8],
    [n_reps = 5], [max_iter = 2000], [stop_iter = 500], [u_dist = \[5,15\]],
    [n_dist = \[30,50\]], [decay = 0.97] every 200 iterations starting from
    ε = 1, hull thresholds [center_d_thresh = 20] / [bound_d_thresh = 10].
    Values the paper does not pin down ([diameter], [restart], carver cell
    size) get documented defaults; see DESIGN.md §4. *)

type schedule_kind =
  | Ee           (** plain exploit/explore: ε stays 1, no boundary moves *)
  | Boundary_ee  (** ε-greedy transition into boundary-based mutation *)

type merge_policy =
  | Either        (** merge when center {e or} boundary distance is close *)
  | Both          (** merge only when both are close *)
  | Center_only
  | Boundary_only

type t = {
  seed : int;               (** PRNG seed; same seed → same run *)
  n_init : int;             (** initial uniform samples (the paper's n) *)
  schedule : schedule_kind;
  max_iter : int;
  stop_iter : int;          (** stop after this many iterations without a new offset *)
  u_reps : int;
  n_reps : int;
  u_dist : float * float;
  n_dist : float * float;
  diameter : float;         (** cluster diameter for ADD_TO_CLUSTER *)
  restart : int;            (** random-restart period in iterations *)
  decay_iter : int;
  decay : float;
  epsilon0 : float;
  time_budget : float option;  (** wall-clock seconds; [None] = unbounded *)
  cell_size : int option;   (** carver grid cell edge; [None] = auto *)
  max_cell_points : int;    (** per-cell sampling cap fed to hull construction *)
  center_d_thresh : float;
  bound_d_thresh : float;
  merge_policy : merge_policy;
  autoscale : bool;
      (** scale the distance-typed parameters ([u_dist], [n_dist],
          [diameter], merge thresholds) with the extent of the space they
          act on, relative to [reference_extent].  §V-D4 reports recall
          stable as the data file grows under one configuration, which
          requires frames and thresholds to track the space (DESIGN.md
          §4). *)
  reference_extent : float;  (** the extent the Fig. 5 values were tuned for (128) *)
  jobs : int;
      (** worker domains for the parallel fan-out paths (campaign fuzz
          rounds, multi-program debloating, per-cell hull construction).
          Results are bit-identical for any value; [1] (the default) is
          the legacy sequential path. *)
}

val default : t

val scale_for : t -> float -> float
(** [scale_for t extent] is the multiplier applied to distance-typed
    values for a space of the given extent: [extent /. reference_extent]
    clamped to [\[0.25, 32\]], or [1.0] when [autoscale] is off. *)

val with_seed : t -> int -> t

val with_jobs : t -> int -> t
(** @raise Invalid_argument when [jobs < 1]. *)

val auto_cell_size : t -> int array -> int
(** The cell edge used for a given array shape: [cell_size] when set,
    else [max 8 (max_dim / 16)]. *)

val merge_policy_name : merge_policy -> string
val schedule_name : schedule_kind -> string
