open Kondo_dataarray
open Kondo_interval
open Kondo_workload

type report = {
  program : string;
  fuzz : Schedule.result;
  carve : Carver.result;
  approx : Index_set.t;
  accuracy : Metrics.accuracy option;
  elapsed : float;
}

let approximate ~config p =
  Kondo_obs.Obs.span "pipeline.approximate" ~cat:"pipeline"
    ~args:[ ("program", p.Program.name) ]
    ~result_args:(fun r ->
      [ ("approx_indices", string_of_int (Index_set.cardinal r.approx));
        ("hulls", string_of_int (List.length r.carve.Carver.hulls)) ])
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let fuzz = Schedule.run ~config p in
      let carve = Carver.carve ~config fuzz.Schedule.indices in
      let approx = Carver.rasterize p.Program.shape carve.Carver.hulls in
      (* Observed indices are certainly required; hulls contain their own
         input points, but numerical eps could drop a boundary point. *)
      Index_set.union_into approx fuzz.Schedule.indices;
      { program = p.Program.name;
        fuzz;
        carve;
        approx;
        accuracy = None;
        elapsed = Unix.gettimeofday () -. t0 })

let evaluate ~config p =
  let r = approximate ~config p in
  let truth = Program.ground_truth p in
  { r with accuracy = Some (Metrics.accuracy ~truth ~approx:r.approx) }

let keep_intervals p approx ~layout =
  let shape = p.Program.shape in
  let dtype = p.Program.dtype in
  let esz = Kondo_dataarray.Dtype.size dtype in
  let offsets = ref [] in
  Index_set.iter approx (fun idx ->
      offsets := Layout.element_offset layout shape dtype idx :: !offsets);
  let sorted = List.sort compare !offsets in
  Interval_set.of_sorted (List.map (fun off -> Interval.make off (off + esz)) sorted)

let debloat_file ~config p ~src ~dst =
  let report = approximate ~config p in
  let source = Kondo_h5.File.open_file src in
  Fun.protect
    ~finally:(fun () -> Kondo_h5.File.close source)
    (fun () ->
      let ds = Kondo_h5.File.find source p.Program.dataset in
      let keep_set = keep_intervals p report.approx ~layout:ds.Kondo_h5.Dataset.layout in
      Kondo_h5.Writer.write_debloated dst ~source ~keep:(fun name ->
          if String.equal name p.Program.dataset then keep_set else Interval_set.empty);
      report)

let debloat_file_many ~config programs ~src ~dst =
  (* One level of parallelism only: with several programs the fan-out is
     per program and the inner fuzz/carve runs sequentially (nested pool
     use is an error); a single program keeps its inner jobs so the
     carver still parallelizes.  Results are identical either way. *)
  let pool = Kondo_parallel.Pool.create ~jobs:config.Config.jobs in
  let inner =
    if Kondo_parallel.Pool.jobs pool > 1 && List.length programs > 1 then
      { config with Config.jobs = 1 }
    else config
  in
  let reports =
    Kondo_parallel.Pool.map_list pool (fun p -> (p, approximate ~config:inner p)) programs
  in
  let source = Kondo_h5.File.open_file src in
  Fun.protect
    ~finally:(fun () -> Kondo_h5.File.close source)
    (fun () ->
      let keep_for name =
        List.fold_left
          (fun acc (p, report) ->
            if String.equal p.Program.dataset name then begin
              let ds = Kondo_h5.File.find source name in
              Interval_set.union acc
                (keep_intervals p report.approx ~layout:ds.Kondo_h5.Dataset.layout)
            end
            else acc)
          Interval_set.empty reports
      in
      Kondo_h5.Writer.write_debloated dst ~source ~keep:keep_for;
      List.map (fun (p, report) -> (p.Program.name, report)) reports)

let debloat_image ~config p ~image ~dst =
  let report = approximate ~config p in
  match Kondo_container.Image.data_content image ~dst with
  | None -> raise Not_found
  | Some content ->
    let tmp_src = Filename.temp_file "kondo_full" ".kh5" in
    let tmp_dst = Filename.temp_file "kondo_debloat" ".kh5" in
    Fun.protect
      ~finally:(fun () ->
        (try Sys.remove tmp_src with Sys_error _ -> ());
        try Sys.remove tmp_dst with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin tmp_src in
        output_bytes oc content;
        close_out oc;
        let source = Kondo_h5.File.open_file tmp_src in
        Fun.protect
          ~finally:(fun () -> Kondo_h5.File.close source)
          (fun () ->
            let ds = Kondo_h5.File.find source p.Program.dataset in
            let keep_set = keep_intervals p report.approx ~layout:ds.Kondo_h5.Dataset.layout in
            Kondo_h5.Writer.write_debloated tmp_dst ~source ~keep:(fun name ->
                if String.equal name p.Program.dataset then keep_set else Interval_set.empty));
        let ic = open_in_bin tmp_dst in
        let len = in_channel_length ic in
        let debloated = Bytes.create len in
        really_input ic debloated 0 len;
        close_in ic;
        (Kondo_container.Image.replace_data image ~dst debloated, report))
