open Kondo_dataarray
open Kondo_workload

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list
    | Raw of string

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else if Float.is_nan f then "null"
    else if Float.is_integer (f *. 0.0) then Printf.sprintf "%.12g" f
    else "null" (* infinities *)

  let to_string ?(indent = 0) t =
    let b = Buffer.create 256 in
    let pad depth = if indent > 0 then Buffer.add_string b (String.make (depth * indent) ' ') in
    let nl () = if indent > 0 then Buffer.add_char b '\n' in
    let rec go depth = function
      | Null -> Buffer.add_string b "null"
      | Raw s -> Buffer.add_string b s
      | Bool v -> Buffer.add_string b (string_of_bool v)
      | Int v -> Buffer.add_string b (string_of_int v)
      | Float f -> Buffer.add_string b (float_repr f)
      | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
      | List [] -> Buffer.add_string b "[]"
      | List items ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char b ']'
      | Obj [] -> Buffer.add_string b "{}"
      | Obj fields ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            if indent > 0 then Buffer.add_char b ' ';
            go (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char b '}'
    in
    go 0 t;
    Buffer.contents b
end

let stop_reason_string = function
  | Schedule.Max_iterations -> "max-iterations"
  | Schedule.Stagnation -> "stagnation"
  | Schedule.Time_budget -> "time-budget"

let schedule_json (r : Schedule.result) =
  Json.Obj
    [ ("iterations", Json.Int r.Schedule.iterations);
      ("evaluations", Json.Int r.Schedule.evaluations);
      ("useful", Json.Int r.Schedule.useful_count);
      ("discovered_indices", Json.Int (Index_set.cardinal r.Schedule.indices));
      ("stopped", Json.String (stop_reason_string r.Schedule.stopped));
      ("elapsed_s", Json.Float r.Schedule.elapsed) ]

(* The fuzz schedule's outcome trace (paper Fig. 4 scatter data) in
   Chrome trace_event form: one complete event per debloat test at
   ts = iteration (µs scale is nominal — the x-axis is iterations), cat
   "useful"/"non-useful".  A pure function of the result, so the export
   is byte-stable for a fixed seed. *)
let fuzz_trace_json (r : Schedule.result) =
  let module W = Kondo_obs.Jsonw in
  let event (o : Schedule.outcome) =
    W.obj
      [ ("name", W.str (if o.Schedule.useful then "useful" else "non-useful"));
        ("cat", W.str (if o.Schedule.useful then "useful" else "non-useful"));
        ("ph", W.str "X");
        ("ts", string_of_int o.Schedule.iter);
        ("dur", "1");
        ("pid", "0");
        ("tid", "0");
        ( "args",
          W.obj
            [ ( "params",
                W.str
                  (String.concat ","
                     (Array.to_list (Array.map (Printf.sprintf "%.1f") o.Schedule.params)))
              );
              ("new_offsets", string_of_int o.Schedule.new_offsets) ] ) ]
  in
  W.obj [ ("traceEvents", W.arr (List.map event r.Schedule.trace)) ]

let accuracy_json (a : Metrics.accuracy) =
  Json.Obj
    [ ("precision", Json.Float a.Metrics.precision);
      ("recall", Json.Float a.Metrics.recall);
      ("f1", Json.Float a.Metrics.f1);
      ("bloat_identified", Json.Float a.Metrics.bloat) ]

let pipeline_json ?accuracy p (r : Pipeline.report) =
  let acc = match accuracy with Some a -> Some a | None -> r.Pipeline.accuracy in
  Json.Obj
    ([ ("program", Json.String p.Program.name);
       ("description", Json.String p.Program.description);
       ("shape", Json.String (Shape.to_string p.Program.shape));
       ("parameters", Json.Int (Program.arity p));
       ("theta_size", Json.Int (Program.param_count p));
       ("fuzz", schedule_json r.Pipeline.fuzz);
       ( "carve",
         Json.Obj
           [ ("initial_cells", Json.Int r.Pipeline.carve.Carver.initial_cells);
             ("hulls", Json.Int (List.length r.Pipeline.carve.Carver.hulls));
             ("merges", Json.Int r.Pipeline.carve.Carver.merges);
             ("sweeps", Json.Int r.Pipeline.carve.Carver.merge_rounds) ] );
       ("subset_indices", Json.Int (Index_set.cardinal r.Pipeline.approx));
       ("subset_fraction", Json.Float (Index_set.fraction r.Pipeline.approx));
       ("elapsed_s", Json.Float r.Pipeline.elapsed) ]
    @ match acc with None -> [] | Some a -> [ ("accuracy", accuracy_json a) ])

let pipeline_text ?accuracy p (r : Pipeline.report) =
  let b = Buffer.create 256 in
  let acc = match accuracy with Some a -> Some a | None -> r.Pipeline.accuracy in
  Buffer.add_string b
    (Printf.sprintf "program    : %s (%s)\n" p.Program.name (Shape.to_string p.Program.shape));
  Buffer.add_string b
    (Printf.sprintf "fuzzing    : %d tests, %d useful, stopped on %s\n"
       r.Pipeline.fuzz.Schedule.evaluations r.Pipeline.fuzz.Schedule.useful_count
       (stop_reason_string r.Pipeline.fuzz.Schedule.stopped));
  Buffer.add_string b
    (Printf.sprintf "carving    : %d cells -> %d hulls (%d merges)\n"
       r.Pipeline.carve.Carver.initial_cells
       (List.length r.Pipeline.carve.Carver.hulls)
       r.Pipeline.carve.Carver.merges);
  Buffer.add_string b
    (Printf.sprintf "subset     : %d indices (%.2f%% of the array)\n"
       (Index_set.cardinal r.Pipeline.approx)
       (100.0 *. Index_set.fraction r.Pipeline.approx));
  (match acc with
  | Some a ->
    Buffer.add_string b
      (Printf.sprintf "accuracy   : precision %.4f, recall %.4f, bloat %.2f%%\n"
         a.Metrics.precision a.Metrics.recall (100.0 *. a.Metrics.bloat))
  | None -> ());
  Buffer.contents b
