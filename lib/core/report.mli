open Kondo_workload

(** Structured run reports.

    Renders pipeline results as human-readable text or machine-readable
    JSON (emitted by a small self-contained serializer — no external
    dependency), for the CLI, CI pipelines, and the experiment logs. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list
    | Raw of string  (** pre-serialized JSON, embedded verbatim *)

  val to_string : ?indent:int -> t -> string
  (** Serialize with proper string escaping; [indent > 0] pretty-prints.
      [Raw] fragments are trusted to already be valid JSON. *)
end

val pipeline_json : ?accuracy:Metrics.accuracy -> Program.t -> Pipeline.report -> Json.t
(** Everything a run produced: program metadata, fuzzing counters, carve
    statistics, subset size, and (when supplied or present) accuracy. *)

val pipeline_text : ?accuracy:Metrics.accuracy -> Program.t -> Pipeline.report -> string

val schedule_json : Schedule.result -> Json.t

val fuzz_trace_json : Schedule.result -> string
(** The fuzz schedule's per-iteration outcomes (the paper's Fig. 4
    scatter data) as Chrome [trace_event] JSON: one ["ph":"X"] event per
    debloat test at [ts = iteration], categorized
    ["useful"]/["non-useful"], with the parameter valuation and newly
    discovered offset count as args.  Byte-stable for a fixed seed. *)
