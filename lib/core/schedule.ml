open Kondo_prng
open Kondo_dataarray
open Kondo_workload

type stop_reason = Max_iterations | Stagnation | Time_budget

let stop_name = function
  | Max_iterations -> "max-iterations"
  | Stagnation -> "stagnation"
  | Time_budget -> "time-budget"

(* Schedule counters: one registry entry per Alg.-1 cost/yield quantity
   the scheduler paper (PAPERS.md) says you must measure to tune a fuzz
   scheduler.  Flushed in one batch per run, not per iteration. *)
module Sched_obs = struct
  open Kondo_obs

  let rounds =
    lazy
      (Registry.counter ~help:"Completed fuzz schedules (rounds)" Registry.default
         "kondo_schedule_rounds_total")

  let evaluations =
    lazy
      (Registry.counter ~help:"Debloat tests executed" Registry.default
         "kondo_schedule_evaluations_total")

  let useful =
    lazy
      (Registry.counter ~help:"Evaluations classified useful" Registry.default
         "kondo_schedule_useful_total")

  let restarts =
    lazy
      (Registry.counter ~help:"Random restarts (queue re-seeds)" Registry.default
         "kondo_schedule_restarts_total")

  let ee_moves =
    lazy
      (Registry.counter ~help:"Plain exploit/explore mutations proposed" Registry.default
         "kondo_schedule_ee_moves_total")

  let boundary_moves =
    lazy
      (Registry.counter ~help:"Boundary-directed mutations proposed" Registry.default
         "kondo_schedule_boundary_moves_total")

  let stagnation_stops =
    lazy
      (Registry.counter ~help:"Runs stopped by the stagnation rule" Registry.default
         "kondo_schedule_stagnation_stops_total")
end

type outcome = { iter : int; params : float array; useful : bool; new_offsets : int }

type result = {
  indices : Index_set.t;
  trace : outcome list;
  iterations : int;
  evaluations : int;
  useful_count : int;
  stopped : stop_reason;
  elapsed : float;
}

let key_of_params v = Array.to_list (Array.map (fun x -> int_of_float (Float.round x)) v)

let uniform_sample rng space =
  Array.map (fun (lo, hi) -> Float.round (Rng.float_in rng lo hi)) space

let clamp space v =
  Array.mapi
    (fun k x ->
      let lo, hi = space.(k) in
      Float.max lo (Float.min hi (Float.round x)))
    v

(* Plain exploit/explore: jump within a frame whose radius is drawn from
   [dist] independently per dimension. *)
let uniform_frame rng space v (dlo, dhi) =
  clamp space
    (Array.map
       (fun x ->
         let d = Rng.float_in rng dlo dhi in
         x +. Rng.float_in rng (-.d) d)
       v)

(* Boundary-based move: step toward the nearest opposite-type cluster
   center, frame scaled by the distance to it — far from the boundary we
   take long strides, near it we densify (paper §IV-A2). *)
let greedy_frame rng space v center dist_to_center (dlo, dhi) diameter =
  let scale = Float.max 0.25 (Float.min 4.0 (dist_to_center /. Float.max diameter 1.0)) in
  let frame = Rng.float_in rng dlo dhi *. scale in
  let toward = Rng.float rng 1.0 in
  clamp space
    (Array.mapi
       (fun k x ->
         let dir = center.(k) -. x in
         let len = Float.max 1.0 dist_to_center in
         x +. (dir /. len *. frame *. toward) +. Rng.float_in rng (-.frame /. 2.0) (frame /. 2.0))
       v)

let run_with_eval ~config p ~eval =
  let cfg : Config.t = config in
  (* Frames and the cluster diameter track the parameter-space extent
     (Config.autoscale): the Fig. 5 distances are tuned for extent 128. *)
  let cfg =
    let extent =
      Array.fold_left
        (fun acc (lo, hi) -> Float.max acc (hi -. lo))
        1.0 p.Program.param_space
    in
    let s = Config.scale_for cfg extent in
    let sc (a, b) = (a *. s, b *. s) in
    { cfg with
      Config.u_dist = sc cfg.Config.u_dist;
      n_dist = sc cfg.Config.n_dist;
      diameter = cfg.Config.diameter *. s }
  in
  let rng = Rng.create cfg.Config.seed in
  let space = p.Program.param_space in
  let is = Index_set.create p.Program.shape in
  let queue : float array Queue.t = Queue.create () in
  let seen : (int list, unit) Hashtbl.t = Hashtbl.create 4096 in
  let cl_u = Cluster.create ~diameter:cfg.Config.diameter in
  let cl_n = Cluster.create ~diameter:cfg.Config.diameter in
  let trace = ref [] in
  let evaluations = ref 0 in
  let useful_count = ref 0 in
  let new_itr = ref 0 in
  let epsilon = ref cfg.Config.epsilon0 in
  let restarts = ref 0 in
  let ee_moves = ref 0 in
  let boundary_moves = ref 0 in
  let span =
    match Kondo_obs.Obs.tracer () with
    | None -> None
    | Some tr ->
      Some
        ( tr,
          Kondo_obs.Trace.begin_span tr ~cat:"schedule"
            ~args:
              [ ("program", p.Program.name);
                ("seed", string_of_int cfg.Config.seed);
                ("schedule", Config.schedule_name cfg.Config.schedule) ]
            "schedule.run" )
  in
  let t0 = Unix.gettimeofday () in
  let enqueue v =
    let key = key_of_params v in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add v queue
    end
  in
  let random_restart () =
    incr restarts;
    Queue.clear queue;
    (* Restarted seeds bypass the seen-filter: localization is broken by
       force-reseeding even if a value was proposed before. *)
    for _ = 1 to cfg.Config.n_init do
      Queue.add (uniform_sample rng space) queue
    done
  in
  let mutate v useful =
    let dist = if useful then cfg.Config.u_dist else cfg.Config.n_dist in
    let reps = if useful then cfg.Config.u_reps else cfg.Config.n_reps in
    List.init reps (fun _ ->
        if cfg.Config.schedule = Config.Ee || Rng.bernoulli rng !epsilon then begin
          incr ee_moves;
          uniform_frame rng space v dist
        end
        else begin
          let opposite = if useful then cl_n else cl_u in
          match Cluster.nearest opposite v with
          | None ->
            incr ee_moves;
            uniform_frame rng space v dist
          | Some (center, d) ->
            incr boundary_moves;
            greedy_frame rng space v center d dist cfg.Config.diameter
        end)
  in
  let stopped = ref Max_iterations in
  let itr = ref 0 in
  (try
     random_restart ();
     while !itr < cfg.Config.max_iter do
       incr itr;
       (match cfg.Config.time_budget with
       | Some budget when Unix.gettimeofday () -. t0 > budget ->
         stopped := Time_budget;
         raise Exit
       | _ -> ());
       if Queue.is_empty queue || !itr mod cfg.Config.restart = 0 then random_restart ();
       let v = Queue.pop queue in
       Hashtbl.replace seen (key_of_params v) ();
       let useful, fresh = eval v is in
       incr evaluations;
       if useful then incr useful_count;
       trace := { iter = !itr; params = Array.copy v; useful; new_offsets = fresh } :: !trace;
       if fresh > 0 then new_itr := 0 else incr new_itr;
       if !new_itr >= cfg.Config.stop_iter then begin
         stopped := Stagnation;
         raise Exit
       end;
       if useful then Cluster.add cl_u v else Cluster.add cl_n v;
       List.iter enqueue (mutate v useful);
       if !itr mod cfg.Config.decay_iter = 0 then epsilon := !epsilon *. cfg.Config.decay
     done
   with Exit -> ());
  let open Kondo_obs in
  Registry.inc (Lazy.force Sched_obs.rounds);
  Registry.inc ~by:!evaluations (Lazy.force Sched_obs.evaluations);
  Registry.inc ~by:!useful_count (Lazy.force Sched_obs.useful);
  Registry.inc ~by:!restarts (Lazy.force Sched_obs.restarts);
  Registry.inc ~by:!ee_moves (Lazy.force Sched_obs.ee_moves);
  Registry.inc ~by:!boundary_moves (Lazy.force Sched_obs.boundary_moves);
  if !stopped = Stagnation then Registry.inc (Lazy.force Sched_obs.stagnation_stops);
  (match span with
  | None -> ()
  | Some (tr, s) ->
    Trace.end_span tr
      ~args:
        [ ("iterations", string_of_int !itr);
          ("evaluations", string_of_int !evaluations);
          ("useful", string_of_int !useful_count);
          ("non_useful", string_of_int (!evaluations - !useful_count));
          ("ee_moves", string_of_int !ee_moves);
          ("boundary_moves", string_of_int !boundary_moves);
          ("restarts", string_of_int !restarts);
          ("epsilon", Printf.sprintf "%.4f" !epsilon);
          ("stagnation", string_of_int !new_itr);
          ("stopped", stop_name !stopped) ]
      s);
  { indices = is;
    trace = List.rev !trace;
    iterations = !itr;
    evaluations = !evaluations;
    useful_count = !useful_count;
    stopped = !stopped;
    elapsed = Unix.gettimeofday () -. t0 }

(* Debloat-test evaluator that memoizes access plans: distinct parameter
   values frequently share a plan (e.g. ARD's redundant temporal
   parameter), and re-enumerating a large hyperslab contributes nothing. *)
let plan_evaluator p =
  let plans_seen : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  fun v is ->
    let plan = p.Program.plan v in
    match plan with
    | [] -> (false, 0)
    | slabs ->
      let key = String.concat ";" (List.map Kondo_dataarray.Hyperslab.to_string slabs) in
      let useful = Program.is_useful p v in
      if Hashtbl.mem plans_seen key then (useful, 0)
      else begin
        Hashtbl.add plans_seen key ();
        let before = Index_set.cardinal is in
        List.iter (fun slab -> Index_set.add_slab is slab) slabs;
        (useful, Index_set.cardinal is - before)
      end

let run ~config p = run_with_eval ~config p ~eval:(plan_evaluator p)

let round_seed ~base round =
  (* Pure in (base, round): round r always fuzzes with the same seed, so
     campaigns resume reproducibly and workers need no shared state. *)
  Int64.to_int (Kondo_prng.Rng.bits64 (Kondo_prng.Rng.split_at base round))

let run_rounds ~config p ~first_round ~rounds =
  if rounds < 0 then invalid_arg "Schedule.run_rounds: rounds must be >= 0";
  let pool = Kondo_parallel.Pool.create ~jobs:config.Config.jobs in
  let acc = Index_set.create p.Program.shape in
  Kondo_parallel.Pool.map_reduce pool ~n:rounds
    ~map:(fun i ->
      let round = first_round + i in
      let seed = round_seed ~base:config.Config.seed round in
      Kondo_obs.Obs.span "schedule.round" ~cat:"schedule"
        ~args:[ ("round", string_of_int round); ("seed", string_of_int seed) ]
        ~result_args:(fun indices ->
          [ ("discovered_indices", string_of_int (Index_set.cardinal indices)) ])
        (fun () -> (run ~config:(Config.with_seed config seed) p).indices))
    ~reduce:(fun acc indices ->
      Index_set.union_into acc indices;
      acc)
    ~init:acc
