open Kondo_dataarray
open Kondo_workload

(** The fuzz schedule (paper Algorithm 1).

    Starting from [n_init] uniform samples of Θ, the schedule dequeues a
    parameter value, runs the debloat test (recording the indices it
    would access), clusters the value as useful or non-useful, and
    enqueues mutants.  Mutation is ε-greedy between a plain
    exploit/explore frame move and a boundary-directed move toward the
    nearest opposite-type cluster; ε decays geometrically.  Random
    restarts re-seed the queue every [restart] iterations.  The run
    terminates on [max_iter], on [stop_iter] iterations without a newly
    discovered offset, or on the wall-clock budget. *)

type stop_reason = Max_iterations | Stagnation | Time_budget

type outcome = { iter : int; params : float array; useful : bool; new_offsets : int }

type result = {
  indices : Index_set.t;      (** IS = ∪ I_v over all evaluated values *)
  trace : outcome list;       (** evaluation order (Fig. 4's scatter data) *)
  iterations : int;
  evaluations : int;          (** debloat tests actually run *)
  useful_count : int;
  stopped : stop_reason;
  elapsed : float;            (** seconds *)
}

val run : config:Config.t -> Program.t -> result
(** Deterministic for a fixed [config.seed] (when no time budget cuts the
    run short). *)

val run_with_eval :
  config:Config.t ->
  Program.t ->
  eval:(float array -> Index_set.t -> bool * int) ->
  result
(** Like {!run} but with a custom debloat test: [eval v is] runs the test
    for [v], adds discovered indices into [is], and returns (useful,
    newly-added count).  {!run} uses a plan-memoizing evaluator. *)

val run_rounds : config:Config.t -> Program.t -> first_round:int -> rounds:int -> Index_set.t
(** [run_rounds ~config p ~first_round ~rounds] runs [rounds] independent
    full schedules — round [r] seeded by a pure function of
    [(config.seed, r)] via {!Kondo_prng.Rng.split_at} — on
    [config.jobs] domains, and unions their discoveries in round order.
    The result is bit-identical for every [jobs] value; a round number
    maps to the same seed in every session, so campaigns that resume at
    [first_round > 1] reproduce exactly. *)
