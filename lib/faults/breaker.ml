type state = Closed | Open | Half_open

(* Process-wide trip/recovery/rejection counters, aggregated over every
   breaker instance: per-instance stats stay on [t.stats], but serve- and
   client-side hardening is also observable through the metrics registry
   (ISSUE 5 satellite — these used to be visible only via Runtime.stats). *)
let m_trips =
  lazy
    (Kondo_obs.Registry.counter ~help:"Circuit-breaker trips (any breaker)"
       Kondo_obs.Registry.default "kondo_breaker_trips_total")

let m_recoveries =
  lazy
    (Kondo_obs.Registry.counter ~help:"Circuit-breaker half-open recoveries (any breaker)"
       Kondo_obs.Registry.default "kondo_breaker_recoveries_total")

let m_rejections =
  lazy
    (Kondo_obs.Registry.counter ~help:"Calls refused by an open circuit breaker (any breaker)"
       Kondo_obs.Registry.default "kondo_breaker_rejections_total")

type config = {
  failure_threshold : int;
  cooldown_ms : float;
  success_threshold : int;
}

let default = { failure_threshold = 5; cooldown_ms = 1000.0; success_threshold = 2 }

type stats = {
  mutable trips : int;
  mutable recoveries : int;
  mutable rejections : int;
}

type t = {
  config : config;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable half_open_successes : int;
  mutable opened_at_ms : float;
  stats : stats;
}

let create ?(config = default) () =
  if config.failure_threshold < 1 then invalid_arg "Breaker: failure_threshold must be >= 1";
  if config.success_threshold < 1 then invalid_arg "Breaker: success_threshold must be >= 1";
  if config.cooldown_ms < 0.0 then invalid_arg "Breaker: negative cooldown";
  { config;
    state = Closed;
    consecutive_failures = 0;
    half_open_successes = 0;
    opened_at_ms = 0.0;
    stats = { trips = 0; recoveries = 0; rejections = 0 } }

let state t = t.state
let stats t = t.stats

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"

let trip t ~now_ms =
  t.state <- Open;
  t.opened_at_ms <- now_ms;
  t.consecutive_failures <- 0;
  t.half_open_successes <- 0;
  t.stats.trips <- t.stats.trips + 1;
  Kondo_obs.Registry.inc (Lazy.force m_trips)

let allow t ~now_ms =
  match t.state with
  | Closed -> true
  | Half_open -> true
  | Open ->
    if now_ms -. t.opened_at_ms >= t.config.cooldown_ms then begin
      t.state <- Half_open;
      t.half_open_successes <- 0;
      true
    end
    else begin
      t.stats.rejections <- t.stats.rejections + 1;
      Kondo_obs.Registry.inc (Lazy.force m_rejections);
      false
    end

let record_success t =
  match t.state with
  | Closed -> t.consecutive_failures <- 0
  | Half_open ->
    t.half_open_successes <- t.half_open_successes + 1;
    if t.half_open_successes >= t.config.success_threshold then begin
      t.state <- Closed;
      t.consecutive_failures <- 0;
      t.half_open_successes <- 0;
      t.stats.recoveries <- t.stats.recoveries + 1;
      Kondo_obs.Registry.inc (Lazy.force m_recoveries)
    end
  | Open -> ()

let record_failure t ~now_ms =
  match t.state with
  | Closed ->
    t.consecutive_failures <- t.consecutive_failures + 1;
    if t.consecutive_failures >= t.config.failure_threshold then trip t ~now_ms
  | Half_open -> trip t ~now_ms
  | Open -> ()
