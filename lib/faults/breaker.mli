(** Circuit breaker: stop hammering a failing remote.

    Classic closed / open / half-open state machine over a virtual
    clock supplied by the caller ([now_ms]), so transitions are exactly
    reproducible.  [failure_threshold] consecutive failures trip the
    breaker open; after [cooldown_ms] the next caller is let through as
    a half-open probe; [success_threshold] consecutive probe successes
    close it again, any probe failure re-opens it. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (** consecutive failures that trip the breaker *)
  cooldown_ms : float;      (** open time before a half-open probe *)
  success_threshold : int;  (** probe successes required to close *)
}

val default : config
(** 5 failures, 1 s cooldown, 2 probe successes. *)

type stats = {
  mutable trips : int;       (** closed/half-open → open transitions *)
  mutable recoveries : int;  (** half-open → closed transitions *)
  mutable rejections : int;  (** calls refused while open *)
}

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on nonsensical config fields. *)

val state : t -> state
val stats : t -> stats
val state_name : state -> string

val allow : t -> now_ms:float -> bool
(** May a call proceed now?  Counts a rejection when refusing; moves an
    open breaker whose cooldown elapsed to half-open (and allows the
    probe). *)

val record_success : t -> unit
val record_failure : t -> now_ms:float -> unit
