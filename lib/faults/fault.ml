type error =
  | Transient of string
  | Timeout of { cost_ms : float }
  | Corrupt of string
  | Permanent of string

type class_ = Retryable | Fatal

let classify = function
  | Transient _ | Timeout _ | Corrupt _ -> Retryable
  | Permanent _ -> Fatal

let is_retryable e = classify e = Retryable

let cost_ms = function
  | Timeout { cost_ms } -> cost_ms
  | Transient _ | Corrupt _ | Permanent _ -> 1.0

let to_string = function
  | Transient msg -> Printf.sprintf "transient: %s" msg
  | Timeout { cost_ms } -> Printf.sprintf "timeout after %.0fms" cost_ms
  | Corrupt msg -> Printf.sprintf "corrupt: %s" msg
  | Permanent msg -> Printf.sprintf "permanent: %s" msg

let of_exn = function
  | Sys_error msg -> Transient (Printf.sprintf "io error (%s)" msg)
  | Out_of_memory as e -> raise e
  | Stack_overflow as e -> raise e
  | exn -> Permanent (Printexc.to_string exn)
