(** Failure taxonomy for fallible I/O and remote fetches.

    Every fallible operation in the fault-tolerant runtime reports one of
    these errors; the retry combinator and the circuit breaker act on the
    {!classify} of the error, never on its text.  Timeouts carry the
    virtual time they consumed so deadline budgets stay deterministic. *)

type error =
  | Transient of string        (** worth retrying: flaky I/O, short read *)
  | Timeout of { cost_ms : float }
      (** the attempt consumed [cost_ms] of (virtual) time before failing *)
  | Corrupt of string          (** payload failed CRC verification; retryable *)
  | Permanent of string        (** retrying cannot help *)

type class_ = Retryable | Fatal

val classify : error -> class_
val is_retryable : error -> bool

val cost_ms : error -> float
(** Virtual time an attempt ending in this error consumed: the carried
    cost for timeouts, a nominal 1 ms otherwise. *)

val to_string : error -> string

val of_exn : exn -> error
(** Map a leaked exception to an error: [Sys_error] is transient (the
    file system may recover), everything else permanent.  Re-raises
    [Out_of_memory] and [Stack_overflow]. *)
