open Kondo_prng

type kind = Inject_transient | Inject_timeout | Inject_short_read | Inject_corrupt | Inject_permanent

type rates = {
  transient : float;
  timeout : float;
  short_read : float;
  corrupt : float;
  permanent : float;
}

type t = {
  seed : int;
  rates : rates;
  timeout_cost_ms : float;
  counters : (string, int) Hashtbl.t;
}

let zero_rates = { transient = 0.0; timeout = 0.0; short_read = 0.0; corrupt = 0.0; permanent = 0.0 }

let total r = r.transient +. r.timeout +. r.short_read +. r.corrupt +. r.permanent

let validate rates timeout_cost_ms =
  let check name v =
    if v < 0.0 || v > 1.0 || Float.is_nan v then
      invalid_arg (Printf.sprintf "Fault_plan: rate %s=%g outside [0,1]" name v)
  in
  check "transient" rates.transient;
  check "timeout" rates.timeout;
  check "short" rates.short_read;
  check "corrupt" rates.corrupt;
  check "permanent" rates.permanent;
  if total rates > 1.0 then
    invalid_arg (Printf.sprintf "Fault_plan: rates sum to %g > 1" (total rates));
  if timeout_cost_ms < 0.0 then invalid_arg "Fault_plan: negative timeout cost"

let create ?(transient = 0.0) ?(timeout = 0.0) ?(timeout_cost_ms = 100.0) ?(short_read = 0.0)
    ?(corrupt = 0.0) ?(permanent = 0.0) ~seed () =
  let rates = { transient; timeout; short_read; corrupt; permanent } in
  validate rates timeout_cost_ms;
  { seed; rates; timeout_cost_ms; counters = Hashtbl.create 8 }

let none = create ~seed:0 ()

let is_none t = total t.rates = 0.0

let seed t = t.seed

let copy t = { t with counters = Hashtbl.copy t.counters }

(* The n-th decision at a call site is a pure function of
   (seed, site, n): deterministic whatever other sites ran in between,
   so two runs of the same command — or the same run at a different
   [--jobs] — draw identical fault sequences per site. *)
let decide_at t ~site n =
  if is_none t then None
  else begin
    let h = Hashtbl.hash site in
    let rng = Rng.create ((t.seed * 1000003) lxor (h * 8191) lxor (n * 65599)) in
    let u = Rng.float rng 1.0 in
    let r = t.rates in
    let c1 = r.transient in
    let c2 = c1 +. r.timeout in
    let c3 = c2 +. r.short_read in
    let c4 = c3 +. r.corrupt in
    let c5 = c4 +. r.permanent in
    if u < c1 then Some Inject_transient
    else if u < c2 then Some Inject_timeout
    else if u < c3 then Some Inject_short_read
    else if u < c4 then Some Inject_corrupt
    else if u < c5 then Some Inject_permanent
    else None
  end

let decide t ~site =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.counters site) in
  Hashtbl.replace t.counters site (n + 1);
  decide_at t ~site n

let wrap t ~site ?corrupt ?shorten thunk =
  let run_thunk () = try thunk () with exn -> Error (Fault.of_exn exn) in
  match decide t ~site with
  | None -> run_thunk ()
  | Some Inject_transient -> Error (Fault.Transient (Printf.sprintf "injected at %s" site))
  | Some Inject_timeout -> Error (Fault.Timeout { cost_ms = t.timeout_cost_ms })
  | Some Inject_permanent -> Error (Fault.Permanent (Printf.sprintf "injected at %s" site))
  | Some Inject_short_read -> (
    match shorten with
    | None -> Error (Fault.Transient (Printf.sprintf "injected short read at %s" site))
    | Some f -> Result.map f (run_thunk ()))
  | Some Inject_corrupt -> (
    match corrupt with
    | None -> Error (Fault.Corrupt (Printf.sprintf "injected at %s" site))
    | Some f -> Result.map f (run_thunk ()))

(* ---- textual plans (--fault-plan) ---- *)

let to_string t =
  if is_none t then "none"
  else begin
    let r = t.rates in
    let parts = ref [] in
    let add k v = if v > 0.0 then parts := Printf.sprintf "%s=%g" k v :: !parts in
    add "permanent" r.permanent;
    add "corrupt" r.corrupt;
    add "short" r.short_read;
    if r.timeout > 0.0 && t.timeout_cost_ms <> 100.0 then
      parts := Printf.sprintf "timeout-cost-ms=%g" t.timeout_cost_ms :: !parts;
    add "timeout" r.timeout;
    add "transient" r.transient;
    Printf.sprintf "seed=%d,%s" t.seed (String.concat "," !parts)
  end

let of_string s =
  let s = String.trim s in
  if s = "" || s = "none" || s = "off" then Ok none
  else begin
    try
      let seed = ref 1 in
      let rates = ref zero_rates in
      let cost = ref 100.0 in
      List.iter
        (fun part ->
          let part = String.trim part in
          if part <> "" then
            match String.index_opt part '=' with
            | None -> failwith (Printf.sprintf "expected key=value, got %S" part)
            | Some i ->
              let k = String.trim (String.sub part 0 i) in
              let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
              let fv () =
                match float_of_string_opt v with
                | Some f -> f
                | None -> failwith (Printf.sprintf "bad number %S for %s" v k)
              in
              (match k with
              | "seed" -> (
                match int_of_string_opt v with
                | Some n -> seed := n
                | None -> failwith (Printf.sprintf "bad seed %S" v))
              | "transient" -> rates := { !rates with transient = fv () }
              | "timeout" -> rates := { !rates with timeout = fv () }
              | "short" | "short-read" -> rates := { !rates with short_read = fv () }
              | "corrupt" -> rates := { !rates with corrupt = fv () }
              | "permanent" -> rates := { !rates with permanent = fv () }
              | "timeout-cost-ms" -> cost := fv ()
              | _ -> failwith (Printf.sprintf "unknown key %S" k)))
        (String.split_on_char ',' s);
      validate !rates !cost;
      Ok { seed = !seed; rates = !rates; timeout_cost_ms = !cost; counters = Hashtbl.create 8 }
    with Failure msg | Invalid_argument msg -> Error msg
  end
