(** Deterministic fault injection.

    A plan wraps fallible operations and — driven by a PRNG seed and
    per-fault-kind rates — injects transient failures, timeouts, short
    reads, corrupted payloads, and permanent failures.  The n-th decision
    at a call site is a {e pure function of (seed, site, n)}: independent
    of what other sites ran in between, of wall-clock time, and of the
    [--jobs] count, so every failure scenario reproduces exactly in
    tests, benches, and CI. *)

type kind = Inject_transient | Inject_timeout | Inject_short_read | Inject_corrupt | Inject_permanent

type t

val none : t
(** Injects nothing; {!wrap} still protects the thunk. *)

val create :
  ?transient:float ->
  ?timeout:float ->
  ?timeout_cost_ms:float ->
  ?short_read:float ->
  ?corrupt:float ->
  ?permanent:float ->
  seed:int ->
  unit ->
  t
(** Per-call rates in [\[0,1\]] (summing to at most 1; at most one fault
    fires per call).  [timeout_cost_ms] (default 100) is the virtual time
    an injected timeout consumes against retry deadline budgets.
    @raise Invalid_argument on rates outside [\[0,1\]] or summing > 1. *)

val is_none : t -> bool
val seed : t -> int

val copy : t -> t
(** Independent plan with the same parameters and per-site positions. *)

val decide : t -> site:string -> kind option
(** Draw the next decision for [site], advancing its counter. *)

val decide_at : t -> site:string -> int -> kind option
(** The n-th decision for [site] as a pure function — what the n-th
    {!decide} call returns, without advancing anything. *)

val wrap :
  t ->
  site:string ->
  ?corrupt:('a -> 'a) ->
  ?shorten:('a -> 'a) ->
  (unit -> ('a, Fault.error) result) ->
  ('a, Fault.error) result
(** Run a fallible thunk under the plan.  Injected transient/timeout/
    permanent faults preempt the thunk; short-read and corrupt faults run
    it and mangle a successful payload with [shorten]/[corrupt] (when
    omitted, they degrade to a transient/corrupt error instead, so any
    thunk can be wrapped).  Exceptions escaping the thunk are mapped
    through {!Fault.of_exn}. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse a plan spec: comma-separated [key=value] with keys [seed],
    [transient], [timeout], [timeout-cost-ms], [short], [corrupt],
    [permanent] — e.g. ["seed=7,transient=0.2,timeout=0.05"].  [""],
    ["none"], and ["off"] mean {!none}. *)
