(* Same IEEE 802.3 polynomial as KH5's Binio.crc32; reimplemented here
   because this library sits below kondo_h5 in the dependency order. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub buf pos len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 buf = crc32_sub buf 0 (Bytes.length buf)

let crc32_string s = crc32 (Bytes.unsafe_of_string s)

let header_len = 8

let write oc payload =
  let hdr = Bytes.create header_len in
  Bytes.set_int32_le hdr 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le hdr 4 (Int32.of_int (crc32_string payload));
  output_bytes oc hdr;
  output_string oc payload;
  flush oc

let read_one buf pos =
  let n = Bytes.length buf in
  if pos + header_len > n then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_le buf pos) in
    let crc = Int32.to_int (Bytes.get_int32_le buf (pos + 4)) land 0xFFFFFFFF in
    if len < 0 || pos + header_len + len > n then None
    else if crc32_sub buf (pos + header_len) len <> crc then None
    else Some (Bytes.sub_string buf (pos + header_len) len, pos + header_len + len)
  end

let read_all buf ~pos =
  let n = Bytes.length buf in
  let rec go pos acc =
    if pos = n then (List.rev acc, true)
    else
      match read_one buf pos with
      | Some (payload, next) -> go next (payload :: acc)
      | None -> (List.rev acc, false)
  in
  go pos []

let atomic_write path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     f oc;
     flush oc;
     close_out oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)
