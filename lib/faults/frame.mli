(** Crash-safe persistence primitives: CRC-framed record streams and
    atomic file replacement.

    A frame is [u32 length][u32 CRC-32][payload], little-endian.  A
    writer that appends whole frames and flushes leaves — after a crash
    at {e any} byte — a prefix of valid frames followed by at most one
    torn frame, which {!read_all} detects and drops: loaders salvage the
    longest valid prefix instead of failing the whole file.

    {!atomic_write} is the complementary whole-file story: write to
    [path ^ ".tmp"], flush, rename — a crash mid-save never destroys the
    previous complete file. *)

val crc32 : bytes -> int
(** IEEE 802.3 CRC-32 (the same polynomial as KH5's [Binio.crc32]). *)

val crc32_string : string -> int

val header_len : int
(** Bytes of framing overhead per frame (8). *)

val write : out_channel -> string -> unit
(** Append one frame and flush the channel. *)

val read_one : bytes -> int -> (string * int) option
(** [read_one buf pos] parses the frame at [pos]: [Some (payload, next)]
    or [None] when the frame is torn, truncated, or CRC-corrupt. *)

val read_all : bytes -> pos:int -> string list * bool
(** All valid frames from [pos]; the boolean is [true] iff the buffer
    ended exactly on a frame boundary (nothing was dropped). *)

val atomic_write : string -> (out_channel -> unit) -> unit
(** Run the writer against [path ^ ".tmp"], flush, and rename over
    [path].  On exception the temp file is removed and [path] is left
    untouched. *)

val read_file : string -> bytes
(** Whole file as bytes. *)
