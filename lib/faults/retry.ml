open Kondo_prng

type policy = {
  max_attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  multiplier : float;
  jitter : float;
  deadline_ms : float;
}

let default =
  { max_attempts = 4;
    base_delay_ms = 10.0;
    max_delay_ms = 1000.0;
    multiplier = 2.0;
    jitter = 0.5;
    deadline_ms = 5000.0 }

let validate p =
  if p.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1";
  if p.base_delay_ms < 0.0 || p.max_delay_ms < 0.0 then invalid_arg "Retry: negative delay";
  if p.multiplier < 1.0 then invalid_arg "Retry: multiplier must be >= 1";
  if p.jitter < 0.0 || p.jitter > 1.0 then invalid_arg "Retry: jitter outside [0,1]";
  if p.deadline_ms < 0.0 then invalid_arg "Retry: negative deadline"

(* Backoff before retrying after the [attempt]-th failure (attempt >= 1):
   capped exponential, shrunk by up to [jitter] of itself.  Jitter only
   shrinks, so the cap is also the worst case. *)
let delay p ~rng ~attempt =
  let raw = p.base_delay_ms *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min p.max_delay_ms raw in
  capped *. (1.0 -. (p.jitter *. Rng.float rng 1.0))

let delays p ~rng n = List.init n (fun i -> delay p ~rng ~attempt:(i + 1))

type 'a outcome = {
  result : ('a, Fault.error) result;
  attempts : int;
  elapsed_ms : float;
}

let retries o = o.attempts - 1

(* Aggregate attempt/retry counters across every Retry.run call site
   (runtime remote fetches, store client exchanges, ...). *)
let m_attempts =
  lazy
    (Kondo_obs.Registry.counter ~help:"Attempts made under Retry.run"
       Kondo_obs.Registry.default "kondo_retry_attempts_total")

let m_retries =
  lazy
    (Kondo_obs.Registry.counter ~help:"Retries (attempts beyond the first) under Retry.run"
       Kondo_obs.Registry.default "kondo_retry_retries_total")

let run ?on_retry p ~rng f =
  validate p;
  let rec go attempt elapsed =
    match f ~attempt with
    | Ok v -> { result = Ok v; attempts = attempt; elapsed_ms = elapsed }
    | Error e ->
      let elapsed = elapsed +. Fault.cost_ms e in
      if (not (Fault.is_retryable e)) || attempt >= p.max_attempts then
        { result = Error e; attempts = attempt; elapsed_ms = elapsed }
      else begin
        let d = delay p ~rng ~attempt in
        if elapsed +. d > p.deadline_ms then
          { result = Error e; attempts = attempt; elapsed_ms = elapsed }
        else begin
          (match on_retry with Some g -> g attempt e | None -> ());
          go (attempt + 1) (elapsed +. d)
        end
      end
  in
  let outcome = go 1 0.0 in
  Kondo_obs.Registry.inc ~by:outcome.attempts (Lazy.force m_attempts);
  Kondo_obs.Registry.inc ~by:(retries outcome) (Lazy.force m_retries);
  outcome
