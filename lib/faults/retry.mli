(** Retry with capped exponential backoff, deterministic jitter, and a
    deadline budget.

    Time is {e virtual}: delays and timeout costs are accumulated in
    milliseconds, never slept, so retry behaviour — including when the
    deadline budget cuts a sequence short — is a deterministic function
    of (policy, rng stream, error sequence) and reproduces bit-exactly
    in tests and benches. *)

type policy = {
  max_attempts : int;     (** total attempts, >= 1 *)
  base_delay_ms : float;  (** backoff after the first failure *)
  max_delay_ms : float;   (** cap on any single backoff *)
  multiplier : float;     (** exponential growth factor, >= 1 *)
  jitter : float;         (** in [0,1]: each delay shrinks by up to this fraction *)
  deadline_ms : float;    (** total virtual budget across attempts and delays *)
}

val default : policy
(** 4 attempts, 10 ms base, x2, 1 s cap, 0.5 jitter, 5 s deadline. *)

val validate : policy -> unit
(** @raise Invalid_argument on nonsensical fields. *)

val delay : policy -> rng:Kondo_prng.Rng.t -> attempt:int -> float
(** Backoff after the [attempt]-th failed attempt ([attempt >= 1]). *)

val delays : policy -> rng:Kondo_prng.Rng.t -> int -> float list
(** The first [n] backoff delays for one rng stream — the exact sequence
    {!run} would use. *)

type 'a outcome = {
  result : ('a, Fault.error) result;  (** final success or last error *)
  attempts : int;                     (** attempts actually made *)
  elapsed_ms : float;                 (** virtual time consumed *)
}

val retries : 'a outcome -> int

val run :
  ?on_retry:(int -> Fault.error -> unit) ->
  policy ->
  rng:Kondo_prng.Rng.t ->
  (attempt:int -> ('a, Fault.error) result) ->
  'a outcome
(** Run [f] until success, a {!Fault.Fatal} error, [max_attempts], or
    the deadline budget cannot fit the next backoff.  [on_retry] fires
    before each re-attempt with the attempt number that just failed. *)
