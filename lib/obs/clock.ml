type virtual_state = { mutable at : float; step : float; lock : Mutex.t }

type t =
  | Real
  | Virtual of virtual_state

let real = Real

let virtual_ ?(start = 0.0) ?(step = 0.0) () =
  if step < 0.0 then invalid_arg "Clock.virtual_: negative step";
  Virtual { at = start; step; lock = Mutex.create () }

let now = function
  | Real -> Unix.gettimeofday ()
  | Virtual v ->
    Mutex.lock v.lock;
    let t = v.at in
    v.at <- v.at +. v.step;
    Mutex.unlock v.lock;
    t

let advance t delta =
  if delta < 0.0 then invalid_arg "Clock.advance: negative delta";
  match t with
  | Real -> ()
  | Virtual v ->
    Mutex.lock v.lock;
    v.at <- v.at +. delta;
    Mutex.unlock v.lock

let is_virtual = function Real -> false | Virtual _ -> true
