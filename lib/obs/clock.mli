(** Wall-clock abstraction for every timed observation.

    Instrumentation reads time through a [Clock.t] instead of calling
    [Unix.gettimeofday] directly, so tests and CI byte-identity checks
    can substitute a {e virtual} clock: a deterministic counter that
    starts at [start] and advances by [step] on every read.  Two virtual
    clocks with the same parameters produce the same timestamp sequence
    on any machine, making trace and metrics golden files byte-stable. *)

type t

val real : t
(** Reads [Unix.gettimeofday]; {!advance} is a no-op. *)

val virtual_ : ?start:float -> ?step:float -> unit -> t
(** A deterministic clock.  Every {!now} returns the current value and
    then advances it by [step] (default [0.0]); {!advance} adds an
    explicit delta.  Defaults: [start = 0.0].  Domain-safe. *)

val now : t -> float
(** The current time in seconds (Unix epoch for {!real}). *)

val advance : t -> float -> unit
(** Advance a virtual clock by a delta in seconds; no-op on {!real}.
    @raise Invalid_argument on a negative delta. *)

val is_virtual : t -> bool
