let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null"
  else if Float.is_integer (f *. 0.0) then Printf.sprintf "%.12g" f
  else "null" (* infinities *)

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
