(** Minimal JSON string emission shared by the metrics and trace
    exporters.  Number formatting is deterministic: integral floats print
    with one decimal, others via [%.12g], NaN/infinities as [null] —
    the same convention as the report writer in [lib/core], so every
    JSON artifact the system emits renders numbers identically. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)

val number : float -> string

val obj : (string * string) list -> string
(** [obj fields] renders [{"k":v,...}] where each value is already
    rendered JSON. *)

val arr : string list -> string
(** [arr items] renders [[v,...]] where each item is already rendered. *)
