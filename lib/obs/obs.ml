let current : Trace.t option Atomic.t = Atomic.make None

let set_tracer o = Atomic.set current o
let tracer () = Atomic.get current
let enabled () = Option.is_some (Atomic.get current)

let span ?cat ?args ?result_args name f =
  match tracer () with
  | None -> f ()
  | Some t -> (
    let s = Trace.begin_span t ?cat ?args name in
    match f () with
    | v ->
      let end_args = match result_args with Some g -> g v | None -> [] in
      Trace.end_span t ~args:end_args s;
      v
    | exception e ->
      Trace.end_span t ~args:[ ("error", Printexc.to_string e) ] s;
      raise e)

let instant ?cat ?args name =
  match tracer () with None -> () | Some t -> Trace.instant t ?cat ?args name

let metrics = Registry.default
