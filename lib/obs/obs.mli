(** The ambient observability facade.

    Instrumented code paths register their instruments in
    {!Registry.default} (always on — counters are a couple of atomic
    adds) and emit spans through the {e ambient tracer}, which is [None]
    until something installs one ({!set_tracer}); with no tracer
    installed {!span} runs its thunk directly, so tracing costs nothing
    when off.  The CLI installs a tracer for the duration of a command
    when [--trace FILE] is given and exports it on the way out. *)

val set_tracer : Trace.t option -> unit
val tracer : unit -> Trace.t option
val enabled : unit -> bool
(** Is a tracer currently installed? *)

val span :
  ?cat:string ->
  ?args:(string * string) list ->
  ?result_args:('a -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** Run a thunk inside an ambient span (or run it bare when no tracer is
    installed).  [result_args] computes end-time attributes from the
    result; an escaping exception ends the span with an ["error"]
    attribute and re-raises. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

val metrics : Registry.t
(** Alias for {!Registry.default}. *)
