(* Shard count: a small power of two.  Writers index by domain id, so
   up to [shards] domains increment without cache-line contention; more
   domains than shards only share counters pairwise. *)
let shards = 16

let shard_index () = (Domain.self () :> int) land (shards - 1)

type counter = { c_cells : int Atomic.t array }

type gauge = { g_cell : float Atomic.t }

type hshard = {
  h_lock : Mutex.t;
  h_counts : int array; (* per-bucket, +Inf last *)
  mutable h_sum : float;
  mutable h_count : int;
}

type histogram = {
  bounds : float array; (* strictly increasing upper bounds, no +Inf *)
  h_shards : hshard array;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type entry = { help : string; instr : instrument }

type t = { lock : Mutex.t; tbl : (string, entry) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Get-or-create under the registry lock; the first registration's help
   (and buckets) win, a kind clash is a programming error. *)
let register t name ~help ~make ~select =
  if name = "" then invalid_arg "Registry: empty metric name";
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some e -> (
        match select e.instr with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Registry: %s already registered as a %s" name
               (kind_name e.instr)))
      | None ->
        let v, instr = make () in
        Hashtbl.add t.tbl name { help; instr };
        v)

let counter ?(help = "") t name =
  register t name ~help
    ~make:(fun () ->
      let c = { c_cells = Array.init shards (fun _ -> Atomic.make 0) } in
      (c, Counter c))
    ~select:(function Counter c -> Some c | _ -> None)

let inc ?(by = 1) c =
  if by < 0 then invalid_arg "Registry.inc: negative increment";
  if by > 0 then ignore (Atomic.fetch_and_add c.c_cells.(shard_index ()) by)

let counter_value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells

let gauge ?(help = "") t name =
  register t name ~help
    ~make:(fun () ->
      let g = { g_cell = Atomic.make 0.0 } in
      (g, Gauge g))
    ~select:(function Gauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let histogram ?(help = "") ?(buckets = default_buckets) t name =
  if Array.length buckets = 0 then invalid_arg "Registry.histogram: no buckets";
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Registry.histogram: buckets must be strictly increasing")
    buckets;
  register t name ~help
    ~make:(fun () ->
      let n = Array.length buckets in
      let h =
        { bounds = Array.copy buckets;
          h_shards =
            Array.init shards (fun _ ->
                { h_lock = Mutex.create ();
                  h_counts = Array.make (n + 1) 0;
                  h_sum = 0.0;
                  h_count = 0 }) }
      in
      (h, Histogram h))
    ~select:(function Histogram h -> Some h | _ -> None)

let bucket_of h v =
  let n = Array.length h.bounds in
  let rec go i = if i >= n then n else if v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let s = h.h_shards.(shard_index ()) in
  Mutex.lock s.h_lock;
  s.h_counts.(bucket_of h v) <- s.h_counts.(bucket_of h v) + 1;
  s.h_sum <- s.h_sum +. v;
  s.h_count <- s.h_count + 1;
  Mutex.unlock s.h_lock

(* Merge the shards under their locks: (per-bucket counts, sum, count). *)
let histogram_merge h =
  let n = Array.length h.bounds in
  let counts = Array.make (n + 1) 0 in
  let sum = ref 0.0 and count = ref 0 in
  Array.iter
    (fun s ->
      Mutex.lock s.h_lock;
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.h_counts;
      sum := !sum +. s.h_sum;
      count := !count + s.h_count;
      Mutex.unlock s.h_lock)
    h.h_shards;
  (counts, !sum, !count)

let histogram_count h =
  let _, _, count = histogram_merge h in
  count

let histogram_sum h =
  let _, sum, _ = histogram_merge h in
  sum

let histogram_buckets h =
  let counts, _, _ = histogram_merge h in
  let n = Array.length h.bounds in
  let acc = ref 0 in
  List.init (n + 1) (fun i ->
      acc := !acc + counts.(i);
      ((if i = n then infinity else h.bounds.(i)), !acc))

let sorted_entries t =
  locked t (fun () ->
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []))

let le_string b = if b = infinity then "+Inf" else Jsonw.number b

let expose t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, e) ->
      if e.help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name e.help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name (kind_name e.instr));
      match e.instr with
      | Counter c -> Buffer.add_string b (Printf.sprintf "%s %d\n" name (counter_value c))
      | Gauge g ->
        Buffer.add_string b (Printf.sprintf "%s %s\n" name (Jsonw.number (gauge_value g)))
      | Histogram h ->
        List.iter
          (fun (bound, cum) ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (le_string bound) cum))
          (histogram_buckets h);
        let _, sum, count = histogram_merge h in
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (Jsonw.number sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name count))
    (sorted_entries t);
  Buffer.contents b

let to_json t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, e) ->
      match e.instr with
      | Counter c -> counters := (name, string_of_int (counter_value c)) :: !counters
      | Gauge g -> gauges := (name, Jsonw.number (gauge_value g)) :: !gauges
      | Histogram h ->
        let buckets =
          Jsonw.arr
            (List.map
               (fun (bound, cum) ->
                 Jsonw.obj
                   [ ("le", Jsonw.str (le_string bound)); ("count", string_of_int cum) ])
               (histogram_buckets h))
        in
        let _, sum, count = histogram_merge h in
        histograms :=
          ( name,
            Jsonw.obj
              [ ("buckets", buckets);
                ("sum", Jsonw.number sum);
                ("count", string_of_int count) ] )
          :: !histograms)
    (sorted_entries t);
  Jsonw.obj
    [ ("counters", Jsonw.obj (List.rev !counters));
      ("gauges", Jsonw.obj (List.rev !gauges));
      ("histograms", Jsonw.obj (List.rev !histograms)) ]

let reset t =
  List.iter
    (fun (_, e) ->
      match e.instr with
      | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.c_cells
      | Gauge g -> Atomic.set g.g_cell 0.0
      | Histogram h ->
        Array.iter
          (fun s ->
            Mutex.lock s.h_lock;
            Array.fill s.h_counts 0 (Array.length s.h_counts) 0;
            s.h_sum <- 0.0;
            s.h_count <- 0;
            Mutex.unlock s.h_lock)
          h.h_shards)
    (sorted_entries t)
