(** The metrics registry: named counters, gauges, and fixed-bucket
    histograms, safe to update concurrently from any domain.

    Counters and histograms keep {e per-shard} accumulators — a writer
    touches only the shard indexed by its domain id, so hot-path
    increments never contend across domains — and a snapshot
    ({!expose}, {!to_json}, or the [_value] readers) merges the shards.
    Registration is get-or-create: asking twice for the same name
    returns the same instrument (the first registration's help text and
    buckets win), so independent modules can share one process-global
    registry ({!default}) without coordination.  Registering a name as
    two different kinds is an error.

    Exposition is Prometheus-style text ([# HELP] / [# TYPE] /
    [name value], histograms as [_bucket{le="..."}]/[_sum]/[_count])
    with metrics sorted by name, so output for a given set of values is
    byte-stable. *)

type t

val create : unit -> t
val default : t
(** The process-global registry every production code path registers
    into.  Tests wanting byte-stable snapshots should {!create} their
    own. *)

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : ?help:string -> t -> string -> counter
val inc : ?by:int -> counter -> unit
(** [by] defaults to 1.  @raise Invalid_argument on a negative [by]. *)

val counter_value : counter -> int

(** {1 Gauges} — a float that can move both ways; last write wins. *)

type gauge

val gauge : ?help:string -> t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} — fixed upper-bound buckets plus sum and count. *)

type histogram

val default_buckets : float array
(** Latency-in-seconds buckets: 1µs … 10s, decades. *)

val histogram : ?help:string -> ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit [+Inf]
    bucket is always appended.  Default {!default_buckets}.
    @raise Invalid_argument on empty or non-increasing buckets. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) list
(** Cumulative per-bucket counts [(upper_bound, count <= bound)], the
    [+Inf] bucket last (bound [infinity]). *)

(** {1 Snapshots} *)

val expose : t -> string
(** Prometheus text exposition, metrics sorted by name. *)

val to_json : t -> string
(** A one-line JSON snapshot:
    [{"counters":{...},"gauges":{...},"histograms":{...}}], keys
    sorted. *)

val reset : t -> unit
(** Zero every registered instrument (instruments stay registered). *)
