type phase = Complete | Instant

type event = {
  ev_name : string;
  ev_cat : string;
  ph : phase;
  ts_us : float;
  dur_us : float;
  tid : int;
  ev_args : (string * string) list;
  seq : int; (* recording order, the sort tiebreak *)
}

type t = {
  t_clock : Clock.t;
  lock : Mutex.t;
  mutable events : event list; (* newest first *)
  mutable next_seq : int;
}

let create ?(clock = Clock.real) () =
  { t_clock = clock; lock = Mutex.create (); events = []; next_seq = 0 }

let clock t = t.t_clock

type span = {
  s_name : string;
  s_cat : string;
  s_args : (string * string) list;
  s_t0 : float;
  s_tid : int;
}

let us s = s *. 1e6

let record t ev =
  Mutex.lock t.lock;
  let ev = { ev with seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  t.events <- ev :: t.events;
  Mutex.unlock t.lock

let begin_span t ?(cat = "kondo") ?(args = []) name =
  { s_name = name;
    s_cat = cat;
    s_args = args;
    s_t0 = Clock.now t.t_clock;
    s_tid = (Domain.self () :> int) }

let end_span t ?(args = []) s =
  let t1 = Clock.now t.t_clock in
  record t
    { ev_name = s.s_name;
      ev_cat = s.s_cat;
      ph = Complete;
      ts_us = us s.s_t0;
      dur_us = us (Float.max 0.0 (t1 -. s.s_t0));
      tid = s.s_tid;
      ev_args = s.s_args @ args;
      seq = 0 }

let with_span t ?cat ?args name f =
  let s = begin_span t ?cat ?args name in
  match f () with
  | v ->
    end_span t s;
    v
  | exception e ->
    end_span t ~args:[ ("error", Printexc.to_string e) ] s;
    raise e

let instant t ?(cat = "kondo") ?(args = []) name =
  record t
    { ev_name = name;
      ev_cat = cat;
      ph = Instant;
      ts_us = us (Clock.now t.t_clock);
      dur_us = 0.0;
      tid = (Domain.self () :> int);
      ev_args = args;
      seq = 0 }

let event_count t =
  Mutex.lock t.lock;
  let n = List.length t.events in
  Mutex.unlock t.lock;
  n

(* Sorted snapshot: by timestamp, then domain, then recording order
   reversed — at equal timestamps a later-recorded span is the parent
   (it ended after its children), and parents must precede children. *)
let sorted_events t =
  Mutex.lock t.lock;
  let evs = t.events in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      match compare a.ts_us b.ts_us with
      | 0 -> (
        match compare a.tid b.tid with 0 -> compare b.seq a.seq | c -> c)
      | c -> c)
    evs

let event_json ev =
  let base =
    [ ("name", Jsonw.str ev.ev_name);
      ("cat", Jsonw.str ev.ev_cat);
      ("ph", Jsonw.str (match ev.ph with Complete -> "X" | Instant -> "i"));
      ("ts", Jsonw.number ev.ts_us);
      ("pid", "0");
      ("tid", string_of_int ev.tid) ]
  in
  let dur = match ev.ph with Complete -> [ ("dur", Jsonw.number ev.dur_us) ] | Instant -> [] in
  let scope = match ev.ph with Instant -> [ ("s", Jsonw.str "t") ] | Complete -> [] in
  let args =
    match ev.ev_args with
    | [] -> []
    | kvs -> [ ("args", Jsonw.obj (List.map (fun (k, v) -> (k, Jsonw.str v)) kvs)) ]
  in
  Jsonw.obj (base @ dur @ scope @ args)

let to_chrome_json t =
  Jsonw.obj [ ("traceEvents", Jsonw.arr (List.map event_json (sorted_events t))) ]

let args_suffix = function
  | [] -> ""
  | kvs -> " (" ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ ")"

let to_text_tree t =
  let evs = sorted_events t in
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) evs) in
  let b = Buffer.create 512 in
  List.iter
    (fun tid ->
      Buffer.add_string b (Printf.sprintf "[tid %d]\n" tid);
      (* stack of end timestamps of the open ancestors *)
      let stack = ref [] in
      List.iter
        (fun ev ->
          if ev.tid = tid then begin
            while
              match !stack with
              | [] -> false
              | end_ts :: _ -> ev.ts_us >= end_ts
            do
              stack := List.tl !stack
            done;
            let indent = String.make (2 * (1 + List.length !stack)) ' ' in
            (match ev.ph with
            | Complete ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %sus%s\n" indent ev.ev_name (Jsonw.number ev.dur_us)
                   (args_suffix ev.ev_args));
              stack := (ev.ts_us +. ev.dur_us) :: !stack
            | Instant ->
              Buffer.add_string b
                (Printf.sprintf "%s@%s%s\n" indent ev.ev_name (args_suffix ev.ev_args)))
          end)
        evs)
    tids;
  Buffer.contents b
