(** The span tracer: nested begin/end spans with string attributes,
    recorded per completed span and exportable as Chrome [trace_event]
    JSON — loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto} — or as a compact indented text tree.

    Spans are cheap: {!begin_span} only reads the clock; the event is
    recorded (one mutex-protected append) at {!end_span}.  Any domain
    may begin/end spans concurrently; an event carries the recording
    domain's id as its [tid].  With a virtual {!Clock.t} the export is
    byte-stable, which the golden tests rely on. *)

type t

val create : ?clock:Clock.t -> unit -> t
(** [clock] defaults to {!Clock.real}. *)

val clock : t -> Clock.t

type span

val begin_span : t -> ?cat:string -> ?args:(string * string) list -> string -> span
val end_span : t -> ?args:(string * string) list -> span -> unit
(** End-time [args] are appended to the begin-time ones. *)

val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a span; the span ends even on an exception
    (annotated with an ["error"] attribute). *)

val instant : t -> ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val event_count : t -> int

val to_chrome_json : t -> string
(** [{"traceEvents":[...]}] — completed spans as ["ph":"X"] events with
    microsecond [ts]/[dur], instants as ["ph":"i"]; events sorted by
    timestamp then domain then recording order. *)

val to_text_tree : t -> string
(** One block per domain id; spans indented by nesting (reconstructed
    from timestamp containment), each line [name dur_us (k=v, ...)]. *)
