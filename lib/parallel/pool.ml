type t = { jobs : int; busy : bool Atomic.t }

(* Set in each worker domain for the duration of its task loop; consulted
   to reject nested fan-out (the caller's domain never sets it, and the
   jobs = 1 path spawns no workers, so sequential nesting stays legal). *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let max_jobs = 64

(* Fan-out observability: task/spawn counters plus a queue-wait
   histogram (seconds between fan-out start and a task being picked
   up).  Counters are domain-safe per-shard accumulators; the per-task
   clock read is two orders of magnitude below any real task body. *)
let m_fanouts =
  lazy
    (Kondo_obs.Registry.counter ~help:"Pool fan-outs (map_reduce/map_list calls)"
       Kondo_obs.Registry.default "kondo_pool_fanouts_total")

let m_tasks =
  lazy
    (Kondo_obs.Registry.counter ~help:"Tasks executed by pool workers"
       Kondo_obs.Registry.default "kondo_pool_tasks_total")

let m_spawns =
  lazy
    (Kondo_obs.Registry.counter ~help:"Worker domains spawned by pool fan-outs"
       Kondo_obs.Registry.default "kondo_pool_worker_spawns_total")

let m_wait =
  lazy
    (Kondo_obs.Registry.histogram
       ~help:"Seconds between fan-out start and task pick-up"
       Kondo_obs.Registry.default "kondo_pool_task_wait_seconds")

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs = min jobs max_jobs; busy = Atomic.make false }

let jobs t = t.jobs

let default_jobs () = Domain.recommended_domain_count ()

(* Evaluate [f i] for i in [0, n); the result array is indexed by task so
   callers can consume it in task order whatever the execution order. *)
let run_tasks t n f =
  Kondo_obs.Registry.inc (Lazy.force m_fanouts);
  let tasks = Lazy.force m_tasks and wait = Lazy.force m_wait in
  let t_start = Kondo_obs.Clock.now Kondo_obs.Clock.real in
  let capture i =
    Kondo_obs.Registry.observe wait
      (Float.max 0.0 (Kondo_obs.Clock.now Kondo_obs.Clock.real -. t_start));
    Kondo_obs.Registry.inc tasks;
    try Ok (f i) with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  let results = Array.make n None in
  Kondo_obs.Obs.span "pool.fan_out"
    ~args:[ ("tasks", string_of_int n); ("jobs", string_of_int t.jobs) ]
    (fun () ->
      if t.jobs = 1 || n <= 1 then
        for i = 0 to n - 1 do
          results.(i) <- Some (capture i)
        done
      else begin
        if Domain.DLS.get inside_worker then
          invalid_arg "Pool: nested use — map_reduce called from inside a worker task";
        if not (Atomic.compare_and_set t.busy false true) then
          invalid_arg "Pool: this pool is already running a map_reduce";
        Fun.protect
          ~finally:(fun () -> Atomic.set t.busy false)
          (fun () ->
            let next = Atomic.make 0 in
            let worker () =
              Domain.DLS.set inside_worker true;
              let rec loop () =
                let i = Atomic.fetch_and_add next 1 in
                if i < n then begin
                  results.(i) <- Some (capture i);
                  loop ()
                end
              in
              loop ()
            in
            let spawned = min t.jobs n in
            Kondo_obs.Registry.inc ~by:spawned (Lazy.force m_spawns);
            let domains = List.init spawned (fun _ -> Domain.spawn worker) in
            List.iter Domain.join domains)
      end);
  results

let map_reduce t ~n ~map ~reduce ~init =
  if n < 0 then invalid_arg "Pool.map_reduce: n must be >= 0";
  let results = run_tasks t n map in
  (* Leftmost failure wins, deterministically, before any reduction. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  Array.fold_left
    (fun acc r -> match r with Some (Ok v) -> reduce acc v | _ -> assert false)
    init results

let map_list t f xs =
  let arr = Array.of_list xs in
  let out =
    map_reduce t ~n:(Array.length arr) ~map:(fun i -> f arr.(i))
      ~reduce:(fun acc v -> v :: acc) ~init:[]
  in
  List.rev out
