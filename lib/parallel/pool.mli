(** A small domain-based work pool for deterministic fan-out.

    Kondo's hot loops — fuzz rounds in a campaign, the per-program loop of
    multi-dataset debloating, per-cell hull construction in the carver —
    are embarrassingly parallel: every task is a pure function of its
    index.  The pool evaluates such task sets on [jobs] OCaml 5 domains
    and hands the results back {e in task order}, so a parallel run is
    observationally identical to the sequential one regardless of how the
    scheduler interleaved the workers.  Callers keep determinism by making
    each task self-seeding (see {!Kondo_prng.Rng.split_at}) rather than
    sharing a generator.

    [jobs = 1] is the legacy path: tasks run in the calling domain, no
    domain is spawned, and nested use is permitted.  With [jobs > 1],
    calling back into any pool from inside a worker task raises
    [Invalid_argument] — the domain budget is a global resource and
    nesting fan-outs multiplies it; parallelize at one level and force
    [jobs = 1] below (as {!Kondo_core.Pipeline.debloat_file_many} does). *)

type t

val create : jobs:int -> t
(** [create ~jobs] makes a pool that evaluates up to [jobs] tasks
    concurrently.  [jobs] is clamped to [\[1, 64\]]; [jobs < 1] raises
    [Invalid_argument].  Creation is cheap — domains are spawned per
    call, sized to the task count, and joined before returning. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware parallelism
    available to this process. *)

val map_reduce : t -> n:int -> map:(int -> 'a) -> reduce:('b -> 'a -> 'b) -> init:'b -> 'b
(** [map_reduce t ~n ~map ~reduce ~init] evaluates [map i] for
    [i ∈ \[0, n)] on the pool's domains and folds the results as
    [reduce (... (reduce init r₀) ...) rₙ₋₁] — always in index order, on
    the calling domain.  If any task raised, the leftmost task's
    exception is re-raised (with its backtrace) after all workers have
    been joined, and no reduction is performed. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] is [List.map f xs] with the applications evaluated
    on the pool's domains; result order matches input order. *)
