type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  (* MurmurHash3-style avalanche finalizer used by SplitMix64. *)
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let split_at seed i =
  if i < 1 then invalid_arg "Rng.split_at: i must be >= 1";
  (* The parent's state after [i] draws is mix64(seed) + i·γ (a Weyl
     sequence), so the i-th child is computable in O(1) without the
     parent: exactly what a worker needs to seed itself from its index. *)
  { state = mix64 (Int64.add (mix64 (Int64.of_int seed)) (Int64.mul (Int64.of_int i) golden_gamma)) }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over the low 62 bits keeps the draw unbiased. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  if lo = hi then lo else lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. bound

let float_in t lo hi =
  assert (lo <= hi);
  lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let byte t = Char.chr (int t 256)
