(** Deterministic pseudo-random number generation.

    Kondo's fuzz schedules, the baselines, and the experiment drivers all
    consume randomness through this module so that every run is reproducible
    from a single integer seed.  The generator is SplitMix64 (Steele et al.,
    OOPSLA 2014): a 64-bit state advanced by a Weyl sequence and finalized
    with an avalanche mix.  It is small, fast, and passes BigCrush, which is
    more than sufficient for fuzz scheduling. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Two
    generators created from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator whose future stream equals [t]'s. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child are statistically independent. *)

val split_at : int -> int -> t
(** [split_at seed i] is the generator the [i]-th call of [split] on
    [create seed] would return ([i >= 1]), computed as a pure O(1)
    function of [(seed, i)].  Parallel workers use it to seed themselves
    from their task index, so the result stream is independent of how
    tasks were distributed over domains. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]].
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> float
(** Standard normal variate (Box–Muller). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val byte : t -> char
(** Uniform byte. *)
