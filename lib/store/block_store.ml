open Kondo_faults

type shard = {
  lock : Mutex.t;
  tbl : (Chunk.id, bytes) Hashtbl.t;
  mutable bytes : int;
}

type t = {
  shards : shard array;
  path : string option;
  io : Mutex.t; (* serializes appends and compaction *)
  mutable oc : out_channel option;
  mutable salvaged : int;
  mutable intact : bool;
  mutable closed : bool;
}

let shard_of t id =
  (* mix the high bits in: FNV digests are well distributed, but don't
     rely on the low byte alone *)
  let h = Int64.to_int (Int64.logxor id (Int64.shift_right_logical id 17)) land max_int in
  t.shards.(h mod Array.length t.shards)

let frame_payload id chunk =
  let b = Bytes.create (8 + Bytes.length chunk) in
  Bytes.set_int64_le b 0 id;
  Bytes.blit chunk 0 b 8 (Bytes.length chunk);
  Bytes.unsafe_to_string b

let parse_frame payload =
  if String.length payload < 8 then None
  else
    let b = Bytes.unsafe_of_string payload in
    Some (Bytes.get_int64_le b 0, Bytes.sub b 8 (Bytes.length b - 8))

(* Walk the backing file: valid frames plus the offset where validity
   ends (= where appending resumes after truncating the torn tail). *)
let walk_frames buf =
  let rec go pos acc =
    match Frame.read_one buf pos with
    | Some (payload, next) -> go next (payload :: acc)
    | None -> (List.rev acc, pos)
  in
  go 0 []

let open_append path valid_end =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Unix.ftruncate fd valid_end;
  ignore (Unix.lseek fd valid_end Unix.SEEK_SET);
  Unix.out_channel_of_descr fd

let create ?(shards = 8) ?path () =
  let shards = max 1 (min 256 shards) in
  let t =
    { shards =
        Array.init shards (fun _ ->
            { lock = Mutex.create (); tbl = Hashtbl.create 64; bytes = 0 });
      path;
      io = Mutex.create ();
      oc = None;
      salvaged = 0;
      intact = true;
      closed = false }
  in
  (match path with
  | None -> ()
  | Some p ->
    let valid_end =
      if Sys.file_exists p then begin
        let buf = Frame.read_file p in
        let frames, valid_end = walk_frames buf in
        t.intact <- valid_end = Bytes.length buf;
        List.iter
          (fun payload ->
            match parse_frame payload with
            | None -> t.intact <- false
            | Some (id, chunk) ->
              let s = shard_of t id in
              if not (Hashtbl.mem s.tbl id) then begin
                Hashtbl.add s.tbl id chunk;
                s.bytes <- s.bytes + Bytes.length chunk;
                t.salvaged <- t.salvaged + 1
              end)
          frames;
        valid_end
      end
      else 0
    in
    t.oc <- Some (open_append p valid_end));
  t

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let put t id chunk =
  let s = shard_of t id in
  let fresh =
    locked s.lock (fun () ->
        if Hashtbl.mem s.tbl id then false
        else begin
          Hashtbl.add s.tbl id (Bytes.copy chunk);
          s.bytes <- s.bytes + Bytes.length chunk;
          true
        end)
  in
  if fresh then
    locked t.io (fun () ->
        match t.oc with
        | Some oc -> Frame.write oc (frame_payload id chunk)
        | None -> ());
  fresh

let get t id =
  let s = shard_of t id in
  locked s.lock (fun () ->
      match Hashtbl.find_opt s.tbl id with Some b -> Some (Bytes.copy b) | None -> None)

let mem t id =
  let s = shard_of t id in
  locked s.lock (fun () -> Hashtbl.mem s.tbl id)

let remove t id =
  let s = shard_of t id in
  locked s.lock (fun () ->
      match Hashtbl.find_opt s.tbl id with
      | None -> 0
      | Some b ->
        Hashtbl.remove s.tbl id;
        let n = Bytes.length b in
        s.bytes <- s.bytes - n;
        n)

let count t =
  Array.fold_left (fun acc s -> acc + locked s.lock (fun () -> Hashtbl.length s.tbl)) 0 t.shards

let stored_bytes t =
  Array.fold_left (fun acc s -> acc + locked s.lock (fun () -> s.bytes)) 0 t.shards

let hashes t =
  List.sort Int64.compare
    (Array.fold_left
       (fun acc s ->
         locked s.lock (fun () -> Hashtbl.fold (fun id _ acc -> id :: acc) s.tbl acc))
       [] t.shards)

let shard_count t = Array.length t.shards

let load_report t = (t.salvaged, t.intact)

let compact t =
  match t.path with
  | None -> ()
  | Some p ->
    locked t.io (fun () ->
        Option.iter close_out_noerr t.oc;
        Frame.atomic_write p (fun oc ->
            List.iter
              (fun id ->
                match get t id with
                | Some chunk -> Frame.write oc (frame_payload id chunk)
                | None -> ())
              (hashes t));
        let fd = Unix.openfile p [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
        t.oc <- Some (Unix.out_channel_of_descr fd))

let close t =
  if not t.closed then begin
    t.closed <- true;
    locked t.io (fun () ->
        Option.iter close_out_noerr t.oc;
        t.oc <- None)
  end

let registry_backend t =
  { Kondo_container.Registry.b_put = (fun id chunk -> put t id chunk);
    b_get = (fun id -> get t id);
    b_remove = (fun id -> remove t id);
    b_hashes = (fun () -> hashes t);
    b_count = (fun () -> count t);
    b_bytes = (fun () -> stored_bytes t) }
