(** The content-addressed chunk store behind the serve/fetch protocol.

    An N-way sharded in-memory index (per-shard mutexes, so server
    domains may touch it concurrently) over an optional on-disk backing
    file.  The backing file is an append-only stream of
    {!Kondo_faults.Frame} records — [u64 id][payload] per frame — so a
    crash at any byte leaves a valid prefix: {!create} salvages every
    complete frame, truncates the torn tail, and resumes appending.
    Every {!put} of a new chunk is flushed before returning. *)

type t

val create : ?shards:int -> ?path:string -> unit -> t
(** [shards] (default 8, clamped to [\[1, 256\]]) sets index fan-out.
    With [path], chunks persist to that backing file; an existing file is
    loaded, salvaging the longest valid frame prefix. *)

val put : t -> Chunk.id -> bytes -> bool
(** Store a chunk under its id; [true] when it was new ([false] when the
    id deduplicated — content-addressing makes overwrites meaningless). *)

val get : t -> Chunk.id -> bytes option
val mem : t -> Chunk.id -> bool

val remove : t -> Chunk.id -> int
(** Drop a chunk from the index; returns the bytes freed (0 when
    absent).  The backing file shrinks on the next {!compact}. *)

val count : t -> int
val stored_bytes : t -> int
val hashes : t -> Chunk.id list
(** All ids, sorted (deterministic across shard layouts). *)

val shard_count : t -> int

val load_report : t -> int * bool
(** [(chunks salvaged at create, intact)]: [intact] is [false] when the
    backing file had a torn or corrupt tail that was dropped. *)

val compact : t -> unit
(** Atomically rewrite the backing file from live chunks (id order) —
    reclaims removed chunks' bytes on disk.  No-op without a path. *)

val close : t -> unit

val registry_backend : t -> Kondo_container.Registry.backend
(** Adapt this store to the container registry's pluggable chunk
    backend, so {!Kondo_container.Registry.push}/[pull] read and write
    through the block store. *)
