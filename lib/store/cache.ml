open Kondo_faults

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  rejections : int;
  single_flights : int;
  coalesced : int;
  current_bytes : int;
  entries : int;
}

(* Intrusive doubly-linked LRU node; [prev] points toward the MRU end. *)
type node = {
  key : Chunk.id;
  data : bytes;
  mutable prev : node option;
  mutable next : node option;
}

type flight = {
  mutable outcome : (bytes, Fault.error) result option;
}

type shard = {
  lock : Mutex.t;
  cond : Condition.t;
  tbl : (Chunk.id, node) Hashtbl.t;
  inflight : (Chunk.id, flight) Hashtbl.t;
  budget : int;
  mutable head : node option; (* MRU *)
  mutable tail : node option; (* LRU *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
  mutable rejections : int;
  mutable single_flights : int;
  mutable coalesced : int;
}

type t = { shards : shard array }

(* Registry mirrors of the per-shard counters, bumped at the same sites
   (shard lock held) so a scrape agrees with [stats] modulo in-flight
   operations. *)
module Cache_obs = struct
  open Kondo_obs

  let c name help = lazy (Registry.counter ~help Registry.default name)
  let hits = c "kondo_store_cache_hits_total" "Cache lookups served from memory"
  let misses = c "kondo_store_cache_misses_total" "Cache lookups that missed"
  let evictions = c "kondo_store_cache_evictions_total" "LRU evictions"
  let insertions = c "kondo_store_cache_insertions_total" "Entries inserted"
  let rejections = c "kondo_store_cache_rejections_total" "Oversized entries refused"
  let single_flights =
    c "kondo_store_cache_single_flights_total" "Upstream fetches led by one caller"
  let coalesced_waits =
    c "kondo_store_cache_coalesced_waits_total" "Callers that waited on an in-flight fetch"

  let inc m = Registry.inc (Lazy.force m)
end

let create ?(shards = 8) ~budget_bytes () =
  if budget_bytes < 0 then invalid_arg "Cache.create: negative budget";
  let n = max 1 (min 256 shards) in
  let base = budget_bytes / n and rem = budget_bytes mod n in
  { shards =
      Array.init n (fun i ->
          { lock = Mutex.create ();
            cond = Condition.create ();
            tbl = Hashtbl.create 64;
            inflight = Hashtbl.create 8;
            budget = base + (if i < rem then 1 else 0);
            head = None;
            tail = None;
            bytes = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
            insertions = 0;
            rejections = 0;
            single_flights = 0;
            coalesced = 0 }) }

let budget t = Array.fold_left (fun acc s -> acc + s.budget) 0 t.shards
let shard_count t = Array.length t.shards

let shard_of t id =
  let h = Int64.to_int (Int64.logxor id (Int64.shift_right_logical id 17)) land max_int in
  t.shards.(h mod Array.length t.shards)

(* ---- DLL plumbing (shard lock held) ---- *)

let unlink s n =
  (match n.prev with Some p -> p.next <- n.next | None -> s.head <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> s.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front s n =
  n.prev <- None;
  n.next <- s.head;
  (match s.head with Some h -> h.prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n

let drop_entry s n =
  unlink s n;
  Hashtbl.remove s.tbl n.key;
  s.bytes <- s.bytes - Bytes.length n.data

let evict_to_budget s =
  while s.bytes > s.budget do
    match s.tail with
    | Some n ->
      drop_entry s n;
      s.evictions <- s.evictions + 1;
      Cache_obs.inc Cache_obs.evictions
    | None -> s.bytes <- 0 (* unreachable: bytes > 0 implies a tail *)
  done

let insert s id data =
  (match Hashtbl.find_opt s.tbl id with Some old -> drop_entry s old | None -> ());
  if Bytes.length data > s.budget then begin
    s.rejections <- s.rejections + 1;
    Cache_obs.inc Cache_obs.rejections
  end
  else begin
    let n = { key = id; data; prev = None; next = None } in
    push_front s n;
    Hashtbl.add s.tbl id n;
    s.bytes <- s.bytes + Bytes.length data;
    s.insertions <- s.insertions + 1;
    Cache_obs.inc Cache_obs.insertions;
    evict_to_budget s
  end

let lookup s id =
  match Hashtbl.find_opt s.tbl id with
  | Some n ->
    unlink s n;
    push_front s n;
    s.hits <- s.hits + 1;
    Cache_obs.inc Cache_obs.hits;
    Some (Bytes.copy n.data)
  | None ->
    s.misses <- s.misses + 1;
    Cache_obs.inc Cache_obs.misses;
    None

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let get t id =
  let s = shard_of t id in
  locked s.lock (fun () -> lookup s id)

let put t id data =
  let s = shard_of t id in
  locked s.lock (fun () -> insert s id (Bytes.copy data))

let get_or_fetch t id ~fetch =
  let s = shard_of t id in
  Mutex.lock s.lock;
  match lookup s id with
  | Some data ->
    Mutex.unlock s.lock;
    Ok data
  | None -> (
    match Hashtbl.find_opt s.inflight id with
    | Some fl ->
      (* coalesce onto the in-flight fetch *)
      s.coalesced <- s.coalesced + 1;
      Cache_obs.inc Cache_obs.coalesced_waits;
      let rec wait () =
        match fl.outcome with
        | Some r -> r
        | None ->
          Condition.wait s.cond s.lock;
          wait ()
      in
      let r = wait () in
      Mutex.unlock s.lock;
      (match r with Ok b -> Ok (Bytes.copy b) | Error _ as e -> e)
    | None ->
      (* leader: run the upstream fetch outside the shard lock *)
      let fl = { outcome = None } in
      Hashtbl.add s.inflight id fl;
      s.single_flights <- s.single_flights + 1;
      Cache_obs.inc Cache_obs.single_flights;
      Mutex.unlock s.lock;
      let r =
        match fetch () with
        | r -> r
        | exception exn -> Error (Fault.of_exn exn)
      in
      Mutex.lock s.lock;
      (match r with Ok b -> insert s id (Bytes.copy b) | Error _ -> ());
      fl.outcome <- Some r;
      Hashtbl.remove s.inflight id;
      Condition.broadcast s.cond;
      Mutex.unlock s.lock;
      r)

let stats t =
  Array.fold_left
    (fun (acc : stats) s ->
      locked s.lock (fun () ->
          { hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            evictions = acc.evictions + s.evictions;
            insertions = acc.insertions + s.insertions;
            rejections = acc.rejections + s.rejections;
            single_flights = acc.single_flights + s.single_flights;
            coalesced = acc.coalesced + s.coalesced;
            current_bytes = acc.current_bytes + s.bytes;
            entries = acc.entries + Hashtbl.length s.tbl }))
    { hits = 0; misses = 0; evictions = 0; insertions = 0; rejections = 0;
      single_flights = 0; coalesced = 0; current_bytes = 0; entries = 0 }
    t.shards

let clear t =
  Array.iter
    (fun s ->
      locked s.lock (fun () ->
          Hashtbl.reset s.tbl;
          s.head <- None;
          s.tail <- None;
          s.bytes <- 0))
    t.shards
