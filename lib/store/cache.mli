(** Byte-budgeted sharded LRU cache with single-flight coalescing.

    The byte budget is split across N shards (per-shard budget =
    budget/N, remainder spread over the first shards), each guarded by
    its own mutex, so the cache {e never} holds more than [budget_bytes]
    of payload in total — an entry larger than its shard's budget is
    served but not retained.

    {!get_or_fetch} is single-flight: when concurrent callers miss on
    the same key, exactly one runs the upstream fetch while the others
    block on a condition variable and receive the same outcome — one
    upstream fetch, identical bytes, the thundering herd collapsed.
    Fetch errors are handed to every coalesced waiter but never
    cached. *)

type stats = {
  hits : int;
  misses : int;          (** lookups that found nothing (coalesced waiters included) *)
  evictions : int;       (** entries dropped to respect the byte budget *)
  insertions : int;      (** entries accepted into the LRU *)
  rejections : int;      (** payloads larger than their shard's budget, not retained *)
  single_flights : int;  (** upstream fetches actually run by {!get_or_fetch} *)
  coalesced : int;       (** callers that waited on another caller's fetch *)
  current_bytes : int;
  entries : int;
}

type t

val create : ?shards:int -> budget_bytes:int -> unit -> t
(** [shards] defaults to 8, clamped to [\[1, 256\]].
    @raise Invalid_argument when [budget_bytes < 0]. *)

val budget : t -> int
val shard_count : t -> int

val get : t -> Chunk.id -> bytes option
val put : t -> Chunk.id -> bytes -> unit

val get_or_fetch :
  t -> Chunk.id -> fetch:(unit -> (bytes, Kondo_faults.Fault.error) result) ->
  (bytes, Kondo_faults.Fault.error) result
(** Cache hit, or run (or wait on) the single upstream fetch for this
    key.  A successful fetch is inserted before waiters wake. *)

val stats : t -> stats
val clear : t -> unit
