module Merkle = Kondo_container.Merkle

type id = int64

let digest = Merkle.hash_bytes

let default_size = 4096

type manifest = {
  name : string;
  chunk_size : int;
  total_len : int;
  ids : id array;
  root : id;
}

let split ?(chunk_size = default_size) buf =
  if chunk_size < 1 then invalid_arg "Chunk.split: chunk_size < 1";
  let n = Bytes.length buf in
  let count = (n + chunk_size - 1) / chunk_size in
  List.init count (fun i ->
      let off = i * chunk_size in
      (i, Bytes.sub buf off (min chunk_size (n - off))))

(* The FNV offset basis doubles as the empty root, matching
   [Merkle.root_hash] on an empty tree. *)
let empty_root = Merkle.hash_bytes Bytes.empty

let root_of_ids ids = Array.fold_left Merkle.hash_pair empty_root ids

let manifest_of_bytes ?(chunk_size = default_size) ~name buf =
  let ids =
    Array.of_list (List.map (fun (_, payload) -> digest payload) (split ~chunk_size buf))
  in
  { name; chunk_size; total_len = Bytes.length buf; ids; root = root_of_ids ids }

let chunk_count m = Array.length m.ids

let chunk_of_offset m off =
  if off < 0 || off >= m.total_len then
    invalid_arg
      (Printf.sprintf "Chunk.chunk_of_offset: offset %d outside blob of %d bytes" off
         m.total_len);
  off / m.chunk_size

let chunk_span m i =
  if i < 0 || i >= Array.length m.ids then
    invalid_arg (Printf.sprintf "Chunk.chunk_span: chunk %d of %d" i (Array.length m.ids));
  let off = i * m.chunk_size in
  (off, min m.chunk_size (m.total_len - off))

let verify m i payload =
  i >= 0
  && i < Array.length m.ids
  && Bytes.length payload = snd (chunk_span m i)
  && Int64.equal (digest payload) m.ids.(i)

let encode m =
  let b = Buffer.create (32 + String.length m.name + (8 * Array.length m.ids)) in
  let u32 v =
    let s = Bytes.create 4 in
    Bytes.set_int32_le s 0 (Int32.of_int v);
    Buffer.add_bytes b s
  in
  let u64 v =
    let s = Bytes.create 8 in
    Bytes.set_int64_le s 0 v;
    Buffer.add_bytes b s
  in
  u32 (String.length m.name);
  Buffer.add_string b m.name;
  u32 m.chunk_size;
  u32 m.total_len;
  u32 (Array.length m.ids);
  Array.iter u64 m.ids;
  u64 m.root;
  Buffer.contents b

let decode s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let pos = ref 0 in
  let fail msg = raise (Invalid_argument msg) in
  let u32 () =
    if !pos + 4 > n then fail "truncated manifest";
    let v = Int32.to_int (Bytes.get_int32_le buf !pos) in
    pos := !pos + 4;
    v
  in
  let u64 () =
    if !pos + 8 > n then fail "truncated manifest";
    let v = Bytes.get_int64_le buf !pos in
    pos := !pos + 8;
    v
  in
  match
    let name_len = u32 () in
    if name_len < 0 || !pos + name_len > n then fail "bad manifest name";
    let name = Bytes.sub_string buf !pos name_len in
    pos := !pos + name_len;
    let chunk_size = u32 () in
    if chunk_size < 1 then fail "bad chunk size";
    let total_len = u32 () in
    if total_len < 0 then fail "bad total length";
    let count = u32 () in
    if count < 0 || count <> (total_len + chunk_size - 1) / chunk_size then
      fail "chunk count does not tile the blob";
    if !pos + (8 * count) + 8 > n then fail "truncated manifest ids";
    let ids = Array.init count (fun _ -> u64 ()) in
    let root = u64 () in
    if !pos <> n then fail "trailing manifest bytes";
    if not (Int64.equal root (root_of_ids ids)) then fail "manifest root mismatch";
    { name; chunk_size; total_len; ids; root }
  with
  | m -> Ok m
  | exception Invalid_argument msg -> Error msg
