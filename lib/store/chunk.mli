(** Fixed-size chunking of debloated payloads, content-addressed with the
    container layer's FNV digests.

    A blob (typically the dense logical data section of one dataset of
    the un-debloated source file) is tiled into fixed-size chunks; each
    chunk's id {e is} its {!Kondo_container.Merkle.hash_bytes} digest, so
    the store is content-addressed and a fetched payload can be verified
    against the id it was requested under.  The manifest — chunk size,
    blob length, the id of every chunk, and a root digest folded with
    {!Kondo_container.Merkle.hash_pair} — is the small piece of metadata
    a client needs to map byte offsets to chunk ids and to verify every
    payload it receives. *)

type id = int64

val digest : bytes -> id
(** Content digest of a chunk payload ({!Kondo_container.Merkle.hash_bytes}). *)

val default_size : int
(** Default chunk size in bytes (4096). *)

type manifest = {
  name : string;       (** blob key, e.g. ["file.kh5#dataset"] *)
  chunk_size : int;
  total_len : int;     (** blob length in bytes *)
  ids : id array;      (** per-chunk content digests, in offset order *)
  root : id;           (** fold of [ids] with [Merkle.hash_pair] *)
}

val split : ?chunk_size:int -> bytes -> (int * bytes) list
(** [(index, payload)] tiles of the blob; every tile is [chunk_size]
    bytes except possibly the last.  @raise Invalid_argument when
    [chunk_size < 1]. *)

val manifest_of_bytes : ?chunk_size:int -> name:string -> bytes -> manifest

val root_of_ids : id array -> id
(** The manifest root: [ids] folded left with [Merkle.hash_pair]
    (the FNV offset basis for an empty blob). *)

val chunk_count : manifest -> int

val chunk_of_offset : manifest -> int -> int
(** Index of the chunk containing byte [offset].
    @raise Invalid_argument when the offset is outside the blob. *)

val chunk_span : manifest -> int -> int * int
(** [(offset, length)] of chunk [i] within the blob.
    @raise Invalid_argument for an out-of-range index. *)

val verify : manifest -> int -> bytes -> bool
(** Does this payload have chunk [i]'s exact length and digest? *)

val encode : manifest -> string

val decode : string -> (manifest, string) result
(** Parse {!encode} output; rejects truncated or inconsistent input and
    a manifest whose root does not match its ids. *)
