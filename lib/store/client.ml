open Kondo_faults

type stats = {
  mutable requests : int;
  mutable range_gets : int;
  mutable fetched_chunks : int;
  mutable fetched_bytes : int;
  mutable corrupt_fetches : int;
  mutable retries : int;
  mutable breaker_rejections : int;
  mutable cache_hits : int;
}

(* Registry mirrors of the client stats, plus exchange latency and
   range-GET batch-size distributions. *)
module Cl_obs = struct
  open Kondo_obs

  let c name help = lazy (Registry.counter ~help Registry.default name)
  let requests = c "kondo_store_client_requests_total" "Protocol rounds attempted"
  let range_gets = c "kondo_store_client_range_gets_total" "BATCH requests issued"
  let fetched_chunks = c "kondo_store_client_fetched_chunks_total" "Verified chunks received"
  let fetched_bytes = c "kondo_store_client_fetched_bytes_total" "Verified chunk bytes received"
  let corrupt_fetches =
    c "kondo_store_client_corrupt_fetches_total" "Digest mismatches detected (then retried)"
  let retries = c "kondo_store_client_retries_total" "Exchange retries"
  let breaker_rejections =
    c "kondo_store_client_breaker_rejections_total" "Exchanges refused by an open breaker"
  let cache_hits = c "kondo_store_client_cache_hits_total" "Chunks served from the local cache"

  let request_seconds =
    lazy
      (Registry.histogram ~help:"Breaker-gated exchange latency (including retries)"
         Registry.default "kondo_store_client_request_seconds")

  let batch_size =
    lazy
      (Registry.histogram ~help:"Chunk ids per BATCH range GET"
         ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
         Registry.default "kondo_store_client_batch_size")

  let inc ?by m = Registry.inc ?by (Lazy.force m)
end

type t = {
  conn : Transport.conn;
  retry : Retry.policy;
  breaker : Breaker.t;
  faults : Fault_plan.t;
  cache : Cache.t option;
  rng : Kondo_prng.Rng.t;
  site : string;
  mutable now_ms : float;
  stats : stats;
}

let connect ?(retry = Retry.default) ?(breaker = Breaker.default)
    ?(faults = Fault_plan.none) ?cache conn =
  Retry.validate retry;
  { conn;
    retry;
    breaker = Breaker.create ~config:breaker ();
    faults;
    cache;
    rng = Kondo_prng.Rng.create (Fault_plan.seed faults);
    site = "store:" ^ conn.Transport.peer;
    now_ms = 0.0;
    stats =
      { requests = 0;
        range_gets = 0;
        fetched_chunks = 0;
        fetched_bytes = 0;
        corrupt_fetches = 0;
        retries = 0;
        breaker_rejections = 0;
        cache_hits = 0 } }

let close t = t.conn.Transport.close ()
let stats t = t.stats
let breaker_state t = Breaker.state t.breaker

(* One protocol round under the fault plan: the injected short-read and
   corrupt mutations mangle the raw response body, which decoding (or
   digest verification downstream) then rejects as a retryable fault. *)
let round_once t req =
  t.stats.requests <- t.stats.requests + 1;
  Cl_obs.inc Cl_obs.requests;
  let attempt =
    Fault_plan.wrap t.faults ~site:t.site
      ~shorten:(fun body -> String.sub body 0 (max 0 (String.length body - 1)))
      ~corrupt:(fun body ->
        if body = "" then body
        else begin
          let b = Bytes.of_string body in
          Bytes.set_uint8 b 0 (Bytes.get_uint8 b 0 lxor 0xFF);
          Bytes.unsafe_to_string b
        end)
      (fun () ->
        t.conn.Transport.send (Proto.encode_request req);
        match t.conn.Transport.recv () with
        | Ok body -> Ok body
        | Error msg -> Error (Fault.Transient msg))
  in
  match attempt with
  | Error _ as e -> e
  | Ok body -> (
    match Proto.decode_response body with
    | Ok resp -> Ok resp
    | Error msg -> Error (Fault.Corrupt ("undecodable response: " ^ msg)))

(* Breaker-gated, retried exchange.  [check] classifies a decoded
   response: Ok payload, or an error (retryable or not). *)
let exchange t req ~check =
  if not (Breaker.allow t.breaker ~now_ms:t.now_ms) then begin
    t.stats.breaker_rejections <- t.stats.breaker_rejections + 1;
    Cl_obs.inc Cl_obs.breaker_rejections;
    Error (Fault.Permanent "store circuit breaker open")
  end
  else begin
    let t0 = Kondo_obs.Clock.now Kondo_obs.Clock.real in
    let outcome =
      Retry.run t.retry ~rng:t.rng (fun ~attempt:_ ->
          match round_once t req with
          | Error _ as e -> e
          | Ok resp -> check resp)
    in
    Kondo_obs.Registry.observe
      (Lazy.force Cl_obs.request_seconds)
      (Float.max 0.0 (Kondo_obs.Clock.now Kondo_obs.Clock.real -. t0));
    t.now_ms <- t.now_ms +. outcome.Retry.elapsed_ms +. 1.0;
    t.stats.retries <- t.stats.retries + Retry.retries outcome;
    Cl_obs.inc ~by:(Retry.retries outcome) Cl_obs.retries;
    (match outcome.Retry.result with
    | Ok _ -> Breaker.record_success t.breaker
    | Error _ -> Breaker.record_failure t.breaker ~now_ms:t.now_ms);
    outcome.Retry.result
  end

let unexpected resp =
  Error
    (Fault.Corrupt
       ("unexpected response: "
       ^
       match resp with
       | Proto.Blob _ -> "blob"
       | Proto.Not_found _ -> "not-found"
       | Proto.Stored _ -> "stored"
       | Proto.Stats _ -> "stats"
       | Proto.Blobs _ -> "blobs"
       | Proto.Manifest_resp _ -> "manifest"
       | Proto.Metrics _ -> "metrics"
       | Proto.Err msg -> "error: " ^ msg))

let manifest t ~name =
  exchange t (Proto.Manifest_req name) ~check:(function
    | Proto.Manifest_resp m -> Ok m
    | Proto.Err msg -> Error (Fault.Permanent msg)
    | resp -> unexpected resp)

let stat t =
  exchange t Proto.Stat ~check:(function
    | Proto.Stats i -> Ok i
    | resp -> unexpected resp)

let scrape t =
  exchange t Proto.Scrape ~check:(function
    | Proto.Metrics text -> Ok text
    | Proto.Err msg -> Error (Fault.Permanent msg)
    | resp -> unexpected resp)

let put t payload =
  let id = Chunk.digest payload in
  exchange t
    (Proto.Put (id, Bytes.to_string payload))
    ~check:(function
      | Proto.Stored fresh -> Ok (id, fresh)
      | Proto.Err msg -> Error (Fault.Permanent msg)
      | resp -> unexpected resp)

(* Verify one fetched chunk against the manifest; a mismatch is the
   client-side CRC story of the store path: count it corrupt and hand
   the retry machinery a retryable error — never a silent success. *)
let verified t m i payload =
  let b = Bytes.of_string payload in
  if Chunk.verify m i b then begin
    t.stats.fetched_chunks <- t.stats.fetched_chunks + 1;
    t.stats.fetched_bytes <- t.stats.fetched_bytes + Bytes.length b;
    Cl_obs.inc Cl_obs.fetched_chunks;
    Cl_obs.inc ~by:(Bytes.length b) Cl_obs.fetched_bytes;
    Ok b
  end
  else begin
    t.stats.corrupt_fetches <- t.stats.corrupt_fetches + 1;
    Cl_obs.inc Cl_obs.corrupt_fetches;
    Error (Fault.Corrupt (Printf.sprintf "chunk %d of %s failed digest verification" i m.Chunk.name))
  end

let fetch_chunks t m ~first ~count =
  if count < 0 || first < 0 || first + count > Chunk.chunk_count m then
    invalid_arg "Client.fetch_chunks: chunk range outside manifest";
  if count = 0 then Ok [||]
  else begin
    let ids = List.init count (fun i -> m.Chunk.ids.(first + i)) in
    t.stats.range_gets <- t.stats.range_gets + 1;
    Cl_obs.inc Cl_obs.range_gets;
    Kondo_obs.Registry.observe (Lazy.force Cl_obs.batch_size) (float_of_int count);
    exchange t (Proto.Batch ids) ~check:(function
      | Proto.Blobs entries ->
        if List.length entries <> count then
          Error (Fault.Corrupt "range GET returned a different chunk count")
        else begin
          let rec collect i acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | (id, payload) :: rest ->
              if not (Int64.equal id m.Chunk.ids.(first + i)) then
                Error (Fault.Corrupt "range GET returned chunks out of order")
              else (
                match payload with
                | None ->
                  Error
                    (Fault.Permanent
                       (Printf.sprintf "chunk %d of %s missing at the store" (first + i)
                          m.Chunk.name))
                | Some p -> (
                  match verified t m (first + i) p with
                  | Ok b -> collect (i + 1) (b :: acc) rest
                  | Error err -> Error err))
          in
          collect 0 [] entries
        end
      | Proto.Err msg -> Error (Fault.Permanent msg)
      | resp -> unexpected resp)
  end

let read_bytes t m ~offset ~length =
  if offset < 0 || length < 0 || offset + length > m.Chunk.total_len then
    invalid_arg
      (Printf.sprintf "Client.read_bytes: [%d, %d) outside %s (%d bytes)" offset
         (offset + length) m.Chunk.name m.Chunk.total_len);
  if length = 0 then Ok Bytes.empty
  else begin
    let c0 = Chunk.chunk_of_offset m offset in
    let c1 = Chunk.chunk_of_offset m (offset + length - 1) in
    let n = c1 - c0 + 1 in
    let chunks = Array.make n None in
    (* consult the local chunk cache first *)
    (match t.cache with
    | None -> ()
    | Some cache ->
      for i = 0 to n - 1 do
        match Cache.get cache m.Chunk.ids.(c0 + i) with
        | Some b ->
          t.stats.cache_hits <- t.stats.cache_hits + 1;
          Cl_obs.inc Cl_obs.cache_hits;
          chunks.(i) <- Some b
        | None -> ()
      done);
    (* one range GET per contiguous run of misses: adjacent-offset
       misses travel in a single BATCH message *)
    let rec fill i =
      if i >= n then Ok ()
      else if chunks.(i) <> None then fill (i + 1)
      else begin
        let j = ref i in
        while !j < n && chunks.(!j) = None do
          incr j
        done;
        match fetch_chunks t m ~first:(c0 + i) ~count:(!j - i) with
        | Error err -> Error err
        | Ok fetched ->
          Array.iteri
            (fun k b ->
              chunks.(i + k) <- Some b;
              match t.cache with
              | Some cache -> Cache.put cache m.Chunk.ids.(c0 + i + k) b
              | None -> ())
            fetched;
          fill !j
      end
    in
    match fill 0 with
    | Error err -> Error err
    | Ok () ->
      let out = Bytes.create length in
      for i = 0 to n - 1 do
        let chunk =
          match chunks.(i) with Some b -> b | None -> assert false
        in
        let coff, clen = Chunk.chunk_span m (c0 + i) in
        let lo = max offset coff and hi = min (offset + length) (coff + clen) in
        if hi > lo then Bytes.blit chunk (lo - coff) out (lo - offset) (hi - lo)
      done;
      Ok out
  end
