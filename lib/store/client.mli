(** The fetching side of the serve/fetch protocol.

    Every exchange runs under the fault machinery: a circuit breaker
    gates the connection, {!Kondo_faults.Retry} wraps each request with
    capped backoff over virtual time, an optional
    {!Kondo_faults.Fault_plan} injects deterministic failures into the
    exchange (site ["store:<peer>"]), and every fetched chunk's digest
    is verified against the manifest id it was requested under — a
    mismatch counts as a corrupt fetch and is {e retried}, never
    surfaced as a success.  Adjacent missing chunks are batched into one
    BATCH range GET per contiguous run. *)

type stats = {
  mutable requests : int;        (** protocol rounds attempted *)
  mutable range_gets : int;      (** BATCH requests issued *)
  mutable fetched_chunks : int;  (** verified chunks received *)
  mutable fetched_bytes : int;
  mutable corrupt_fetches : int; (** digest/shape mismatches detected (then retried) *)
  mutable retries : int;
  mutable breaker_rejections : int;
  mutable cache_hits : int;      (** chunks served from the local chunk cache *)
}

type t

val connect :
  ?retry:Kondo_faults.Retry.policy ->
  ?breaker:Kondo_faults.Breaker.config ->
  ?faults:Kondo_faults.Fault_plan.t ->
  ?cache:Cache.t ->
  Transport.conn ->
  t
(** [cache] (optional) holds verified chunks client-side, so repeated
    misses into the same chunk cost one round trip. *)

val close : t -> unit
val stats : t -> stats
val breaker_state : t -> Kondo_faults.Breaker.state

val manifest : t -> name:string -> (Chunk.manifest, Kondo_faults.Fault.error) result

val stat : t -> (Proto.stat_info, Kondo_faults.Fault.error) result

val scrape : t -> (string, Kondo_faults.Fault.error) result
(** STATS op: the server's metrics registry in Prometheus text
    exposition format. *)

val put : t -> bytes -> (Chunk.id * bool, Kondo_faults.Fault.error) result
(** Content-address a payload and PUT it; returns its id and whether it
    was new to the server. *)

val fetch_chunks :
  t -> Chunk.manifest -> first:int -> count:int ->
  (bytes array, Kondo_faults.Fault.error) result
(** Chunks [first .. first+count-1] in one BATCH round trip, each
    verified against the manifest.  Any missing chunk is a permanent
    error; any corrupt chunk is a retryable one. *)

val read_bytes :
  t -> Chunk.manifest -> offset:int -> length:int ->
  (bytes, Kondo_faults.Fault.error) result
(** The blob's bytes [\[offset, offset+length)], assembled from cached
    chunks plus one range GET per contiguous run of missing chunks.
    @raise Invalid_argument when the range exceeds the blob. *)
