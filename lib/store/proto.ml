open Kondo_faults

type stat_info = {
  chunks : int;
  store_bytes : int;
  manifests : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_coalesced : int;
  cache_bytes : int;
}

type request =
  | Get of Chunk.id
  | Put of Chunk.id * string
  | Stat
  | Batch of Chunk.id list
  | Manifest_req of string
  | Scrape

type response =
  | Blob of string
  | Not_found of Chunk.id
  | Stored of bool
  | Stats of stat_info
  | Blobs of (Chunk.id * string option) list
  | Manifest_resp of Chunk.manifest
  | Metrics of string
  | Err of string

let max_message = 64 * 1024 * 1024

(* ---- body encoding ---- *)

let add_u32 b v =
  let s = Bytes.create 4 in
  Bytes.set_int32_le s 0 (Int32.of_int v);
  Buffer.add_bytes b s

let add_u64 b v =
  let s = Bytes.create 8 in
  Bytes.set_int64_le s 0 v;
  Buffer.add_bytes b s

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

exception Bad of string

type cursor = { buf : bytes; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.buf then raise (Bad "truncated message")

let r_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Bad "negative length");
  v

let r_u64 c =
  need c 8;
  let v = Bytes.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let r_str c =
  let n = r_u32 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let finish c v = if c.pos <> Bytes.length c.buf then raise (Bad "trailing bytes") else v

let decoding s f =
  let c = { buf = Bytes.unsafe_of_string s; pos = 0 } in
  match f c with v -> Ok (finish c v) | exception Bad msg -> Error msg

let encode_request req =
  let b = Buffer.create 32 in
  (match req with
  | Get id ->
    Buffer.add_char b 'G';
    add_u64 b id
  | Put (id, payload) ->
    Buffer.add_char b 'P';
    add_u64 b id;
    add_str b payload
  | Stat -> Buffer.add_char b 'S'
  | Batch ids ->
    Buffer.add_char b 'B';
    add_u32 b (List.length ids);
    List.iter (add_u64 b) ids
  | Manifest_req name ->
    Buffer.add_char b 'M';
    add_str b name
  | Scrape -> Buffer.add_char b 'T');
  Buffer.contents b

let decode_request s =
  decoding s (fun c ->
      match Char.chr (r_u8 c) with
      | 'G' -> Get (r_u64 c)
      | 'P' ->
        let id = r_u64 c in
        Put (id, r_str c)
      | 'S' -> Stat
      | 'B' ->
        let n = r_u32 c in
        if n * 8 > Bytes.length c.buf then raise (Bad "batch count too large");
        Batch (List.init n (fun _ -> r_u64 c))
      | 'M' -> Manifest_req (r_str c)
      | 'T' -> Scrape
      | _ -> raise (Bad "unknown request tag"))

let encode_response resp =
  let b = Buffer.create 64 in
  (match resp with
  | Blob payload ->
    Buffer.add_char b 'b';
    add_str b payload
  | Not_found id ->
    Buffer.add_char b 'n';
    add_u64 b id
  | Stored fresh ->
    Buffer.add_char b 'p';
    Buffer.add_char b (if fresh then '\x01' else '\x00')
  | Stats i ->
    Buffer.add_char b 's';
    List.iter (add_u32 b)
      [ i.chunks; i.store_bytes; i.manifests; i.cache_hits; i.cache_misses;
        i.cache_evictions; i.cache_coalesced; i.cache_bytes ]
  | Blobs entries ->
    Buffer.add_char b 'B';
    add_u32 b (List.length entries);
    List.iter
      (fun (id, payload) ->
        add_u64 b id;
        match payload with
        | Some p ->
          Buffer.add_char b '\x01';
          add_str b p
        | None -> Buffer.add_char b '\x00')
      entries
  | Manifest_resp m ->
    Buffer.add_char b 'm';
    add_str b (Chunk.encode m)
  | Metrics text ->
    Buffer.add_char b 't';
    add_str b text
  | Err msg ->
    Buffer.add_char b 'e';
    add_str b msg);
  Buffer.contents b

let decode_response s =
  decoding s (fun c ->
      match Char.chr (r_u8 c) with
      | 'b' -> Blob (r_str c)
      | 'n' -> Not_found (r_u64 c)
      | 'p' -> (
        match r_u8 c with
        | 0 -> Stored false
        | 1 -> Stored true
        | _ -> raise (Bad "bad stored flag"))
      | 's' ->
        let chunks = r_u32 c in
        let store_bytes = r_u32 c in
        let manifests = r_u32 c in
        let cache_hits = r_u32 c in
        let cache_misses = r_u32 c in
        let cache_evictions = r_u32 c in
        let cache_coalesced = r_u32 c in
        let cache_bytes = r_u32 c in
        Stats
          { chunks; store_bytes; manifests; cache_hits; cache_misses; cache_evictions;
            cache_coalesced; cache_bytes }
      | 'B' ->
        let n = r_u32 c in
        if n * 9 > Bytes.length c.buf then raise (Bad "blobs count too large");
        Blobs
          (List.init n (fun _ ->
               let id = r_u64 c in
               match r_u8 c with
               | 0 -> (id, None)
               | 1 -> (id, Some (r_str c))
               | _ -> raise (Bad "bad presence flag")))
      | 'm' -> (
        match Chunk.decode (r_str c) with
        | Ok m -> Manifest_resp m
        | Error msg -> raise (Bad ("bad manifest: " ^ msg)))
      | 't' -> Metrics (r_str c)
      | 'e' -> Err (r_str c)
      | _ -> raise (Bad "unknown response tag"))

(* ---- channel framing ---- *)

let write_message oc body =
  if String.length body > max_message then invalid_arg "Proto.write_message: oversized";
  Frame.write oc body

let read_message ic =
  match
    let hdr = Bytes.create Frame.header_len in
    really_input ic hdr 0 Frame.header_len;
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    let crc = Int32.to_int (Bytes.get_int32_le hdr 4) land 0xFFFFFFFF in
    if len < 0 || len > max_message then Error "oversized or negative frame"
    else begin
      let body = Bytes.create len in
      really_input ic body 0 len;
      if Frame.crc32 body <> crc then Error "frame CRC mismatch"
      else Ok (Bytes.unsafe_to_string body)
    end
  with
  | r -> r
  | exception End_of_file -> Error "connection closed"
  | exception Sys_error msg -> Error msg
