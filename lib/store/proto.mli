(** The serve/fetch wire protocol: length-prefixed, CRC-32-framed binary
    messages.

    On a byte-stream transport every message travels as one
    {!Kondo_faults.Frame}-style frame — [u32 length][u32 CRC-32][body] —
    so a torn or bit-flipped message is detected at the framing layer
    before decoding.  The body is a one-byte tag plus a binary payload;
    {!decode_request}/{!decode_response} reject anything malformed with
    an error string rather than an exception, so a server survives a
    garbage client and a client maps a mangled response to a retryable
    fault. *)

type stat_info = {
  chunks : int;           (** chunks in the block store *)
  store_bytes : int;
  manifests : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_coalesced : int;
  cache_bytes : int;
}

type request =
  | Get of Chunk.id
  | Put of Chunk.id * string
  | Stat
  | Batch of Chunk.id list             (** range GET: adjacent chunk ids in one round trip *)
  | Manifest_req of string
      (** by exact key, or ["#dataset"] to match a unique suffix *)
  | Scrape
      (** STATS op: dump the server's metrics registry in Prometheus
          text exposition format (answered with {!Metrics}) *)

type response =
  | Blob of string
  | Not_found of Chunk.id
  | Stored of bool                     (** PUT ack: was the chunk new? *)
  | Stats of stat_info
  | Blobs of (Chunk.id * string option) list
  | Manifest_resp of Chunk.manifest
  | Metrics of string                  (** Prometheus text exposition *)
  | Err of string

val max_message : int
(** Upper bound on an encoded message body (refuse anything larger). *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val write_message : out_channel -> string -> unit
(** Frame one encoded body onto a channel and flush. *)

val read_message : in_channel -> (string, string) result
(** Read one frame; [Error] on EOF, oversized length, or CRC mismatch. *)
