module Kfile = Kondo_h5.File

module Srv_obs = struct
  open Kondo_obs

  let requests =
    lazy
      (Registry.counter ~help:"Requests handled by the store server" Registry.default
         "kondo_store_server_requests_total")

  let request_seconds =
    lazy
      (Registry.histogram ~help:"Store server request handling latency" Registry.default
         "kondo_store_server_request_seconds")

  let batch_size =
    lazy
      (Registry.histogram ~help:"Chunk ids per BATCH request"
         ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
         Registry.default "kondo_store_server_batch_size")
end

type t = {
  store : Block_store.t;
  cache : Cache.t;
  jobs : int;
  manifests : (string, Chunk.manifest) Hashtbl.t;
  lock : Mutex.t; (* guards [manifests] and [served] *)
  mutable served : int;
}

let create ?(cache_bytes = 1024 * 1024) ?(cache_shards = 8) ?(jobs = 1) ~store () =
  if jobs < 1 then invalid_arg "Server.create: jobs < 1";
  { store;
    cache = Cache.create ~shards:cache_shards ~budget_bytes:cache_bytes ();
    jobs;
    manifests = Hashtbl.create 8;
    lock = Mutex.create ();
    served = 0 }

let store t = t.store
let cache t = t.cache

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_blob t ?chunk_size ~name content =
  let m = Chunk.manifest_of_bytes ?chunk_size ~name content in
  List.iter
    (fun (_, payload) -> ignore (Block_store.put t.store (Chunk.digest payload) payload))
    (Chunk.split ?chunk_size content);
  locked t (fun () -> Hashtbl.replace t.manifests name m);
  m

let add_kh5 t ?chunk_size ~name path =
  let f = Kfile.open_file path in
  Fun.protect
    ~finally:(fun () -> Kfile.close f)
    (fun () ->
      List.map
        (fun ds ->
          let dsname = ds.Kondo_h5.Dataset.name in
          if Kondo_h5.Dataset.is_sparse ds then
            invalid_arg
              (Printf.sprintf "Server.add_kh5: %s#%s is sparse — serve the original file"
                 name dsname);
          let section =
            Kfile.read_raw f dsname
              (Kondo_interval.Interval.make 0 (Kondo_h5.Dataset.logical_bytes ds))
          in
          add_blob t ?chunk_size ~name:(name ^ "#" ^ dsname) section)
        (Kfile.datasets f))

let manifests t =
  locked t (fun () ->
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.manifests []))

let find_manifest t key =
  let all = manifests t in
  match List.assoc_opt key all with
  | Some m -> Some m
  | None ->
    let matches =
      if key = "" then all
      else if String.length key > 0 && key.[0] = '#' then
        List.filter
          (fun (k, _) ->
            String.length k >= String.length key
            && String.sub k (String.length k - String.length key) (String.length key) = key)
          all
      else []
    in
    (match matches with [ (_, m) ] -> Some m | _ -> None)

let requests_served t = locked t (fun () -> t.served)

let lookup_chunk t id =
  Cache.get_or_fetch t.cache id ~fetch:(fun () ->
      match Block_store.get t.store id with
      | Some b -> Ok b
      | None -> Error (Kondo_faults.Fault.Permanent "no such chunk"))

let apply t req =
  match req with
  | Proto.Get id -> (
    match lookup_chunk t id with
    | Ok b -> Proto.Blob (Bytes.unsafe_to_string b)
    | Error _ -> Proto.Not_found id)
  | Proto.Put (id, payload) ->
    let b = Bytes.of_string payload in
    if not (Int64.equal (Chunk.digest b) id) then
      Proto.Err "put: payload digest does not match id"
    else Proto.Stored (Block_store.put t.store id b)
  | Proto.Stat ->
    let cs = Cache.stats t.cache in
    Proto.Stats
      { Proto.chunks = Block_store.count t.store;
        store_bytes = Block_store.stored_bytes t.store;
        manifests = List.length (manifests t);
        cache_hits = cs.Cache.hits;
        cache_misses = cs.Cache.misses;
        cache_evictions = cs.Cache.evictions;
        cache_coalesced = cs.Cache.coalesced;
        cache_bytes = cs.Cache.current_bytes }
  | Proto.Batch ids ->
    (* a range GET: fan the lookups out over a domain pool — concurrent
       misses on duplicate ids coalesce in the cache's single-flight *)
    Kondo_obs.Registry.observe
      (Lazy.force Srv_obs.batch_size)
      (float_of_int (List.length ids));
    let lookup id =
      (id, match lookup_chunk t id with Ok b -> Some (Bytes.unsafe_to_string b) | Error _ -> None)
    in
    let entries =
      if t.jobs = 1 || List.length ids < 2 then List.map lookup ids
      else Kondo_parallel.Pool.map_list (Kondo_parallel.Pool.create ~jobs:t.jobs) lookup ids
    in
    Proto.Blobs entries
  | Proto.Manifest_req key -> (
    match find_manifest t key with
    | Some m -> Proto.Manifest_resp m
    | None -> Proto.Err (Printf.sprintf "no manifest matches %S" key))
  | Proto.Scrape ->
    (* STATS op: the process-wide registry, so a scrape also sees the
       cache/pool/faults counters this server has been driving. *)
    Proto.Metrics (Kondo_obs.Registry.expose Kondo_obs.Registry.default)

let handle t body =
  locked t (fun () -> t.served <- t.served + 1);
  Kondo_obs.Registry.inc (Lazy.force Srv_obs.requests);
  let t0 = Kondo_obs.Clock.now Kondo_obs.Clock.real in
  let resp =
    match Proto.decode_request body with
    | Error msg -> Proto.Err ("bad request: " ^ msg)
    | Ok req -> (
      match apply t req with
      | resp -> resp
      | exception exn -> Proto.Err ("server error: " ^ Printexc.to_string exn))
  in
  let encoded = Proto.encode_response resp in
  Kondo_obs.Registry.observe
    (Lazy.force Srv_obs.request_seconds)
    (Float.max 0.0 (Kondo_obs.Clock.now Kondo_obs.Clock.real -. t0));
  encoded

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Proto.read_message ic with
    | Error _ -> () (* peer closed or sent garbage framing: drop the connection *)
    | Ok body ->
      Proto.write_message oc (handle t body);
      loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let serve_unix t ~socket ?(on_ready = fun () -> ()) ~stop () =
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX socket);
      Unix.listen listener 16;
      on_ready ();
      let rec accept_loop () =
        if not (stop ()) then begin
          (match Unix.accept listener with
          | fd, _ -> if stop () then (try Unix.close fd with Unix.Unix_error _ -> ()) else handle_conn t fd
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ())
