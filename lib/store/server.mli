(** The chunk server: a block store plus cache behind the {!Proto}
    protocol.

    GETs go through the byte-budgeted {!Cache} in front of the block
    store (misses single-flight to the store), BATCH requests fan their
    lookups out over a {!Kondo_parallel.Pool} when the server was
    created with [jobs > 1] — which is exactly when the cache's
    coalescing earns its keep — and every request is answered, malformed
    ones with [Err].  Serving works over any handler-shaped transport:
    {!handle} is the whole protocol, so tests drive it through
    {!Transport.loopback} while {!serve_unix} runs the real
    Unix-domain-socket accept loop. *)

type t

val create :
  ?cache_bytes:int -> ?cache_shards:int -> ?jobs:int -> store:Block_store.t -> unit -> t
(** [cache_bytes] (default 1 MiB) budgets the read cache; [jobs]
    (default 1) sets the BATCH fan-out width. *)

val store : t -> Block_store.t
val cache : t -> Cache.t

val add_blob : t -> ?chunk_size:int -> name:string -> bytes -> Chunk.manifest
(** Chunk a blob into the store and register its manifest under [name]. *)

val add_kh5 : t -> ?chunk_size:int -> name:string -> string -> Chunk.manifest list
(** [add_kh5 t ~name path]: register one manifest per dataset of a
    dense KH5 file at [path], keyed
    ["name#dataset"], each over the dataset's logical data section —
    the byte space {!Kondo_container.Runtime} misses are expressed in.
    @raise Invalid_argument on sparse datasets (serve the original,
    un-debloated file). *)

val manifests : t -> (string * Chunk.manifest) list
(** Registered manifests, sorted by key. *)

val find_manifest : t -> string -> Chunk.manifest option
(** Exact key, or unique ["#dataset"]-suffix match, or — with key [""] —
    the server's only manifest. *)

val requests_served : t -> int

val handle : t -> string -> string
(** One protocol round: decode a request body, apply it, encode the
    response.  Never raises on malformed input. *)

val serve_unix : t -> socket:string -> ?on_ready:(unit -> unit) -> stop:(unit -> bool) -> unit -> unit
(** Bind [socket] (replacing a stale file), call [on_ready], then accept
    connections until [stop ()] holds, answering each connection's
    requests in arrival order until its peer disconnects.  [stop] is
    consulted between connections — wake a blocked accept by connecting
    once after flipping the flag. *)
