type conn = {
  send : string -> unit;
  recv : unit -> (string, string) result;
  close : unit -> unit;
  peer : string;
}

let loopback ~handle =
  let pending = Queue.create () in
  { send = (fun req -> Queue.push (handle req) pending);
    recv =
      (fun () ->
        match Queue.pop pending with
        | resp -> Ok resp
        | exception Queue.Empty -> Error "loopback: recv before send");
    close = (fun () -> Queue.clear pending);
    peer = "loopback" }

let unix_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let closed = ref false in
  { send = (fun body -> Proto.write_message oc body);
    recv = (fun () -> Proto.read_message ic);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          (* one close_out closes the shared fd; flush what's buffered *)
          (try flush oc with Sys_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end);
    peer = "unix:" ^ path }
