(** Pluggable client-side transports for the serve/fetch protocol.

    A connection sends one encoded request body and receives one encoded
    response body per round.  Two implementations: an in-process
    loopback that invokes a handler directly (deterministic, no OS
    resources — what tests and benches use) and a Unix-domain-socket
    client speaking {!Proto}'s CRC-framed messages (what
    [kondo run --remote-store] uses against [kondo serve]). *)

type conn = {
  send : string -> unit;                   (** one encoded request body *)
  recv : unit -> (string, string) result;  (** the matching response body *)
  close : unit -> unit;
  peer : string;                           (** description for error messages *)
}

val loopback : handle:(string -> string) -> conn
(** Requests are handled synchronously by [handle]; responses queue in
    order.  [recv] before [send] reports an error instead of blocking. *)

val unix_connect : string -> conn
(** Connect to a Unix-domain socket at this path.
    @raise Unix.Unix_error when the socket is absent or refuses. *)
