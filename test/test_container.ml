(* Tests for the container substrate: spec parsing, Merkle chunking,
   image build, and the user-side runtime. *)

open Kondo_container

let fig2_spec =
  String.concat "\n"
    [ "FROM ubuntu:20.04";
      "RUN apt-get install -y gcc";
      "RUN apt-get install -y libhdf5-dev";
      "RUN mkdir /stencil";
      "ADD ./mnist.h5 /stencil/mnist.h5";
      "ADD ./fuji.h5 /stencil/fuji.h5";
      "ADD Stencil.c /stencil/crossStencil.c";
      "PARAM [0-30, 300.00-1200.00, 0-50]";
      "ENTRYPOINT [\"/stencil/CS\"]";
      "CMD [30, 550.0, 10, /stencil/mnist.h5]" ]

let parse_ok text =
  match Spec.parse text with Ok s -> s | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_parse_fig2 () =
  let s = parse_ok fig2_spec in
  Alcotest.(check string) "base" "ubuntu:20.04" s.Spec.base;
  Alcotest.(check int) "env deps" 3 (List.length s.Spec.env_deps);
  Alcotest.(check int) "data deps" 3 (List.length s.Spec.data_deps);
  Alcotest.(check int) "3 params" 3 (Array.length s.Spec.param_space);
  Alcotest.(check bool) "param 2 range" true (s.Spec.param_space.(1) = (300.0, 1200.0));
  Alcotest.(check (option string)) "entrypoint" (Some "/stencil/CS") s.Spec.entrypoint;
  Alcotest.(check int) "cmd args" 4 (List.length s.Spec.cmd)

let test_parse_comments_blank () =
  let s = parse_ok "# a comment\n\nFROM alpine\n   \nRUN true\n" in
  Alcotest.(check string) "base" "alpine" s.Spec.base;
  Alcotest.(check int) "one env dep" 1 (List.length s.Spec.env_deps)

let test_parse_errors () =
  (match Spec.parse "BOGUS x" with
  | Error e -> Alcotest.(check bool) "line number" true (String.length e > 0 && e.[5] = '1')
  | Ok _ -> Alcotest.fail "expected error");
  (match Spec.parse "ADD onlyone" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ADD arity should fail");
  match Spec.parse "PARAM [5-1]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted range should fail"

let test_param_ranges () =
  (match Spec.parse_param_ranges "[0-30, 300.00-1200.00, 0-50]" with
  | Ok r ->
    Alcotest.(check int) "three ranges" 3 (Array.length r);
    Alcotest.(check bool) "floats parsed" true (r.(1) = (300.0, 1200.0))
  | Error e -> Alcotest.fail e);
  match Spec.parse_param_ranges "[-5-10]" with
  | Ok r -> Alcotest.(check bool) "negative lo" true (r.(0) = (-5.0, 10.0))
  | Error e -> Alcotest.fail e

let test_spec_roundtrip () =
  let s = parse_ok fig2_spec in
  let s2 = parse_ok (Spec.to_string s) in
  Alcotest.(check bool) "roundtrip preserves structure" true
    (s.Spec.base = s2.Spec.base
    && s.Spec.env_deps = s2.Spec.env_deps
    && s.Spec.data_deps = s2.Spec.data_deps
    && s.Spec.param_space = s2.Spec.param_space
    && s.Spec.entrypoint = s2.Spec.entrypoint)

let test_data_dep_for () =
  let s = parse_ok fig2_spec in
  (match Spec.data_dep_for s "/stencil/mnist.h5" with
  | Some d -> Alcotest.(check string) "source" "./mnist.h5" d.Spec.src
  | None -> Alcotest.fail "dep not found");
  Alcotest.(check bool) "unknown dep" true (Spec.data_dep_for s "/nope" = None)

(* ---------------- Merkle ---------------- *)

let random_bytes seed n =
  let rng = Kondo_prng.Rng.create seed in
  Bytes.init n (fun _ -> Kondo_prng.Rng.byte rng)

let test_chunks_tile_input () =
  let data = random_bytes 1 100_000 in
  let chunks = Merkle.chunk_bytes data in
  let total = List.fold_left (fun acc c -> acc + c.Merkle.length) 0 chunks in
  Alcotest.(check int) "tiling" (Bytes.length data) total;
  let _ =
    List.fold_left
      (fun expected c ->
        Alcotest.(check int) "contiguous offsets" expected c.Merkle.offset;
        expected + c.Merkle.length)
      0 chunks
  in
  ()

let test_chunking_deterministic () =
  let data = random_bytes 2 50_000 in
  Alcotest.(check bool) "same chunks" true (Merkle.chunk_bytes data = Merkle.chunk_bytes data)

let test_chunk_bounds () =
  let data = random_bytes 3 200_000 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "length in [min,max] or final" true
        (c.Merkle.length <= 65536 && c.Merkle.length >= 1))
    (Merkle.chunk_bytes data)

let test_root_hash_content_sensitive () =
  let a = random_bytes 4 10_000 in
  let b = Bytes.copy a in
  Bytes.set b 5000 'X';
  let ta = Merkle.build a and tb = Merkle.build b in
  Alcotest.(check bool) "hashes differ" true (Merkle.root_hash ta <> Merkle.root_hash tb)

let test_local_edit_dedup () =
  (* flipping one byte should invalidate few chunks: the transfer between
     versions is much smaller than the blob *)
  let a = random_bytes 5 200_000 in
  let b = Bytes.copy a in
  Bytes.set b 100_000 '!';
  let reused, transferred = Merkle.diff_summary ~old_tree:(Merkle.build a) ~new_tree:(Merkle.build b) in
  Alcotest.(check int) "sizes add up" 200_000 (reused + transferred);
  Alcotest.(check bool) "mostly reused" true (reused > 150_000)

let test_transfer_size_full_when_empty () =
  let a = random_bytes 6 30_000 in
  let t = Merkle.build a in
  Alcotest.(check int) "cold transfer = blob size" 30_000
    (Merkle.transfer_size ~have:Merkle.HashSet.empty t);
  Alcotest.(check int) "warm transfer = 0" 0
    (Merkle.transfer_size ~have:(Merkle.chunk_hash_set t) t)

let test_empty_blob () =
  let t = Merkle.build (Bytes.create 0) in
  Alcotest.(check int) "no chunks" 0 (List.length (Merkle.chunks t));
  Alcotest.(check int) "no bytes" 0 (Merkle.total_bytes t)

(* ---------------- Image & Runtime ---------------- *)

open Kondo_workload

let mini_spec_for p ~src ~dst =
  { Spec.empty with
    Spec.base = "ubuntu:20.04";
    env_deps = [ "apt-get install -y libhdf5-dev" ];
    data_deps = [ { Spec.src; dst } ];
    param_space = p.Program.param_space;
    entrypoint = Some "/app/run" }

let build_image ?(n = 16) () =
  let p = Stencils.ldc2d ~n () in
  let src = Filename.temp_file "kondo_img_src" ".kh5" in
  Datafile.write_for ~path:src p;
  let spec = mini_spec_for p ~src ~dst:"/app/data.kh5" in
  let fetch path =
    let ic = open_in_bin path in
    let b = Bytes.create (in_channel_length ic) in
    really_input ic b 0 (Bytes.length b);
    close_in ic;
    b
  in
  (p, src, Image.build spec ~fetch)

let test_image_build_sizes () =
  let _, _, img = build_image () in
  Alcotest.(check bool) "env size positive" true (Image.env_size img > 0);
  Alcotest.(check bool) "data size positive" true (Image.data_size img > 0);
  Alcotest.(check int) "total" (Image.env_size img + Image.data_size img) (Image.size img);
  Alcotest.(check int) "hdf5 package footprint" (34 * 1024 * 1024)
    (Image.env_layer_size "apt-get install -y libhdf5-dev")

let test_image_replace_data () =
  let _, _, img = build_image () in
  let img2 = Image.replace_data img ~dst:"/app/data.kh5" (Bytes.make 10 'z') in
  Alcotest.(check bool) "content swapped" true
    (Image.data_content img2 ~dst:"/app/data.kh5" = Some (Bytes.make 10 'z'));
  Alcotest.check_raises "unknown dst" Not_found (fun () ->
      ignore (Image.replace_data img ~dst:"/nope" Bytes.empty))

let test_runtime_serves_reads () =
  let p, src, img = build_image () in
  let dir = Filename.temp_file "kondo_rt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rt = Runtime.boot ~image:img ~dir () in
  let v = Runtime.read_element rt ~dst:"/app/data.kh5" ~dataset:p.Program.dataset [| 1; 1 |] in
  Alcotest.(check (float 1e-9)) "original value" (Datafile.fill [| 1; 1 |]) v;
  Alcotest.(check int) "one read" 1 (Runtime.stats rt).Runtime.reads;
  Runtime.shutdown rt;
  Sys.remove src

let test_runtime_remote_fallback () =
  let p, src, img = build_image () in
  (* debloat the image down to nothing to force misses *)
  let empty_keep _ = Kondo_interval.Interval_set.empty in
  let tmp_deb = Filename.temp_file "kondo_deb" ".kh5" in
  let f = Kondo_h5.File.open_file src in
  Kondo_h5.Writer.write_debloated tmp_deb ~source:f ~keep:empty_keep;
  Kondo_h5.File.close f;
  let ic = open_in_bin tmp_deb in
  let content = Bytes.create (in_channel_length ic) in
  really_input ic content 0 (Bytes.length content);
  close_in ic;
  let img = Image.replace_data img ~dst:"/app/data.kh5" content in
  let dir = Filename.temp_file "kondo_rt2" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  (* without remote: Data_missing *)
  let rt = Runtime.boot ~image:img ~dir () in
  (try
     ignore (Runtime.read_element rt ~dst:"/app/data.kh5" ~dataset:p.Program.dataset [| 0; 0 |]);
     Alcotest.fail "expected Data_missing"
   with Kondo_h5.File.Data_missing _ -> ());
  Alcotest.(check int) "miss counted" 1 (Runtime.stats rt).Runtime.misses;
  Runtime.shutdown rt;
  (* with remote fallback: value served from the source file *)
  let rt = Runtime.boot ~remote:true ~image:img ~dir () in
  let v = Runtime.read_element rt ~dst:"/app/data.kh5" ~dataset:p.Program.dataset [| 0; 0 |] in
  Alcotest.(check (float 1e-9)) "remote value" (Datafile.fill [| 0; 0 |]) v;
  Alcotest.(check int) "remote fetch counted" 1 (Runtime.stats rt).Runtime.remote_fetches;
  Alcotest.(check bool) "remote bytes counted" true ((Runtime.stats rt).Runtime.remote_bytes > 0);
  Runtime.shutdown rt;
  Sys.remove src;
  Sys.remove tmp_deb

(* image whose data layer was debloated to nothing: every read must
   travel the remote-fetch path *)
let build_hollow_image () =
  let p, src, img = build_image ~n:32 () in
  let empty_keep _ = Kondo_interval.Interval_set.empty in
  let tmp_deb = Filename.temp_file "kondo_deb" ".kh5" in
  let f = Kondo_h5.File.open_file src in
  Kondo_h5.Writer.write_debloated tmp_deb ~source:f ~keep:empty_keep;
  Kondo_h5.File.close f;
  let ic = open_in_bin tmp_deb in
  let content = Bytes.create (in_channel_length ic) in
  really_input ic content 0 (Bytes.length content);
  close_in ic;
  Sys.remove tmp_deb;
  (p, src, Image.replace_data img ~dst:"/app/data.kh5" content)

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let test_mount_error_names_mounts () =
  let _, src, img = build_image () in
  let rt = Runtime.boot ~image:img ~dir:(fresh_dir "kondo_rtm") () in
  (try
     ignore (Runtime.file rt ~dst:"/nope/missing.kh5");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument msg ->
     let mentions needle =
       let nl = String.length needle and ml = String.length msg in
       let rec scan i = i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1)) in
       scan 0
     in
     Alcotest.(check bool) "names the requested dst" true (mentions "/nope/missing.kh5");
     Alcotest.(check bool) "names the available mounts" true (mentions "/app/data.kh5"));
  Runtime.shutdown rt;
  Sys.remove src

let read_all_truth rt p =
  let truth = Program.ground_truth p in
  let served = ref 0 and degraded = ref 0 in
  Kondo_dataarray.Index_set.iter truth (fun idx ->
      match Runtime.try_read_element rt ~dst:"/app/data.kh5" ~dataset:p.Program.dataset idx with
      | Ok v ->
        Alcotest.(check (float 1e-9)) "value survives the fetch" (Datafile.fill idx) v;
        incr served
      | Error (Runtime.Degraded _) -> incr degraded
      | Error exn -> raise exn);
  (!served, !degraded)

let transient_plan () =
  Kondo_faults.Fault_plan.create ~transient:0.2 ~timeout:0.05 ~corrupt:0.25
    ~short_read:0.05 ~seed:7 ()

let generous_retry =
  { Kondo_faults.Retry.default with Kondo_faults.Retry.max_attempts = 48;
    deadline_ms = 1e9 }

let test_runtime_transient_faults_all_served () =
  let p, src, img = build_hollow_image () in
  let boot () =
    Runtime.boot ~remote:true ~faults:(transient_plan ()) ~retry:generous_retry
      ~image:img ~dir:(fresh_dir "kondo_rtf") ()
  in
  let rt = boot () in
  let served, degraded = read_all_truth rt p in
  let s = Runtime.stats rt in
  Alcotest.(check int) "no read degrades" 0 degraded;
  Alcotest.(check int) "every truth read served" served s.Runtime.remote_fetches;
  Alcotest.(check bool) "faults forced retries" true (s.Runtime.retries > 0);
  Alcotest.(check bool) "corrupt payloads detected" true (s.Runtime.corrupt_fetches > 0);
  Alcotest.(check int) "none degraded in stats" 0 s.Runtime.degraded_reads;
  Runtime.shutdown rt;
  (* a fixed fault seed reproduces: identical stats on a second run *)
  let rt2 = boot () in
  let served2, degraded2 = read_all_truth rt2 p in
  let s2 = Runtime.stats rt2 in
  Alcotest.(check (pair int int)) "served/degraded reproduce" (served, degraded)
    (served2, degraded2);
  Alcotest.(check int) "retries reproduce" s.Runtime.retries s2.Runtime.retries;
  Alcotest.(check int) "corrupt fetches reproduce" s.Runtime.corrupt_fetches
    s2.Runtime.corrupt_fetches;
  Runtime.shutdown rt2;
  Sys.remove src

let test_runtime_permanent_faults_degrade () =
  let p, src, img = build_hollow_image () in
  let plan = Kondo_faults.Fault_plan.create ~permanent:1.0 ~seed:7 () in
  let rt =
    Runtime.boot ~remote:true ~faults:plan ~image:img ~dir:(fresh_dir "kondo_rtp") ()
  in
  let served, degraded = read_all_truth rt p in
  let s = Runtime.stats rt in
  Alcotest.(check int) "nothing served" 0 served;
  Alcotest.(check bool) "every read degrades, none crashes" true (degraded > 0);
  Alcotest.(check int) "stats account every degraded read" degraded s.Runtime.degraded_reads;
  Alcotest.(check bool) "breaker tripped" true (s.Runtime.breaker_trips > 0);
  Alcotest.(check bool) "breaker open" true
    (Runtime.breaker_state rt ~dst:"/app/data.kh5" <> Kondo_faults.Breaker.Closed);
  (* the raising variant surfaces the same structured error *)
  (match
     Runtime.read_element rt ~dst:"/app/data.kh5" ~dataset:p.Program.dataset [| 0; 0 |]
   with
  | _ -> Alcotest.fail "expected Degraded"
  | exception Runtime.Degraded { missing; cause = _ } ->
    Alcotest.(check string) "missing names the dataset" p.Program.dataset
      missing.Kondo_h5.File.dataset);
  Runtime.shutdown rt;
  Sys.remove src

let test_materialize_mapping () =
  let _, src, img = build_image () in
  let dir = Filename.temp_file "kondo_mat" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let mapping = Image.materialize img ~dir in
  Alcotest.(check int) "one data layer" 1 (List.length mapping);
  let _, local = List.hd mapping in
  Alcotest.(check bool) "file exists" true (Sys.file_exists local);
  Sys.remove src

let suite =
  ( "container",
    [ Alcotest.test_case "parse Fig. 2 spec" `Quick test_parse_fig2;
      Alcotest.test_case "comments and blanks" `Quick test_parse_comments_blank;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "param ranges" `Quick test_param_ranges;
      Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
      Alcotest.test_case "data_dep_for" `Quick test_data_dep_for;
      Alcotest.test_case "merkle chunks tile input" `Quick test_chunks_tile_input;
      Alcotest.test_case "merkle chunking deterministic" `Quick test_chunking_deterministic;
      Alcotest.test_case "merkle chunk bounds" `Quick test_chunk_bounds;
      Alcotest.test_case "merkle root content-sensitive" `Quick test_root_hash_content_sensitive;
      Alcotest.test_case "merkle local edit dedups" `Quick test_local_edit_dedup;
      Alcotest.test_case "merkle transfer sizes" `Quick test_transfer_size_full_when_empty;
      Alcotest.test_case "merkle empty blob" `Quick test_empty_blob;
      Alcotest.test_case "image build sizes" `Quick test_image_build_sizes;
      Alcotest.test_case "image replace data" `Quick test_image_replace_data;
      Alcotest.test_case "runtime serves reads" `Quick test_runtime_serves_reads;
      Alcotest.test_case "runtime remote fallback" `Quick test_runtime_remote_fallback;
      Alcotest.test_case "mount error names mounts" `Quick test_mount_error_names_mounts;
      Alcotest.test_case "transient faults: all reads served" `Quick
        test_runtime_transient_faults_all_served;
      Alcotest.test_case "permanent faults degrade structurally" `Quick
        test_runtime_permanent_faults_degrade;
      Alcotest.test_case "image materialize" `Quick test_materialize_mapping ] )
