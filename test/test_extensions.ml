(* Tests for the extension subsystems: hull H-representations and
   disjunctive invariants (§VII), the persistent event log (§V), the
   content-addressed registry, and multi-dataset debloating
   (footnote 1). *)

open Kondo_dataarray
open Kondo_geometry
open Kondo_audit
open Kondo_container
open Kondo_workload
open Kondo_core

(* ---------------- Hull halfspaces ---------------- *)

let test_halfspaces_square () =
  let h = Hull.of_int_points [ [| 0; 0 |]; [| 4; 0 |]; [| 4; 4 |]; [| 0; 4 |] ] in
  let cs = Hull.halfspaces h in
  Alcotest.(check int) "four edges" 4 (List.length cs);
  Alcotest.(check bool) "interior" true (Hull.satisfies_halfspaces cs [| 2.0; 2.0 |]);
  Alcotest.(check bool) "edge" true (Hull.satisfies_halfspaces cs [| 4.0; 2.0 |]);
  Alcotest.(check bool) "outside" false (Hull.satisfies_halfspaces cs [| 5.0; 2.0 |])

let test_halfspaces_point_segment () =
  let pt = Hull.of_int_points [ [| 3; 4 |] ] in
  Alcotest.(check bool) "point itself" true
    (Hull.satisfies_halfspaces (Hull.halfspaces pt) [| 3.0; 4.0 |]);
  Alcotest.(check bool) "point other" false
    (Hull.satisfies_halfspaces (Hull.halfspaces pt) [| 3.0; 5.0 |]);
  let seg = Hull.of_int_points [ [| 0; 0 |]; [| 4; 2 |] ] in
  let cs = Hull.halfspaces seg in
  Alcotest.(check bool) "midpoint" true (Hull.satisfies_halfspaces cs [| 2.0; 1.0 |]);
  Alcotest.(check bool) "off line" false (Hull.satisfies_halfspaces cs [| 2.0; 2.0 |]);
  Alcotest.(check bool) "beyond extent" false (Hull.satisfies_halfspaces cs [| 8.0; 4.0 |])

let test_halfspaces_3d_and_flat () =
  let cube =
    Hull.of_int_points
      [ [| 0; 0; 0 |]; [| 3; 0; 0 |]; [| 0; 3; 0 |]; [| 0; 0; 3 |]; [| 3; 3; 0 |]; [| 3; 0; 3 |];
        [| 0; 3; 3 |]; [| 3; 3; 3 |] ]
  in
  let cs = Hull.halfspaces cube in
  Alcotest.(check bool) "cube interior" true (Hull.satisfies_halfspaces cs [| 1.0; 2.0; 1.0 |]);
  Alcotest.(check bool) "cube outside" false (Hull.satisfies_halfspaces cs [| 1.0; 2.0; 4.0 |]);
  let flat = Hull.of_int_points [ [| 0; 0; 2 |]; [| 4; 0; 2 |]; [| 0; 4; 2 |] ] in
  let cs = Hull.halfspaces flat in
  Alcotest.(check bool) "in plane, in polygon" true
    (Hull.satisfies_halfspaces cs [| 1.0; 1.0; 2.0 |]);
  Alcotest.(check bool) "off plane" false (Hull.satisfies_halfspaces cs [| 1.0; 1.0; 3.0 |])

let qcheck_halfspaces_agree_with_contains =
  QCheck.Test.make ~name:"halfspace conjunction agrees with Hull.contains" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 15) (pair (int_range 0 12) (int_range 0 12)))
        (pair (int_range (-2) 14) (int_range (-2) 14)))
    (fun (pts, (qx, qy)) ->
      QCheck.assume (pts <> []);
      let h = Hull.of_int_points (List.map (fun (x, y) -> [| x; y |]) pts) in
      let q = [| float_of_int qx; float_of_int qy |] in
      Hull.satisfies_halfspaces (Hull.halfspaces h) q = Hull.contains h q)

(* ---------------- Invariant ---------------- *)

let test_invariant_disjunction () =
  let a = Hull.of_int_points [ [| 0; 0 |]; [| 2; 0 |]; [| 0; 2 |]; [| 2; 2 |] ] in
  let b = Hull.of_int_points [ [| 10; 10 |]; [| 12; 10 |]; [| 10; 12 |]; [| 12; 12 |] ] in
  let inv = Invariant.of_hulls [ a; b ] in
  Alcotest.(check bool) "in first clause" true (Invariant.satisfies_int inv [| 1; 1 |]);
  Alcotest.(check bool) "in second clause" true (Invariant.satisfies_int inv [| 11; 11 |]);
  Alcotest.(check bool) "in the gap" false (Invariant.satisfies_int inv [| 6; 6 |]);
  Alcotest.(check int) "two clauses" 2 (List.length (Invariant.clauses inv));
  Alcotest.(check bool) "constraints counted" true (Invariant.constraint_count inv >= 8)

let test_invariant_matches_carve () =
  let p = Stencils.ldc2d ~n:32 () in
  let config = { Config.default with Config.max_iter = 300; stop_iter = 300 } in
  let r = Pipeline.approximate ~config p in
  let carve = Carver.carve ~config r.Pipeline.fuzz.Schedule.indices in
  let inv = Invariant.of_carve carve in
  (* the invariant holds exactly on the rasterized hull set *)
  let raster = Carver.rasterize p.Program.shape carve.Carver.hulls in
  let mismatches = ref 0 in
  Shape.iter p.Program.shape (fun idx ->
      if Invariant.satisfies_int inv idx <> Index_set.mem raster idx then incr mismatches);
  Alcotest.(check int) "invariant = hull membership" 0 !mismatches

let test_invariant_to_string () =
  let a = Hull.of_int_points [ [| 0; 0 |]; [| 4; 0 |]; [| 0; 4 |] ] in
  let s = Invariant.to_string (Invariant.of_hulls [ a ]) in
  let contains sub =
    let ls = String.length sub and l = String.length s in
    let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "uses i and j" true (contains "i" && contains "j");
  Alcotest.(check bool) "conjunctions rendered" true (contains "/\\");
  Alcotest.(check string) "empty invariant" "false" (Invariant.to_string (Invariant.of_hulls []))

(* ---------------- Event log ---------------- *)

let sample_events =
  [ { Event.seq = 0; pid = 1; path = "/data/a.kh5"; op = Event.Open; offset = 0; size = 0 };
    { Event.seq = 1; pid = 1; path = "/data/a.kh5"; op = Event.Read; offset = 40; size = 16 };
    { Event.seq = 2; pid = 2; path = "/data/b.kh5"; op = Event.Read; offset = 1 lsl 40; size = 4096 };
    { Event.seq = 3; pid = 1; path = "/data/a.kh5"; op = Event.Close; offset = 0; size = 0 } ]

let test_event_log_roundtrip () =
  let path = Filename.temp_file "kondo_log" ".klog" in
  Event_log.save path sample_events;
  let loaded = Event_log.load path in
  Alcotest.(check int) "count" (List.length sample_events) (List.length loaded);
  List.iter2
    (fun (a : Event.t) (b : Event.t) ->
      Alcotest.(check string) "event" (Event.to_string a) (Event.to_string b))
    sample_events loaded;
  Sys.remove path

let test_event_log_replay () =
  let path = Filename.temp_file "kondo_log" ".klog" in
  Event_log.save path sample_events;
  let t = Event_log.replay path in
  Alcotest.(check int) "events replayed" 4 (Tracer.event_count t);
  Alcotest.(check int) "index rebuilt" 16
    (Kondo_interval.Interval_set.total_length (Tracer.offsets t ~pid:1 ~path:"/data/a.kh5"));
  Sys.remove path

let test_event_log_streaming_writer () =
  let path = Filename.temp_file "kondo_log" ".klog" in
  let w = Event_log.create_writer path in
  List.iter (Event_log.log w) sample_events;
  Event_log.close_writer w;
  Alcotest.(check int) "streamed = loaded" 4 (List.length (Event_log.load path));
  Sys.remove path

let test_event_log_bad_magic () =
  let path = Filename.temp_file "kondo_log" ".klog" in
  let oc = open_out_bin path in
  output_string oc "NOTALOG";
  close_out oc;
  (try
     ignore (Event_log.load path);
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  Sys.remove path

let qcheck_event_log_roundtrip =
  QCheck.Test.make ~name:"event log roundtrips arbitrary events" ~count:100
    QCheck.(
      list_of_size (Gen.int_range 0 50)
        (quad (int_range 0 1000) (int_range 0 5) (int_range 0 1_000_000) (int_range 0 65536)))
    (fun raw ->
      let events =
        List.mapi
          (fun i (seq, pid, offset, size) ->
            { Event.seq;
              pid;
              path = Printf.sprintf "/p/%d" (pid mod 3);
              op = (if i mod 2 = 0 then Event.Read else Event.Write);
              offset;
              size })
          raw
      in
      let path = Filename.temp_file "kondo_qlog" ".klog" in
      Event_log.save path events;
      let loaded = Event_log.load path in
      Sys.remove path;
      loaded = events)

(* ---------------- Registry ---------------- *)

let build_image program =
  let spec =
    { Spec.empty with
      Spec.base = "ubuntu:20.04";
      env_deps = [ "apt-get install -y libhdf5-dev" ];
      data_deps = [ { Spec.src = "mem"; dst = "/app/data.kh5" } ];
      param_space = program.Program.param_space }
  in
  Image.build spec ~fetch:(fun _ -> Datafile.bytes_for program)

let test_registry_push_pull () =
  let p = Stencils.ldc2d ~n:32 () in
  let img = build_image p in
  let reg = Registry.create () in
  let added = Registry.push reg ~name:"app:v1" img in
  Alcotest.(check bool) "chunks stored" true (added > 0);
  Alcotest.(check (list string)) "manifest listed" [ "app:v1" ] (Registry.manifest_names reg);
  let pulled, transferred = Registry.pull reg ~name:"app:v1" ~have:Merkle.HashSet.empty in
  Alcotest.(check bool) "cold pull moves everything" true (transferred >= Image.size img - 10);
  Alcotest.(check bool) "content identical" true
    (Image.data_content pulled ~dst:"/app/data.kh5" = Image.data_content img ~dst:"/app/data.kh5")

let test_registry_dedup_across_versions () =
  let p = Stencils.ldc2d ~n:32 () in
  let img = build_image p in
  let reg = Registry.create () in
  let first = Registry.push reg ~name:"app:v1" img in
  let second = Registry.push reg ~name:"app:v2" img in
  Alcotest.(check int) "identical version adds nothing" 0 second;
  Alcotest.(check bool) "first added" true (first > 0);
  (* pulling v2 when the client already has v1 moves almost nothing *)
  let _, transferred =
    Registry.pull reg ~name:"app:v2" ~have:(Registry.chunks_of reg ~name:"app:v1")
  in
  Alcotest.(check int) "warm pull free" 0 transferred

let test_registry_debloated_shares_chunks () =
  let p = Stencils.ldc2d ~n:32 () in
  let img = build_image p in
  let config = { Config.default with Config.max_iter = 300; stop_iter = 300 } in
  let debloated, _ = Pipeline.debloat_image ~config p ~image:img ~dst:"/app/data.kh5" in
  let reg = Registry.create () in
  ignore (Registry.push reg ~name:"app:full" img);
  let before = Registry.stored_bytes reg in
  ignore (Registry.push reg ~name:"app:debloated" debloated);
  let added = Registry.stored_bytes reg - before in
  (* the debloated KH5 is a different serialization, but it is much
     smaller than the full image data *)
  Alcotest.(check bool) "debloated adds less than its own size would suggest" true
    (added <= Image.data_size debloated)

let test_registry_gc () =
  let p = Stencils.ldc2d ~n:32 () in
  let reg = Registry.create () in
  ignore (Registry.push reg ~name:"a" (build_image p));
  (* a different array size so b's data bytes do not deduplicate into a's *)
  ignore (Registry.push reg ~name:"b" (build_image (Stencils.rdc2d ~n:48 ())));
  let reclaimed = Registry.gc reg ~keep:[ "a" ] in
  Alcotest.(check bool) "something reclaimed" true (reclaimed > 0);
  Alcotest.(check (list string)) "only a remains" [ "a" ] (Registry.manifest_names reg);
  (* kept image still pulls intact *)
  let pulled, _ = Registry.pull reg ~name:"a" ~have:Merkle.HashSet.empty in
  Alcotest.(check bool) "content intact" true
    (Image.data_content pulled ~dst:"/app/data.kh5" <> None);
  Alcotest.check_raises "b is gone" Not_found (fun () ->
      ignore (Registry.pull reg ~name:"b" ~have:Merkle.HashSet.empty))

(* ---------------- Report / JSON ---------------- *)

let test_json_serialization () =
  let open Report.Json in
  Alcotest.(check string) "scalar" "42" (to_string (Int 42));
  Alcotest.(check string) "escaping" {s|"a\"b\\c\nd"|s} (to_string (String "a\"b\\c\nd"));
  Alcotest.(check string) "empty obj" "{}" (to_string (Obj []));
  Alcotest.(check string) "list" {s|[1,true,null]|s} (to_string (List [ Int 1; Bool true; Null ]));
  Alcotest.(check string) "nested" {s|{"a":[1.5,"x"]}|s}
    (to_string (Obj [ ("a", List [ Float 1.5; String "x" ]) ]))

let test_pipeline_report_json () =
  let p = Stencils.ldc2d ~n:32 () in
  let config = { Config.default with Config.max_iter = 200; stop_iter = 200 } in
  let r = Pipeline.evaluate ~config p in
  let json = Report.Json.to_string (Report.pipeline_json p r) in
  let contains sub =
    let ls = String.length sub and l = String.length json in
    let rec go i = i + ls <= l && (String.sub json i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "program name present" true (contains {s|"program":"LDC2D"|s});
  Alcotest.(check bool) "accuracy present" true (contains {s|"accuracy"|s});
  Alcotest.(check bool) "carve stats present" true (contains {s|"hulls"|s});
  let text = Report.pipeline_text p r in
  Alcotest.(check bool) "text has accuracy line" true
    (String.length text > 0 && String.split_on_char '\n' text |> List.exists (fun l ->
         String.length l >= 8 && String.sub l 0 8 = "accuracy"))

(* ---------------- Campaign (§VI: more fuzzing over time) ---------------- *)

let test_campaign_accumulates () =
  let p = Stencils.cs ~n:64 3 in
  let config = { Config.default with Config.max_iter = 100; stop_iter = 100 } in
  let c0 = Campaign.fresh p in
  let c1 = Campaign.extend ~config p c0 1 in
  let c3 = Campaign.extend ~config p c1 2 in
  Alcotest.(check int) "rounds counted" 3 (Campaign.rounds c3);
  Alcotest.(check bool) "monotone accumulation" true
    (Index_set.subset (Campaign.observed c1) (Campaign.observed c3));
  Alcotest.(check bool) "more rounds find more" true
    (Index_set.cardinal (Campaign.observed c3) >= Index_set.cardinal (Campaign.observed c1))

let test_campaign_recall_improves () =
  let p = Stencils.cs ~n:64 3 in
  let truth = Program.ground_truth p in
  let config = { Config.default with Config.max_iter = 80; stop_iter = 80 } in
  let c1 = Campaign.extend ~config p (Campaign.fresh p) 1 in
  let c5 = Campaign.extend ~config p c1 4 in
  let r1 = Metrics.recall ~truth ~approx:(Campaign.carve ~config p c1) in
  let r5 = Metrics.recall ~truth ~approx:(Campaign.carve ~config p c5) in
  Alcotest.(check bool) (Printf.sprintf "recall %.3f -> %.3f" r1 r5) true (r5 >= r1)

let test_campaign_save_load () =
  let p = Stencils.ldc2d ~n:32 () in
  let config = { Config.default with Config.max_iter = 120; stop_iter = 120 } in
  let c = Campaign.extend ~config p (Campaign.fresh p) 2 in
  let path = Filename.temp_file "kondo_campaign" ".kcam" in
  Campaign.save c path;
  let loaded = Campaign.load p path in
  Alcotest.(check int) "rounds" (Campaign.rounds c) (Campaign.rounds loaded);
  Alcotest.(check bool) "observed identical" true
    (Index_set.equal (Campaign.observed c) (Campaign.observed loaded));
  (* wrong program is rejected *)
  (try
     ignore (Campaign.load (Stencils.rdc2d ~n:32 ()) path);
     Alcotest.fail "expected mismatch rejection"
   with Invalid_argument _ -> ());
  Sys.remove path

let test_campaign_load_error_names_file () =
  let p = Stencils.ldc2d ~n:32 () in
  let contains hay needle =
    let ln = String.length needle and lh = String.length hay in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let expect_named path =
    match Campaign.load p path with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument msg ->
      Alcotest.(check bool) ("message names the file: " ^ msg) true (contains msg path);
      Alcotest.(check bool) ("message names the program: " ^ msg) true
        (contains msg p.Program.name)
  in
  (* malformed: not a campaign file at all *)
  let garbage = Filename.temp_file "kondo_campaign_bad" ".kcam" in
  let oc = open_out_bin garbage in
  output_string oc "definitely not a campaign";
  close_out oc;
  expect_named garbage;
  Sys.remove garbage;
  (* well-formed but for a different program *)
  let other = Filename.temp_file "kondo_campaign_other" ".kcam" in
  let config = { Config.default with Config.max_iter = 30; stop_iter = 30 } in
  let q = Stencils.rdc2d ~n:32 () in
  Campaign.save (Campaign.extend ~config q (Campaign.fresh q) 1) other;
  expect_named other;
  Sys.remove other

(* ---------------- Multi-dataset debloating ---------------- *)

let test_debloat_file_many () =
  let p1 = Program.with_dataset (Stencils.ldc2d ~n:16 ()) "left" in
  let p2 = Program.with_dataset (Stencils.rdc2d ~n:16 ()) "right" in
  let unused =
    Kondo_h5.Dataset.dense ~name:"never_read" ~dtype:Dtype.Float64 ~shape:(Shape.create [| 8; 8 |]) ()
  in
  let src = Filename.temp_file "kondo_many" ".kh5" in
  let dst = Filename.temp_file "kondo_many_deb" ".kh5" in
  (* file with three datasets, one never read by any program *)
  let mk p = Kondo_h5.Dataset.dense ~name:p.Program.dataset ~dtype:p.Program.dtype ~shape:p.Program.shape () in
  Kondo_h5.Writer.write src [ (mk p1, Datafile.fill); (mk p2, Datafile.fill); (unused, Datafile.fill) ];
  let config = { Config.default with Config.max_iter = 300; stop_iter = 300 } in
  let reports = Pipeline.debloat_file_many ~config [ p1; p2 ] ~src ~dst in
  Alcotest.(check int) "two reports" 2 (List.length reports);
  let d = Kondo_h5.File.open_file dst in
  (* both programs' observed data reads back *)
  List.iter
    (fun (p, name) ->
      let report = List.assoc name reports in
      let checked = ref 0 in
      Index_set.iter report.Pipeline.approx (fun idx ->
          if !checked < 50 then begin
            incr checked;
            Alcotest.(check (float 1e-9)) "value" (Datafile.fill idx)
              (Kondo_h5.File.read_element d p.Program.dataset idx)
          end))
    [ (p1, p1.Program.name); (p2, p2.Program.name) ];
  (* the never-read dataset was dropped to zero bytes *)
  let ds = Kondo_h5.File.find d "never_read" in
  Alcotest.(check int) "unused dataset emptied" 0 (Kondo_h5.Dataset.stored_bytes ds);
  (try
     ignore (Kondo_h5.File.read_element d "never_read" [| 0; 0 |]);
     Alcotest.fail "expected Data_missing"
   with Kondo_h5.File.Data_missing _ -> ());
  Kondo_h5.File.close d;
  Sys.remove src;
  Sys.remove dst

let suite =
  ( "extensions",
    [ Alcotest.test_case "halfspaces: square" `Quick test_halfspaces_square;
      Alcotest.test_case "halfspaces: point and segment" `Quick test_halfspaces_point_segment;
      Alcotest.test_case "halfspaces: 3D and planar" `Quick test_halfspaces_3d_and_flat;
      QCheck_alcotest.to_alcotest qcheck_halfspaces_agree_with_contains;
      Alcotest.test_case "invariant: disjunction" `Quick test_invariant_disjunction;
      Alcotest.test_case "invariant: matches carve" `Quick test_invariant_matches_carve;
      Alcotest.test_case "invariant: rendering" `Quick test_invariant_to_string;
      Alcotest.test_case "event log: roundtrip" `Quick test_event_log_roundtrip;
      Alcotest.test_case "event log: replay into tracer" `Quick test_event_log_replay;
      Alcotest.test_case "event log: streaming writer" `Quick test_event_log_streaming_writer;
      Alcotest.test_case "event log: bad magic" `Quick test_event_log_bad_magic;
      QCheck_alcotest.to_alcotest qcheck_event_log_roundtrip;
      Alcotest.test_case "registry: push/pull" `Quick test_registry_push_pull;
      Alcotest.test_case "registry: dedup across versions" `Quick
        test_registry_dedup_across_versions;
      Alcotest.test_case "registry: debloated image shares chunks" `Quick
        test_registry_debloated_shares_chunks;
      Alcotest.test_case "registry: gc" `Quick test_registry_gc;
      Alcotest.test_case "json serialization" `Quick test_json_serialization;
      Alcotest.test_case "pipeline report json/text" `Quick test_pipeline_report_json;
      Alcotest.test_case "campaign accumulates" `Quick test_campaign_accumulates;
      Alcotest.test_case "campaign recall improves" `Quick test_campaign_recall_improves;
      Alcotest.test_case "campaign save/load" `Quick test_campaign_save_load;
      Alcotest.test_case "campaign load errors name file and program" `Quick
        test_campaign_load_error_names_file;
      Alcotest.test_case "multi-dataset debloat (footnote 1)" `Quick test_debloat_file_many ] )
