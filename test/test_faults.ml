(* Tests for kondo_faults: deterministic fault plans, the retry
   combinator, the circuit breaker, CRC framing, and the salvaging
   loaders built on them (Event_log, Campaign). *)

open Kondo_faults

(* ---------------- Fault ---------------- *)

let test_fault_classify () =
  Alcotest.(check bool) "transient retryable" true
    (Fault.is_retryable (Fault.Transient "x"));
  Alcotest.(check bool) "timeout retryable" true
    (Fault.is_retryable (Fault.Timeout { cost_ms = 5.0 }));
  Alcotest.(check bool) "corrupt retryable" true (Fault.is_retryable (Fault.Corrupt "x"));
  Alcotest.(check bool) "permanent fatal" false
    (Fault.is_retryable (Fault.Permanent "x"));
  Alcotest.(check (float 1e-9)) "timeout carries its cost" 42.0
    (Fault.cost_ms (Fault.Timeout { cost_ms = 42.0 }));
  match Fault.of_exn (Sys_error "disk") with
  | Fault.Transient _ -> ()
  | e -> Alcotest.fail ("Sys_error should map to Transient, got " ^ Fault.to_string e)

(* ---------------- Fault_plan ---------------- *)

let mk_plan seed =
  Fault_plan.create ~transient:0.3 ~timeout:0.1 ~short_read:0.1 ~corrupt:0.1
    ~permanent:0.05 ~seed ()

let drain plan ~site n = List.init n (fun _ -> Fault_plan.decide plan ~site)

let qcheck_plan_reproducible =
  QCheck.Test.make ~name:"fault plan decisions reproduce for a fixed seed" ~count:100
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let a = drain (mk_plan seed) ~site:"s" n in
      let b = drain (mk_plan seed) ~site:"s" n in
      a = b)

let qcheck_plan_site_independent =
  QCheck.Test.make
    ~name:"per-site decisions are independent of interleaving (jobs-invariant)"
    ~count:100
    QCheck.(pair small_int (int_range 1 100))
    (fun (seed, n) ->
      (* sequential: drain site a fully, then site b *)
      let p1 = mk_plan seed in
      let seq_a = drain p1 ~site:"a" n in
      let seq_b = drain p1 ~site:"b" n in
      (* interleaved: alternate a/b draws, as concurrent callers would *)
      let p2 = mk_plan seed in
      let int_a = ref [] and int_b = ref [] in
      for _ = 1 to n do
        int_a := Fault_plan.decide p2 ~site:"a" :: !int_a;
        int_b := Fault_plan.decide p2 ~site:"b" :: !int_b
      done;
      seq_a = List.rev !int_a && seq_b = List.rev !int_b)

let qcheck_plan_decide_at_pure =
  QCheck.Test.make ~name:"decide_at n is the n-th decide, without advancing" ~count:100
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let p = mk_plan seed in
      let predicted = List.init n (fun i -> Fault_plan.decide_at p ~site:"s" i) in
      predicted = drain p ~site:"s" n)

let test_plan_spec_roundtrip () =
  let check spec =
    match Fault_plan.of_string spec with
    | Error e -> Alcotest.fail (spec ^ ": " ^ e)
    | Ok p -> (
      match Fault_plan.of_string (Fault_plan.to_string p) with
      | Error e -> Alcotest.fail ("roundtrip: " ^ e)
      | Ok p2 ->
        Alcotest.(check string) ("roundtrip " ^ spec) (Fault_plan.to_string p)
          (Fault_plan.to_string p2))
  in
  check "seed=7,transient=0.2,timeout=0.1,corrupt=0.05";
  check "seed=3,permanent=1.0";
  (match Fault_plan.of_string "none" with
  | Ok p -> Alcotest.(check bool) "none is none" true (Fault_plan.is_none p)
  | Error e -> Alcotest.fail e);
  (match Fault_plan.of_string "seed=1,transient=0.9,corrupt=0.9" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rates summing over 1 should be rejected");
  match Fault_plan.of_string "seed=1,bogus=0.1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key should be rejected"

let test_plan_wrap () =
  (* a permanent-only plan preempts the thunk *)
  let p = Fault_plan.create ~permanent:1.0 ~seed:1 () in
  let ran = ref false in
  (match
     Fault_plan.wrap p ~site:"s" (fun () ->
         ran := true;
         Ok "payload")
   with
  | Error (Fault.Permanent _) -> ()
  | _ -> Alcotest.fail "expected injected permanent fault");
  Alcotest.(check bool) "thunk preempted" false !ran;
  (* a corrupt-only plan runs the thunk and mangles the payload *)
  let p = Fault_plan.create ~corrupt:1.0 ~seed:1 () in
  (match
     Fault_plan.wrap p ~site:"s" ~corrupt:(fun s -> String.uppercase_ascii s) (fun () ->
         Ok "payload")
   with
  | Ok "PAYLOAD" -> ()
  | Ok other -> Alcotest.fail ("expected mangled payload, got " ^ other)
  | Error e -> Alcotest.fail (Fault.to_string e));
  (* fault-free plan passes results and maps exceptions *)
  (match Fault_plan.wrap Fault_plan.none ~site:"s" (fun () -> Ok 42) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "none plan should pass the result through");
  match Fault_plan.wrap Fault_plan.none ~site:"s" (fun () -> failwith "boom") with
  | Error (Fault.Permanent _) -> ()
  | _ -> Alcotest.fail "escaping exception should map to Permanent"

(* ---------------- Retry ---------------- *)

let qcheck_retry_delays_reproducible =
  QCheck.Test.make ~name:"backoff delay sequence reproduces for a fixed seed" ~count:100
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let p = Retry.default in
      let a = Retry.delays p ~rng:(Kondo_prng.Rng.create seed) n in
      let b = Retry.delays p ~rng:(Kondo_prng.Rng.create seed) n in
      a = b)

let qcheck_retry_delays_bounded =
  QCheck.Test.make ~name:"each backoff delay respects cap and jitter floor" ~count:100
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let p = Retry.default in
      let ds = Retry.delays p ~rng:(Kondo_prng.Rng.create seed) n in
      List.for_all2
        (fun d attempt ->
          let ideal =
            Float.min p.Retry.max_delay_ms
              (p.Retry.base_delay_ms *. (p.Retry.multiplier ** float_of_int (attempt - 1)))
          in
          d <= ideal +. 1e-9 && d >= (ideal *. (1.0 -. p.Retry.jitter)) -. 1e-9)
        ds
        (List.init n (fun i -> i + 1)))

let test_retry_succeeds_after_transients () =
  let failures = 3 in
  let o =
    Retry.run
      { Retry.default with Retry.max_attempts = 10 }
      ~rng:(Kondo_prng.Rng.create 1)
      (fun ~attempt ->
        if attempt <= failures then Error (Fault.Transient "flaky") else Ok attempt)
  in
  (match o.Retry.result with
  | Ok a -> Alcotest.(check int) "succeeded on attempt" (failures + 1) a
  | Error e -> Alcotest.fail (Fault.to_string e));
  Alcotest.(check int) "retries counted" failures (Retry.retries o);
  Alcotest.(check bool) "virtual time advanced" true (o.Retry.elapsed_ms > 0.0)

let test_retry_fatal_stops () =
  let calls = ref 0 in
  let o =
    Retry.run Retry.default ~rng:(Kondo_prng.Rng.create 1) (fun ~attempt:_ ->
        incr calls;
        Error (Fault.Permanent "gone"))
  in
  Alcotest.(check int) "one attempt only" 1 !calls;
  match o.Retry.result with
  | Error (Fault.Permanent _) -> ()
  | _ -> Alcotest.fail "expected the permanent error back"

let test_retry_deadline_cuts () =
  (* timeouts cost 1000 ms each against a 1500 ms budget: the second
     failure leaves no room for another backoff *)
  let policy =
    { Retry.max_attempts = 100; base_delay_ms = 10.0; max_delay_ms = 10.0;
      multiplier = 1.0; jitter = 0.0; deadline_ms = 1500.0 }
  in
  let o =
    Retry.run policy ~rng:(Kondo_prng.Rng.create 1) (fun ~attempt:_ ->
        Error (Fault.Timeout { cost_ms = 1000.0 }))
  in
  Alcotest.(check bool) "far fewer than max_attempts" true (o.Retry.attempts <= 2);
  match o.Retry.result with
  | Error (Fault.Timeout _) -> ()
  | _ -> Alcotest.fail "expected the last timeout back"

(* ---------------- Breaker ---------------- *)

let test_breaker_state_machine () =
  let config =
    { Breaker.failure_threshold = 3; cooldown_ms = 100.0; success_threshold = 2 }
  in
  let b = Breaker.create ~config () in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  (* closed → open after [failure_threshold] consecutive failures *)
  for _ = 1 to 3 do
    Alcotest.(check bool) "closed allows" true (Breaker.allow b ~now_ms:0.0);
    Breaker.record_failure b ~now_ms:0.0
  done;
  Alcotest.(check bool) "tripped open" true (Breaker.state b = Breaker.Open);
  Alcotest.(check int) "trip counted" 1 (Breaker.stats b).Breaker.trips;
  (* open refuses until the cooldown elapses *)
  Alcotest.(check bool) "open refuses" false (Breaker.allow b ~now_ms:50.0);
  Alcotest.(check int) "rejection counted" 1 (Breaker.stats b).Breaker.rejections;
  (* cooldown elapsed → half-open probe *)
  Alcotest.(check bool) "half-open probe allowed" true (Breaker.allow b ~now_ms:150.0);
  Alcotest.(check bool) "now half-open" true (Breaker.state b = Breaker.Half_open);
  (* a probe failure re-opens *)
  Breaker.record_failure b ~now_ms:150.0;
  Alcotest.(check bool) "probe failure re-opens" true (Breaker.state b = Breaker.Open);
  Alcotest.(check int) "second trip" 2 (Breaker.stats b).Breaker.trips;
  (* cooldown again, then enough probe successes close it *)
  Alcotest.(check bool) "second probe" true (Breaker.allow b ~now_ms:300.0);
  Breaker.record_success b;
  Alcotest.(check bool) "one success keeps half-open" true
    (Breaker.state b = Breaker.Half_open);
  Breaker.record_success b;
  Alcotest.(check bool) "recovered closed" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "recovery counted" 1 (Breaker.stats b).Breaker.recoveries

(* ---------------- Frame ---------------- *)

let test_frame_roundtrip () =
  let payloads = [ "alpha"; ""; "a longer payload with \x00 bytes \xff inside" ] in
  let path = Filename.temp_file "kondo_frame" ".bin" in
  let oc = open_out_bin path in
  List.iter (Frame.write oc) payloads;
  close_out oc;
  let got, intact = Frame.read_all (Frame.read_file path) ~pos:0 in
  Alcotest.(check (list string)) "payloads roundtrip" payloads got;
  Alcotest.(check bool) "intact" true intact;
  Sys.remove path

let test_frame_truncate_every_byte () =
  let payloads = [ "first"; "second"; "third" ] in
  let path = Filename.temp_file "kondo_frame" ".bin" in
  let oc = open_out_bin path in
  List.iter (Frame.write oc) payloads;
  close_out oc;
  let full = Frame.read_file path in
  Sys.remove path;
  let n = Bytes.length full in
  for cut = 0 to n do
    let got, intact = Frame.read_all (Bytes.sub full 0 cut) ~pos:0 in
    (* salvages a prefix of the payload list, never crashes *)
    let is_prefix =
      List.length got <= List.length payloads
      && List.for_all2 ( = ) got (List.filteri (fun i _ -> i < List.length got) payloads)
    in
    Alcotest.(check bool) (Printf.sprintf "prefix at cut %d" cut) true is_prefix;
    if cut = n then (
      Alcotest.(check bool) "full read intact" true intact;
      Alcotest.(check int) "all frames" (List.length payloads) (List.length got))
  done

let test_frame_corrupt_byte () =
  let path = Filename.temp_file "kondo_frame" ".bin" in
  let oc = open_out_bin path in
  List.iter (Frame.write oc) [ "first"; "second" ];
  close_out oc;
  let full = Frame.read_file path in
  Sys.remove path;
  (* flip a payload byte of the second frame: first frame still salvaged *)
  let mangled = Bytes.copy full in
  let pos = Bytes.length mangled - 1 in
  Bytes.set mangled pos (Char.chr (Char.code (Bytes.get mangled pos) lxor 0xff));
  let got, intact = Frame.read_all mangled ~pos:0 in
  Alcotest.(check (list string)) "prefix before corruption" [ "first" ] got;
  Alcotest.(check bool) "not intact" false intact

let test_atomic_write_protects_previous () =
  let path = Filename.temp_file "kondo_atomic" ".bin" in
  Frame.atomic_write path (fun oc -> Frame.write oc "original");
  (try Frame.atomic_write path (fun _ -> failwith "writer crashed") with
  | Failure _ -> ());
  let got, intact = Frame.read_all (Frame.read_file path) ~pos:0 in
  Alcotest.(check (list string)) "previous state intact" [ "original" ] got;
  Alcotest.(check bool) "intact" true intact;
  Alcotest.(check bool) "no temp litter" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

(* ---------------- Event_log salvage ---------------- *)

let mk_events n =
  List.init n (fun i ->
      { Kondo_audit.Event.seq = i; pid = 100 + (i mod 3);
        path = (if i mod 2 = 0 then "/data/a.kh5" else "/data/b.kh5");
        op = Kondo_audit.Event.Read; offset = i * 64; size = 16 })

let test_event_log_truncate_every_byte () =
  let events = mk_events 12 in
  let path = Filename.temp_file "kondo_elog" ".bin" in
  Kondo_audit.Event_log.save path events;
  let ic = open_in_bin path in
  let full = Bytes.create (in_channel_length ic) in
  really_input ic full 0 (Bytes.length full);
  close_in ic;
  let n = Bytes.length full in
  for cut = 0 to n do
    let oc = open_out_bin path in
    output_bytes oc (Bytes.sub full 0 cut);
    close_out oc;
    let got, intact = Kondo_audit.Event_log.load_salvage path in
    let is_prefix =
      List.length got <= List.length events
      && List.for_all2 ( = ) got (List.filteri (fun i _ -> i < List.length got) events)
    in
    Alcotest.(check bool) (Printf.sprintf "event prefix at cut %d" cut) true is_prefix;
    if cut = n then (
      Alcotest.(check bool) "full log intact" true intact;
      Alcotest.(check int) "all events" (List.length events) (List.length got))
  done;
  Sys.remove path

(* ---------------- Campaign salvage ---------------- *)

let test_campaign_truncate_every_byte () =
  let p = Kondo_workload.Stencils.cs ~n:16 1 in
  let config =
    { Kondo_core.Config.default with Kondo_core.Config.seed = 3; max_iter = 200;
      stop_iter = 200 }
  in
  let c =
    Kondo_core.Campaign.extend ~config p (Kondo_core.Campaign.fresh p) 2
  in
  let observed = Kondo_core.Campaign.observed c in
  let path = Filename.temp_file "kondo_camp" ".bin" in
  Kondo_core.Campaign.save c path;
  let ic = open_in_bin path in
  let full = Bytes.create (in_channel_length ic) in
  really_input ic full 0 (Bytes.length full);
  close_in ic;
  let n = Bytes.length full in
  for cut = 0 to n do
    let oc = open_out_bin path in
    output_bytes oc (Bytes.sub full 0 cut);
    close_out oc;
    let s, intact = Kondo_core.Campaign.salvage p path in
    (* salvage never invents observations and never crashes *)
    Alcotest.(check bool)
      (Printf.sprintf "salvaged subset at cut %d" cut)
      true
      (Kondo_dataarray.Index_set.subset (Kondo_core.Campaign.observed s) observed);
    if cut = n then (
      Alcotest.(check bool) "full state intact" true intact;
      Alcotest.(check bool) "full state equal" true
        (Kondo_dataarray.Index_set.equal (Kondo_core.Campaign.observed s) observed);
      Alcotest.(check int) "rounds kept" (Kondo_core.Campaign.rounds c)
        (Kondo_core.Campaign.rounds s))
  done;
  (* a salvaged torn state still extends to a working campaign *)
  let oc = open_out_bin path in
  output_bytes oc (Bytes.sub full 0 (n / 2));
  close_out oc;
  let s, intact = Kondo_core.Campaign.salvage p path in
  Alcotest.(check bool) "half a file is not intact" false intact;
  let resumed = Kondo_core.Campaign.extend ~config p s 1 in
  Alcotest.(check bool) "resumed campaign observes data" true
    (Kondo_dataarray.Index_set.cardinal (Kondo_core.Campaign.observed resumed) > 0);
  Sys.remove path

let test_campaign_wrong_program_rejected () =
  let p = Kondo_workload.Stencils.cs ~n:16 1 in
  let other = Kondo_workload.Stencils.ldc2d ~n:16 () in
  let path = Filename.temp_file "kondo_camp" ".bin" in
  Kondo_core.Campaign.save (Kondo_core.Campaign.fresh p) path;
  (try
     ignore (Kondo_core.Campaign.salvage other path);
     Alcotest.fail "wrong program must raise, not salvage"
   with Invalid_argument _ -> ());
  Sys.remove path

let suite =
  ( "faults",
    [ Alcotest.test_case "fault classification" `Quick test_fault_classify;
      QCheck_alcotest.to_alcotest qcheck_plan_reproducible;
      QCheck_alcotest.to_alcotest qcheck_plan_site_independent;
      QCheck_alcotest.to_alcotest qcheck_plan_decide_at_pure;
      Alcotest.test_case "plan spec roundtrip" `Quick test_plan_spec_roundtrip;
      Alcotest.test_case "plan wrap semantics" `Quick test_plan_wrap;
      QCheck_alcotest.to_alcotest qcheck_retry_delays_reproducible;
      QCheck_alcotest.to_alcotest qcheck_retry_delays_bounded;
      Alcotest.test_case "retry succeeds after transients" `Quick
        test_retry_succeeds_after_transients;
      Alcotest.test_case "retry stops on fatal" `Quick test_retry_fatal_stops;
      Alcotest.test_case "retry deadline budget" `Quick test_retry_deadline_cuts;
      Alcotest.test_case "breaker state machine" `Quick test_breaker_state_machine;
      Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
      Alcotest.test_case "frame truncate every byte" `Quick test_frame_truncate_every_byte;
      Alcotest.test_case "frame corrupt byte" `Quick test_frame_corrupt_byte;
      Alcotest.test_case "atomic write protects previous" `Quick
        test_atomic_write_protects_previous;
      Alcotest.test_case "event log truncate every byte" `Quick
        test_event_log_truncate_every_byte;
      Alcotest.test_case "campaign truncate every byte" `Quick
        test_campaign_truncate_every_byte;
      Alcotest.test_case "campaign wrong program rejected" `Quick
        test_campaign_wrong_program_rejected ] )
