(* Test entry point: aggregates one Alcotest suite per library plus the
   integration suite. *)

let () =
  Alcotest.run "kondo"
    [ Test_prng.suite;
      Test_parallel.suite;
      Test_geometry.suite;
      Test_dataarray.suite;
      Test_interval.suite;
      Test_faults.suite;
      Test_audit.suite;
      Test_h5.suite;
      Test_provenance.suite;
      Test_container.suite;
      Test_store.suite;
      Test_obs.suite;
      Test_workload.suite;
      Test_core.suite;
      Test_baselines.suite;
      Test_netcdf.suite;
      Test_extensions.suite;
      Test_robustness.suite;
      Test_integration.suite ]
