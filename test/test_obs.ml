(* Tests for the observability substrate: the metrics registry (golden
   exposition, get-or-create semantics, domain-safety), the virtual
   clock, the span tracer (golden Chrome JSON and text tree), the STATS
   protocol op, and the regression that instrumentation never changes
   debloated outputs. *)

open Kondo_obs
open Kondo_workload
open Kondo_core

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

(* ---- Clock ---- *)

let test_clock_virtual_deterministic () =
  let mk () = Clock.virtual_ ~start:10.0 ~step:0.5 () in
  let a = mk () and b = mk () in
  let seq c = List.init 5 (fun _ -> Clock.now c) in
  Alcotest.(check (list (float 0.0))) "same sequence" (seq a) (seq b);
  Alcotest.(check (float 0.0)) "starts at start" 10.0 (List.hd (seq (mk ())));
  let c = mk () in
  Clock.advance c 100.0;
  Alcotest.(check (float 0.0)) "advance adds" 110.0 (Clock.now c);
  Alcotest.(check bool) "virtual is virtual" true (Clock.is_virtual c);
  Alcotest.(check bool) "real is not" false (Clock.is_virtual Clock.real);
  (* real clock: advance is a no-op, now is sane *)
  Clock.advance Clock.real 1e9;
  Alcotest.(check bool) "real now positive" true (Clock.now Clock.real > 0.0);
  Alcotest.check_raises "negative step rejected"
    (Invalid_argument "Clock.virtual_: negative step") (fun () ->
      ignore (Clock.virtual_ ~step:(-1.0) ()));
  Alcotest.check_raises "negative advance rejected"
    (Invalid_argument "Clock.advance: negative delta") (fun () ->
      Clock.advance (mk ()) (-1.0))

(* ---- Registry ---- *)

let test_registry_golden_exposition () =
  let r = Registry.create () in
  let c = Registry.counter ~help:"Things counted" r "t_things_total" in
  Registry.inc ~by:3 c;
  let g = Registry.gauge ~help:"A level" r "t_level" in
  Registry.set_gauge g 2.5;
  let h = Registry.histogram ~help:"Sizes" ~buckets:[| 1.0; 2.0; 4.0 |] r "t_sizes" in
  List.iter (Registry.observe h) [ 0.5; 1.5; 8.0 ];
  let expected =
    "# HELP t_level A level\n\
     # TYPE t_level gauge\n\
     t_level 2.5\n\
     # HELP t_sizes Sizes\n\
     # TYPE t_sizes histogram\n\
     t_sizes_bucket{le=\"1.0\"} 1\n\
     t_sizes_bucket{le=\"2.0\"} 2\n\
     t_sizes_bucket{le=\"4.0\"} 2\n\
     t_sizes_bucket{le=\"+Inf\"} 3\n\
     t_sizes_sum 10.0\n\
     t_sizes_count 3\n\
     # HELP t_things_total Things counted\n\
     # TYPE t_things_total counter\n\
     t_things_total 3\n"
  in
  Alcotest.(check string) "exposition text" expected (Registry.expose r);
  let expected_json =
    "{\"counters\":{\"t_things_total\":3},\"gauges\":{\"t_level\":2.5},\"histograms\":\
     {\"t_sizes\":{\"buckets\":[{\"le\":\"1.0\",\"count\":1},{\"le\":\"2.0\",\"count\":2},\
     {\"le\":\"4.0\",\"count\":2},{\"le\":\"+Inf\",\"count\":3}],\"sum\":10.0,\"count\":3}}}"
  in
  Alcotest.(check string) "json snapshot" expected_json (Registry.to_json r);
  Registry.reset r;
  Alcotest.(check int) "reset zeroes counters" 0 (Registry.counter_value c);
  Alcotest.(check int) "reset zeroes histograms" 0 (Registry.histogram_count h)

let test_registry_get_or_create () =
  let r = Registry.create () in
  let a = Registry.counter ~help:"first wins" r "t_shared_total" in
  let b = Registry.counter ~help:"ignored" r "t_shared_total" in
  Registry.inc a;
  Registry.inc ~by:2 b;
  Alcotest.(check int) "both handles hit one counter" 3 (Registry.counter_value a);
  Alcotest.(check bool) "help of first registration wins" true
    (contains (Registry.expose r) "# HELP t_shared_total first wins");
  (match Registry.gauge r "t_shared_total" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "clash names existing kind" true (contains msg "counter"));
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Registry.inc: negative increment") (fun () ->
      Registry.inc ~by:(-1) a);
  Alcotest.check_raises "empty buckets rejected"
    (Invalid_argument "Registry.histogram: no buckets") (fun () ->
      ignore (Registry.histogram ~buckets:[||] r "t_h"));
  Alcotest.check_raises "non-increasing buckets rejected"
    (Invalid_argument "Registry.histogram: buckets must be strictly increasing")
    (fun () -> ignore (Registry.histogram ~buckets:[| 1.0; 1.0 |] r "t_h"))

let qcheck_concurrent_counters =
  QCheck.Test.make ~count:20
    ~name:"Registry: counter/histogram totals exact under 4-domain concurrency"
    QCheck.(int_range 1 400)
    (fun n ->
      let r = Registry.create () in
      let c = Registry.counter r "q_total" in
      let h = Registry.histogram ~buckets:[| 0.5; 1.5 |] r "q_seconds" in
      let worker () =
        for i = 1 to n do
          Registry.inc c;
          Registry.observe h (if i mod 2 = 0 then 1.0 else 2.0)
        done
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains;
      let buckets = Registry.histogram_buckets h in
      let _, total = List.nth buckets (List.length buckets - 1) in
      Registry.counter_value c = 4 * n
      && Registry.histogram_count h = 4 * n
      && total = 4 * n)

(* ---- Trace ---- *)

(* One clock read per begin/instant/end, step 1s (exact in binary
   floating point, unlike 1e-6): timestamps are fully deterministic, so
   the exports are byte-stable golden files. *)
let golden_trace () =
  let clk = Clock.virtual_ ~start:0.0 ~step:1.0 () in
  let tr = Trace.create ~clock:clk () in
  let outer = Trace.begin_span tr "a" in
  Trace.instant tr "mark";
  let inner = Trace.begin_span tr ~args:[ ("k", "v") ] "b" in
  Trace.end_span tr inner;
  Trace.end_span tr outer;
  tr

let test_trace_golden_chrome_json () =
  let tr = golden_trace () in
  Alcotest.(check int) "three events" 3 (Trace.event_count tr);
  let expected =
    "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"kondo\",\"ph\":\"X\",\"ts\":0.0,\"pid\":0,\
     \"tid\":0,\"dur\":4000000.0},{\"name\":\"mark\",\"cat\":\"kondo\",\"ph\":\"i\",\
     \"ts\":1000000.0,\"pid\":0,\"tid\":0,\"s\":\"t\"},{\"name\":\"b\",\"cat\":\"kondo\",\
     \"ph\":\"X\",\"ts\":2000000.0,\"pid\":0,\"tid\":0,\"dur\":1000000.0,\
     \"args\":{\"k\":\"v\"}}]}"
  in
  Alcotest.(check string) "chrome json" expected (Trace.to_chrome_json tr)

let test_trace_golden_text_tree () =
  let tr = golden_trace () in
  let expected = "[tid 0]\n  a 4000000.0us\n    @mark\n    b 1000000.0us (k=v)\n" in
  Alcotest.(check string) "text tree" expected (Trace.to_text_tree tr)

let test_trace_span_nesting_order () =
  (* zero-step clock: every event lands at ts 0; the later-recorded span
     (the parent — it ended last) must still precede its children *)
  let clk = Clock.virtual_ () in
  let tr = Trace.create ~clock:clk () in
  Trace.with_span tr "parent" (fun () ->
      Trace.with_span tr "child1" (fun () -> ());
      Trace.with_span tr "child2" (fun () -> ()));
  let json = Trace.to_chrome_json tr in
  let pos name =
    let rec at i =
      if i + String.length name > String.length json then max_int
      else if String.sub json i (String.length name) = name then i
      else at (i + 1)
    in
    at 0
  in
  Alcotest.(check bool) "parent precedes children" true
    (pos "parent" < pos "child1" && pos "parent" < pos "child2");
  (* an exception ends the span with an error attribute and re-raises *)
  (match Trace.with_span tr "boom" (fun () -> failwith "kaboom") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check bool) "error recorded" true
    (contains (Trace.to_chrome_json tr) "\"error\":\"Failure(\\\"kaboom\\\")\"")

let test_ambient_span () =
  Alcotest.(check bool) "no tracer by default" false (Obs.enabled ());
  Alcotest.(check int) "span without tracer runs bare" 7 (Obs.span "s" (fun () -> 7));
  let tr = Trace.create ~clock:(Clock.virtual_ ~step:1e-6 ()) () in
  Obs.set_tracer (Some tr);
  Fun.protect
    ~finally:(fun () -> Obs.set_tracer None)
    (fun () ->
      let v =
        Obs.span "work"
          ~result_args:(fun v -> [ ("result", string_of_int v) ])
          (fun () ->
            Obs.instant "tick";
            41 + 1)
      in
      Alcotest.(check int) "value returned" 42 v);
  Alcotest.(check bool) "tracer uninstalled" false (Obs.enabled ());
  Alcotest.(check int) "both events recorded" 2 (Trace.event_count tr);
  Alcotest.(check bool) "result args recorded" true
    (contains (Trace.to_chrome_json tr) "\"result\":\"42\"")

(* ---- STATS protocol op ---- *)

let test_scrape_proto_roundtrip () =
  let open Kondo_store in
  (match Proto.decode_request (Proto.encode_request Proto.Scrape) with
  | Ok Proto.Scrape -> ()
  | Ok _ -> Alcotest.fail "scrape decoded as something else"
  | Error e -> Alcotest.fail ("scrape request: " ^ e));
  let text = "# TYPE x counter\nx 1\n" in
  (match Proto.decode_response (Proto.encode_response (Proto.Metrics text)) with
  | Ok (Proto.Metrics t) -> Alcotest.(check string) "payload" text t
  | Ok _ -> Alcotest.fail "metrics decoded as something else"
  | Error e -> Alcotest.fail ("metrics response: " ^ e))

let test_scrape_end_to_end () =
  let open Kondo_store in
  let server = Server.create ~store:(Block_store.create ()) () in
  let client = Client.connect (Transport.loopback ~handle:(Server.handle server)) in
  (match Client.scrape client with
  | Error e -> Alcotest.fail ("scrape failed: " ^ Kondo_faults.Fault.to_string e)
  | Ok text ->
    Alcotest.(check bool) "prometheus format" true (contains text "# TYPE");
    Alcotest.(check bool) "server counters present" true
      (contains text "kondo_store_server_requests_total"));
  Client.close client

(* ---- instrumentation leaves outputs untouched ---- *)

let read_file path =
  let ic = open_in_bin path in
  let b = Bytes.create (in_channel_length ic) in
  really_input ic b 0 (Bytes.length b);
  close_in ic;
  Bytes.to_string b

let test_debloat_identical_under_tracing () =
  let p = Stencils.prl2d ~n:64 () in
  let src = Filename.temp_file "obs_src" ".kh5" in
  let dst_plain = Filename.temp_file "obs_plain" ".kh5" in
  let dst_traced = Filename.temp_file "obs_traced" ".kh5" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ src; dst_plain; dst_traced ])
    (fun () ->
      Datafile.write_for ~path:src p;
      let config =
        { Config.default with Config.seed = 5; max_iter = 150; stop_iter = 150; jobs = 1 }
      in
      ignore (Pipeline.debloat_file ~config p ~src ~dst:dst_plain);
      let tr = Trace.create () in
      Obs.set_tracer (Some tr);
      Fun.protect
        ~finally:(fun () -> Obs.set_tracer None)
        (fun () ->
          ignore
            (Pipeline.debloat_file
               ~config:(Config.with_jobs config 2)
               p ~src ~dst:dst_traced));
      Alcotest.(check bool) "spans were recorded" true (Trace.event_count tr > 0);
      Alcotest.(check bool) "debloated outputs byte-identical" true
        (String.equal (read_file dst_plain) (read_file dst_traced)))

let test_fuzz_trace_json_deterministic () =
  let p = Stencils.prl2d ~n:64 () in
  let config = { Config.default with Config.seed = 3; max_iter = 80; stop_iter = 80 } in
  let j1 = Report.fuzz_trace_json (Schedule.run ~config p) in
  let j2 = Report.fuzz_trace_json (Schedule.run ~config p) in
  Alcotest.(check string) "byte-stable for a fixed seed" j1 j2;
  Alcotest.(check bool) "chrome trace shape" true
    (contains j1 "{\"traceEvents\":[" && contains j1 "\"ph\":\"X\"");
  Alcotest.(check bool) "categorized outcomes" true
    (contains j1 "\"cat\":\"useful\"" || contains j1 "\"cat\":\"non-useful\"")

let test_schedule_counters_flow () =
  let before =
    Registry.counter_value (Registry.counter Registry.default "kondo_schedule_rounds_total")
  in
  let p = Stencils.prl2d ~n:64 () in
  let config = { Config.default with Config.seed = 2; max_iter = 60; stop_iter = 60 } in
  let r = Schedule.run ~config p in
  let value name = Registry.counter_value (Registry.counter Registry.default name) in
  Alcotest.(check int) "one round recorded"
    (before + 1)
    (value "kondo_schedule_rounds_total");
  Alcotest.(check bool) "evaluations mirrored" true
    (value "kondo_schedule_evaluations_total" >= r.Schedule.evaluations)

let suite =
  ( "obs",
    [ Alcotest.test_case "virtual clock is deterministic" `Quick
        test_clock_virtual_deterministic;
      Alcotest.test_case "registry golden exposition and json" `Quick
        test_registry_golden_exposition;
      Alcotest.test_case "registry get-or-create and validation" `Quick
        test_registry_get_or_create;
      QCheck_alcotest.to_alcotest qcheck_concurrent_counters;
      Alcotest.test_case "trace golden chrome json" `Quick test_trace_golden_chrome_json;
      Alcotest.test_case "trace golden text tree" `Quick test_trace_golden_text_tree;
      Alcotest.test_case "trace span nesting and errors" `Quick
        test_trace_span_nesting_order;
      Alcotest.test_case "ambient span on/off" `Quick test_ambient_span;
      Alcotest.test_case "STATS op roundtrips" `Quick test_scrape_proto_roundtrip;
      Alcotest.test_case "STATS op end to end" `Quick test_scrape_end_to_end;
      Alcotest.test_case "tracing leaves debloated output byte-identical" `Quick
        test_debloat_identical_under_tracing;
      Alcotest.test_case "fuzz trace export is deterministic" `Quick
        test_fuzz_trace_json_deterministic;
      Alcotest.test_case "schedule counters flow into the registry" `Quick
        test_schedule_counters_flow ] )
