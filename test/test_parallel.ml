(* kondo_parallel: pool semantics (exception propagation, jobs = 1
   fallback, nested-use rejection, order preservation) and the
   determinism contract of the parallel fan-out paths — jobs = 4 must be
   bit-identical to jobs = 1 through the whole stack. *)

open Kondo_prng
open Kondo_dataarray
open Kondo_workload
open Kondo_core
open Kondo_parallel

(* ---------------- Pool unit tests ---------------- *)

let test_map_reduce_sum () =
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      let sum =
        Pool.map_reduce pool ~n:100 ~map:(fun i -> i * i) ~reduce:( + ) ~init:0
      in
      Alcotest.(check int) (Printf.sprintf "sum of squares, jobs=%d" jobs) 328350 sum)
    [ 1; 2; 4; 7 ]

let test_reduce_in_index_order () =
  let pool = Pool.create ~jobs:4 in
  let order =
    Pool.map_reduce pool ~n:50 ~map:(fun i -> i) ~reduce:(fun acc i -> i :: acc) ~init:[]
  in
  Alcotest.(check (list int)) "reduced left-to-right" (List.init 50 (fun i -> 49 - i)) order

let test_map_list_order () =
  let pool = Pool.create ~jobs:3 in
  let xs = List.init 37 (fun i -> i) in
  Alcotest.(check (list int)) "map_list preserves order"
    (List.map (fun x -> x * 3) xs)
    (Pool.map_list pool (fun x -> x * 3) xs)

let test_empty_and_singleton () =
  let pool = Pool.create ~jobs:4 in
  Alcotest.(check int) "n=0" 42 (Pool.map_reduce pool ~n:0 ~map:(fun _ -> 0) ~reduce:( + ) ~init:42);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map_list pool (fun x -> x + 1) [ 8 ])

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      match
        Pool.map_reduce pool ~n:10
          ~map:(fun i -> if i >= 3 then failwith (Printf.sprintf "boom %d" i) else i)
          ~reduce:( + ) ~init:0
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
        (* leftmost failing task wins deterministically *)
        Alcotest.(check string) (Printf.sprintf "leftmost failure, jobs=%d" jobs) "boom 3" msg)
    [ 1; 4 ]

let test_invalid_jobs () =
  (try
     ignore (Pool.create ~jobs:0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "jobs clamped" 64 (Pool.jobs (Pool.create ~jobs:10_000))

let test_nested_use_rejected () =
  let outer = Pool.create ~jobs:2 in
  let inner = Pool.create ~jobs:2 in
  match
    Pool.map_reduce outer ~n:4
      ~map:(fun i ->
        Pool.map_reduce inner ~n:2 ~map:(fun j -> i + j) ~reduce:( + ) ~init:0)
      ~reduce:( + ) ~init:0
  with
  | _ -> Alcotest.fail "expected nested use to be rejected"
  | exception Invalid_argument _ -> ()

let test_sequential_nesting_allowed () =
  (* jobs = 1 is the legacy path: no worker domains, nesting is fine. *)
  let outer = Pool.create ~jobs:1 in
  let inner = Pool.create ~jobs:1 in
  let v =
    Pool.map_reduce outer ~n:3
      ~map:(fun i ->
        Pool.map_reduce inner ~n:3 ~map:(fun j -> i * j) ~reduce:( + ) ~init:0)
      ~reduce:( + ) ~init:0
  in
  Alcotest.(check int) "nested sequential pools" 9 v

(* ---------------- split_at ---------------- *)

let test_split_at_matches_split () =
  let seed = 12345 in
  let parent = Rng.create seed in
  for i = 1 to 20 do
    let child = Rng.split parent in
    let direct = Rng.split_at seed i in
    Alcotest.(check int64) (Printf.sprintf "child %d" i) (Rng.bits64 child)
      (Rng.bits64 direct)
  done

(* ---------------- determinism parity through the stack ---------------- *)

let small_config seed =
  { Config.default with Config.seed; max_iter = 120; stop_iter = 120 }

let parity_programs = [| Stencils.cs ~n:48 1; Stencils.ldc2d ~n:48 (); Stencils.prl2d ~n:48 () |]

let test_campaign_parity () =
  QCheck.Test.make ~count:12 ~name:"Campaign.extend: jobs=4 observed == jobs=1"
    QCheck.(pair (int_range 1 1000) (int_range 0 2))
    (fun (seed, pi) ->
      let p = parity_programs.(pi) in
      let run jobs =
        let config = Config.with_jobs (small_config seed) jobs in
        Campaign.observed (Campaign.extend ~config p (Campaign.fresh p) 5)
      in
      Index_set.equal (run 1) (run 4))

let test_campaign_resume_parity () =
  (* 2 + 3 rounds across two sessions equals 5 rounds in one, regardless
     of jobs: round seeds are a pure function of the round number. *)
  let p = parity_programs.(0) in
  let config = Config.with_jobs (small_config 99) 4 in
  let split_sessions =
    Campaign.extend ~config p (Campaign.extend ~config p (Campaign.fresh p) 2) 3
  in
  let one_session =
    Campaign.extend ~config:(Config.with_jobs (small_config 99) 1) p (Campaign.fresh p) 5
  in
  Alcotest.(check bool) "resumed == one-shot" true
    (Index_set.equal (Campaign.observed split_sessions) (Campaign.observed one_session))

let test_carve_parity () =
  QCheck.Test.make ~count:8 ~name:"Carver: jobs=4 I'_Theta == jobs=1"
    QCheck.(pair (int_range 1 1000) (int_range 0 2))
    (fun (seed, pi) ->
      let p = parity_programs.(pi) in
      let approx jobs =
        let config = Config.with_jobs (small_config seed) jobs in
        let c = Campaign.extend ~config p (Campaign.fresh p) 2 in
        Campaign.carve ~config p c
      in
      Index_set.equal (approx 1) (approx 4))

let test_debloat_file_many_parity () =
  let programs =
    [ Program.with_dataset (Stencils.ldc2d ~n:24 ()) "left";
      Program.with_dataset (Stencils.rdc2d ~n:24 ()) "right" ]
  in
  let mk p =
    Kondo_h5.Dataset.dense ~name:p.Program.dataset ~dtype:p.Program.dtype
      ~shape:p.Program.shape ()
  in
  let src = Filename.temp_file "kondo_par_src" ".kh5" in
  Kondo_h5.Writer.write src (List.map (fun p -> (mk p, Datafile.fill)) programs);
  let bytes_of path =
    let ic = open_in_bin path in
    let b = really_input_string ic (in_channel_length ic) in
    close_in ic;
    b
  in
  let debloat jobs =
    let dst = Filename.temp_file "kondo_par_dst" ".kh5" in
    let config = Config.with_jobs (small_config 5) jobs in
    ignore (Pipeline.debloat_file_many ~config programs ~src ~dst);
    let b = bytes_of dst in
    Sys.remove dst;
    b
  in
  let b1 = debloat 1 and b4 = debloat 4 in
  Sys.remove src;
  Alcotest.(check bool) "debloated files byte-identical" true (String.equal b1 b4)

let suite =
  ( "parallel",
    [ Alcotest.test_case "map_reduce sums across jobs counts" `Quick test_map_reduce_sum;
      Alcotest.test_case "reduce runs in index order" `Quick test_reduce_in_index_order;
      Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
      Alcotest.test_case "empty and singleton inputs" `Quick test_empty_and_singleton;
      Alcotest.test_case "leftmost exception propagates" `Quick test_exception_propagation;
      Alcotest.test_case "jobs < 1 rejected, huge jobs clamped" `Quick test_invalid_jobs;
      Alcotest.test_case "nested parallel use rejected" `Quick test_nested_use_rejected;
      Alcotest.test_case "jobs=1 fallback permits nesting" `Quick test_sequential_nesting_allowed;
      Alcotest.test_case "Rng.split_at == i-th split" `Quick test_split_at_matches_split;
      QCheck_alcotest.to_alcotest (test_campaign_parity ());
      Alcotest.test_case "campaign resume parity across jobs" `Quick test_campaign_resume_parity;
      QCheck_alcotest.to_alcotest (test_carve_parity ());
      Alcotest.test_case "debloat_file_many byte-identical across jobs" `Quick
        test_debloat_file_many_parity ] )
