(* Tests for the content-addressed block store subsystem: chunking,
   protocol roundtrips, crash-safe persistence, the byte-budgeted
   single-flight cache, the serve/fetch client, and the runtime
   integration. *)

open Kondo_store
open Kondo_faults
open Kondo_container
open Kondo_workload

let bytes_of_seed seed len =
  Bytes.init len (fun i -> Char.chr ((seed * 131 + i * 31 + (i * i mod 97)) land 0xFF))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

(* ---- Chunk ---- *)

let test_chunk_split_tiles () =
  let blob = bytes_of_seed 3 1000 in
  let tiles = Chunk.split ~chunk_size:64 blob in
  Alcotest.(check int) "tile count" 16 (List.length tiles);
  let rebuilt = Buffer.create 1000 in
  List.iter (fun (_, payload) -> Buffer.add_bytes rebuilt payload) tiles;
  Alcotest.(check string) "tiles concatenate to the blob" (Bytes.to_string blob)
    (Buffer.contents rebuilt);
  let m = Chunk.manifest_of_bytes ~chunk_size:64 ~name:"b" blob in
  Alcotest.(check int) "chunk count" 16 (Chunk.chunk_count m);
  List.iter
    (fun (i, payload) ->
      Alcotest.(check bool) "payload verifies" true (Chunk.verify m i payload);
      Alcotest.(check bool) "wrong payload rejected" false
        (Chunk.verify m i (Bytes.cat payload (Bytes.make 1 'x'))))
    tiles

let test_chunk_manifest_roundtrip () =
  let blob = bytes_of_seed 9 777 in
  let m = Chunk.manifest_of_bytes ~chunk_size:100 ~name:"data#x" blob in
  (match Chunk.decode (Chunk.encode m) with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok m' ->
    Alcotest.(check string) "name" m.Chunk.name m'.Chunk.name;
    Alcotest.(check int) "total_len" m.Chunk.total_len m'.Chunk.total_len;
    Alcotest.(check bool) "ids" true (m.Chunk.ids = m'.Chunk.ids);
    Alcotest.(check int64) "root" m.Chunk.root m'.Chunk.root);
  (* a tampered root must be rejected *)
  let bad = { m with Chunk.root = Int64.add m.Chunk.root 1L } in
  match Chunk.decode (Chunk.encode bad) with
  | Ok _ -> Alcotest.fail "tampered root accepted"
  | Error _ -> ()

let qcheck_chunk_offsets =
  QCheck.Test.make ~name:"chunk_of_offset and chunk_span agree on every offset" ~count:100
    QCheck.(pair (int_range 1 500) (int_range 1 64))
    (fun (len, chunk_size) ->
      let blob = bytes_of_seed len len in
      let m = Chunk.manifest_of_bytes ~chunk_size ~name:"q" blob in
      let ok = ref true in
      for off = 0 to len - 1 do
        let i = Chunk.chunk_of_offset m off in
        let coff, clen = Chunk.chunk_span m i in
        if not (coff <= off && off < coff + clen) then ok := false
      done;
      !ok && Chunk.chunk_count m = (len + chunk_size - 1) / chunk_size)

(* ---- Proto ---- *)

let test_proto_request_roundtrip () =
  let reqs =
    [ Proto.Get 42L;
      Proto.Put (7L, "payload");
      Proto.Stat;
      Proto.Batch [ 1L; 2L; 3L ];
      Proto.Manifest_req "file#ds" ]
  in
  List.iter
    (fun req ->
      match Proto.decode_request (Proto.encode_request req) with
      | Ok req' -> Alcotest.(check bool) "request roundtrips" true (req = req')
      | Error e -> Alcotest.fail ("decode failed: " ^ e))
    reqs;
  (* truncation must be detected, not crash *)
  let enc = Proto.encode_request (Proto.Put (7L, "payload")) in
  match Proto.decode_request (String.sub enc 0 (String.length enc - 1)) with
  | Ok _ -> Alcotest.fail "truncated request accepted"
  | Error _ -> ()

let test_proto_response_roundtrip () =
  let m = Chunk.manifest_of_bytes ~chunk_size:16 ~name:"r" (bytes_of_seed 1 50) in
  let resps =
    [ Proto.Blob "chunk bytes";
      Proto.Not_found 9L;
      Proto.Stored true;
      Proto.Stored false;
      Proto.Stats
        { Proto.chunks = 1; store_bytes = 2; manifests = 3; cache_hits = 4;
          cache_misses = 5; cache_evictions = 6; cache_coalesced = 7; cache_bytes = 8 };
      Proto.Blobs [ (1L, Some "a"); (2L, None) ];
      Proto.Manifest_resp m;
      Proto.Err "boom" ]
  in
  List.iter
    (fun resp ->
      match Proto.decode_response (Proto.encode_response resp) with
      | Ok resp' -> Alcotest.(check bool) "response roundtrips" true (resp = resp')
      | Error e -> Alcotest.fail ("decode failed: " ^ e))
    resps

(* ---- Block_store ---- *)

let test_block_store_basics () =
  let bs = Block_store.create () in
  let c1 = bytes_of_seed 1 40 and c2 = bytes_of_seed 2 60 in
  let id1 = Chunk.digest c1 and id2 = Chunk.digest c2 in
  Alcotest.(check bool) "first put is new" true (Block_store.put bs id1 c1);
  Alcotest.(check bool) "second put dedups" false (Block_store.put bs id1 c1);
  Alcotest.(check bool) "other chunk is new" true (Block_store.put bs id2 c2);
  Alcotest.(check int) "count" 2 (Block_store.count bs);
  Alcotest.(check int) "stored bytes" 100 (Block_store.stored_bytes bs);
  Alcotest.(check bool) "get returns content" true (Block_store.get bs id1 = Some c1);
  Alcotest.(check bool) "hashes sorted" true
    (let hs = Block_store.hashes bs in
     hs = List.sort Int64.compare hs && List.length hs = 2);
  Alcotest.(check int) "remove reclaims" 40 (Block_store.remove bs id1);
  Alcotest.(check bool) "removed chunk gone" true (Block_store.get bs id1 = None);
  Block_store.close bs

let test_block_store_persistence () =
  let path = Filename.temp_file "kondo_bs" ".dat" in
  let bs = Block_store.create ~path () in
  let chunks = List.init 5 (fun i -> bytes_of_seed (i + 10) (20 + (7 * i))) in
  List.iter (fun c -> ignore (Block_store.put bs (Chunk.digest c) c)) chunks;
  Block_store.close bs;
  let bs2 = Block_store.create ~path () in
  let salvaged, intact = Block_store.load_report bs2 in
  Alcotest.(check int) "all chunks reloaded" 5 salvaged;
  Alcotest.(check bool) "file intact" true intact;
  List.iter
    (fun c ->
      Alcotest.(check bool) "content survives restart" true
        (Block_store.get bs2 (Chunk.digest c) = Some c))
    chunks;
  Block_store.close bs2;
  Sys.remove path

(* Truncate the backing file at every byte: every prefix must salvage
   cleanly into some valid chunk prefix, and appending after a salvage
   must produce a loadable file again. *)
let test_block_store_salvage_every_truncation () =
  let path = Filename.temp_file "kondo_bs" ".dat" in
  let bs = Block_store.create ~path () in
  let chunks = [ bytes_of_seed 1 5; bytes_of_seed 2 7; bytes_of_seed 3 9 ] in
  List.iter (fun c -> ignore (Block_store.put bs (Chunk.digest c) c)) chunks;
  Block_store.close bs;
  let ic = open_in_bin path in
  let full = Bytes.create (in_channel_length ic) in
  really_input ic full 0 (Bytes.length full);
  close_in ic;
  (* frame layout: [Frame header][u64 id][chunk]; a cut is clean exactly
     on a frame boundary *)
  let boundaries =
    List.rev
      (snd
         (List.fold_left
            (fun (off, acc) c ->
              let off = off + Frame.header_len + 8 + Bytes.length c in
              (off, off :: acc))
            (0, []) chunks))
  in
  Alcotest.(check int) "boundaries reach the file end" (Bytes.length full)
    (List.nth boundaries 2);
  let torn = Filename.temp_file "kondo_bs_torn" ".dat" in
  for cut = 0 to Bytes.length full do
    let oc = open_out_bin torn in
    output_bytes oc (Bytes.sub full 0 cut);
    close_out oc;
    let bs = Block_store.create ~path:torn () in
    let salvaged, intact = Block_store.load_report bs in
    Alcotest.(check int)
      (Printf.sprintf "salvage at cut %d is the longest valid prefix" cut)
      (List.length (List.filter (fun b -> b <= cut) boundaries))
      salvaged;
    Alcotest.(check bool)
      (Printf.sprintf "intact flag at cut %d" cut)
      (cut = 0 || List.mem cut boundaries)
      intact;
    (* every salvaged chunk must carry its exact content *)
    List.iteri
      (fun i c ->
        if i < salvaged then
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d verifies after cut %d" i cut)
            true
            (Block_store.get bs (Chunk.digest c) = Some c))
      chunks;
    (* the store must accept appends after truncating the torn tail *)
    let extra = bytes_of_seed (100 + cut) 11 in
    ignore (Block_store.put bs (Chunk.digest extra) extra);
    Block_store.close bs;
    let bs2 = Block_store.create ~path:torn () in
    let salvaged2, intact2 = Block_store.load_report bs2 in
    Alcotest.(check int)
      (Printf.sprintf "append after cut %d persists" cut)
      (salvaged + 1) salvaged2;
    Alcotest.(check bool) "appended file intact" true intact2;
    Block_store.close bs2
  done;
  Sys.remove torn;
  Sys.remove path

let test_block_store_compact () =
  let path = Filename.temp_file "kondo_bs" ".dat" in
  let bs = Block_store.create ~path () in
  let keep = bytes_of_seed 1 50 and drop = bytes_of_seed 2 70 in
  ignore (Block_store.put bs (Chunk.digest keep) keep);
  ignore (Block_store.put bs (Chunk.digest drop) drop);
  ignore (Block_store.remove bs (Chunk.digest drop));
  let size_before = (Unix.stat path).Unix.st_size in
  Block_store.compact bs;
  let size_after = (Unix.stat path).Unix.st_size in
  Alcotest.(check bool) "compaction shrinks the file" true (size_after < size_before);
  Alcotest.(check bool) "live chunk survives compaction" true
    (Block_store.get bs (Chunk.digest keep) = Some keep);
  Block_store.close bs;
  let bs2 = Block_store.create ~path () in
  Alcotest.(check bool) "compacted file reloads" true
    (Block_store.get bs2 (Chunk.digest keep) = Some keep);
  Block_store.close bs2;
  Sys.remove path

(* ---- Cache ---- *)

let qcheck_cache_budget =
  QCheck.Test.make ~name:"cache never exceeds its byte budget" ~count:100
    QCheck.(triple (int_range 0 2000) (int_range 1 16) (list_of_size Gen.(0 -- 60) (int_range 0 200)))
    (fun (budget, shards, sizes) ->
      let cache = Cache.create ~shards ~budget_bytes:budget () in
      List.iteri (fun i len -> Cache.put cache (Int64.of_int i) (bytes_of_seed i len)) sizes;
      let s = Cache.stats cache in
      s.Cache.current_bytes <= budget && Cache.budget cache = budget)

let qcheck_cache_bookkeeping =
  QCheck.Test.make ~name:"hit/miss/eviction bookkeeping balances" ~count:100
    QCheck.(pair (int_range 0 1000) (list_of_size Gen.(0 -- 60) (int_range 0 120)))
    (fun (budget, sizes) ->
      let cache = Cache.create ~shards:4 ~budget_bytes:budget () in
      (* unique keys: every put is either an insertion or a rejection *)
      List.iteri (fun i len -> Cache.put cache (Int64.of_int i) (bytes_of_seed i len)) sizes;
      List.iteri (fun i _ -> ignore (Cache.get cache (Int64.of_int i))) sizes;
      let s = Cache.stats cache in
      s.Cache.insertions + s.Cache.rejections = List.length sizes
      && s.Cache.entries = s.Cache.insertions - s.Cache.evictions
      && s.Cache.hits + s.Cache.misses = List.length sizes
      && s.Cache.hits = s.Cache.entries (* live entries hit, evicted/rejected ones miss *)
      && s.Cache.current_bytes <= budget)

let test_cache_coalesces_concurrent_gets () =
  let cache = Cache.create ~shards:2 ~budget_bytes:(1024 * 1024) () in
  let payload = bytes_of_seed 7 100 in
  let id = Chunk.digest payload in
  let upstream_calls = Atomic.make 0 in
  let fetch () =
    Atomic.incr upstream_calls;
    Unix.sleepf 0.03;
    Ok (Bytes.copy payload)
  in
  let domains =
    Array.init 4 (fun _ -> Domain.spawn (fun () -> Cache.get_or_fetch cache id ~fetch))
  in
  let results = Array.map Domain.join domains in
  Array.iter
    (function
      | Ok b -> Alcotest.(check bool) "identical bytes" true (b = payload)
      | Error e -> Alcotest.fail ("coalesced get failed: " ^ Fault.to_string e))
    results;
  Alcotest.(check int) "exactly one upstream fetch" 1 (Atomic.get upstream_calls);
  let s = Cache.stats cache in
  Alcotest.(check int) "one single-flight" 1 s.Cache.single_flights;
  Alcotest.(check int) "every other caller coalesced or hit" 3
    (s.Cache.coalesced + s.Cache.hits)

let test_cache_never_caches_errors () =
  let cache = Cache.create ~budget_bytes:4096 () in
  let failing () = Error (Fault.Transient "upstream down") in
  (match Cache.get_or_fetch cache 5L ~fetch:failing with
  | Ok _ -> Alcotest.fail "error fetch returned Ok"
  | Error _ -> ());
  Alcotest.(check bool) "error not cached" true (Cache.get cache 5L = None);
  (match Cache.get_or_fetch cache 5L ~fetch:(fun () -> Ok (Bytes.of_string "good")) with
  | Ok b -> Alcotest.(check string) "later fetch serves" "good" (Bytes.to_string b)
  | Error e -> Alcotest.fail (Fault.to_string e));
  let s = Cache.stats cache in
  Alcotest.(check int) "both fetches ran upstream" 2 s.Cache.single_flights

(* ---- Server + Client over loopback ---- *)

let loopback_pair ?(jobs = 1) ?(cache_bytes = 1024 * 1024) () =
  let server = Server.create ~cache_bytes ~jobs ~store:(Block_store.create ()) () in
  (server, Transport.loopback ~handle:(Server.handle server))

let test_client_reads_blob () =
  let server, conn = loopback_pair () in
  let blob = bytes_of_seed 11 5000 in
  let m = Server.add_blob server ~chunk_size:256 ~name:"blob" blob in
  let client = Client.connect conn in
  (match Client.manifest client ~name:"blob" with
  | Error e -> Alcotest.fail (Fault.to_string e)
  | Ok m' -> Alcotest.(check int64) "manifest root" m.Chunk.root m'.Chunk.root);
  (* whole blob, and an unaligned interior slice *)
  (match Client.read_bytes client m ~offset:0 ~length:5000 with
  | Ok b -> Alcotest.(check bool) "whole blob matches" true (b = blob)
  | Error e -> Alcotest.fail (Fault.to_string e));
  (match Client.read_bytes client m ~offset:777 ~length:1001 with
  | Ok b ->
    Alcotest.(check bool) "interior slice matches" true (b = Bytes.sub blob 777 1001)
  | Error e -> Alcotest.fail (Fault.to_string e));
  Client.close client

let test_client_batch_parallel_server () =
  let blob = bytes_of_seed 21 8192 in
  let read_all jobs =
    let server, conn = loopback_pair ~jobs () in
    let m = Server.add_blob server ~chunk_size:128 ~name:"blob" blob in
    let client = Client.connect conn in
    match Client.read_bytes client m ~offset:0 ~length:8192 with
    | Ok b -> b
    | Error e -> Alcotest.fail (Fault.to_string e)
  in
  Alcotest.(check bool) "jobs=1 and jobs=4 serve identical bytes" true
    (read_all 1 = read_all 4 && read_all 4 = blob)

let test_client_cache_and_server_cache_hits () =
  let server, conn = loopback_pair () in
  let blob = bytes_of_seed 31 2048 in
  let m = Server.add_blob server ~chunk_size:64 ~name:"blob" blob in
  let client = Client.connect ~cache:(Cache.create ~budget_bytes:65536 ()) conn in
  (match Client.read_bytes client m ~offset:0 ~length:2048 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Fault.to_string e));
  let first_gets = (Client.stats client).Client.range_gets in
  Alcotest.(check bool) "first read fetched" true (first_gets > 0);
  (match Client.read_bytes client m ~offset:0 ~length:2048 with
  | Ok b -> Alcotest.(check bool) "second read identical" true (b = blob)
  | Error e -> Alcotest.fail (Fault.to_string e));
  Alcotest.(check int) "second read fully client-cached" first_gets
    (Client.stats client).Client.range_gets;
  Alcotest.(check bool) "client cache hits counted" true
    ((Client.stats client).Client.cache_hits > 0);
  (* a second, cache-less client hits the server-side cache instead *)
  let client2 = Client.connect (Transport.loopback ~handle:(Server.handle server)) in
  (match Client.read_bytes client2 m ~offset:0 ~length:2048 with
  | Ok b -> Alcotest.(check bool) "server-cached bytes identical" true (b = blob)
  | Error e -> Alcotest.fail (Fault.to_string e));
  Alcotest.(check bool) "server cache hits counted" true
    ((Cache.stats (Server.cache server)).Cache.hits > 0)

(* Satellite: a digest mismatch on a fetched chunk must be counted as a
   corrupt fetch and must travel the retry path — the client never
   returns corrupt bytes as a success. *)
let test_client_corrupt_chunk_retried () =
  let server, _ = loopback_pair () in
  let blob = bytes_of_seed 41 512 in
  let m = Server.add_blob server ~chunk_size:64 ~name:"blob" blob in
  (* mangle the first BATCH response: flip the last payload byte, which
     decodes fine but fails digest verification *)
  let mangled = ref false in
  let handle body =
    let resp = Server.handle server body in
    if (not !mangled) && String.length resp > 0 && resp.[0] = 'B' then begin
      mangled := true;
      let b = Bytes.of_string resp in
      let last = Bytes.length b - 1 in
      Bytes.set_uint8 b last (Bytes.get_uint8 b last lxor 0xFF);
      Bytes.unsafe_to_string b
    end
    else resp
  in
  let client = Client.connect (Transport.loopback ~handle) in
  (match Client.read_bytes client m ~offset:0 ~length:512 with
  | Ok b -> Alcotest.(check bool) "bytes correct after retry" true (b = blob)
  | Error e -> Alcotest.fail (Fault.to_string e));
  let s = Client.stats client in
  Alcotest.(check int) "digest mismatch counted corrupt" 1 s.Client.corrupt_fetches;
  Alcotest.(check bool) "went through the retry path" true (s.Client.retries >= 1);
  Alcotest.(check bool) "mangler fired" true !mangled

let test_client_corrupt_fault_plan_retried () =
  let server, _ = loopback_pair () in
  let blob = bytes_of_seed 51 256 in
  let m = Server.add_blob server ~chunk_size:64 ~name:"blob" blob in
  let plan =
    match Fault_plan.of_string "seed=5,corrupt=0.5" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let retry = { Retry.default with Retry.max_attempts = 10; deadline_ms = 1e9 } in
  let client =
    Client.connect ~retry ~faults:plan (Transport.loopback ~handle:(Server.handle server))
  in
  (* no client cache, so every read refetches: enough rounds that the
     deterministic plan corrupts at least one of them *)
  let ok_reads = ref 0 in
  for _ = 1 to 10 do
    match Client.read_bytes client m ~offset:0 ~length:256 with
    | Ok b -> if b = blob then incr ok_reads
    | Error _ -> ()
  done;
  Alcotest.(check bool) "reads succeed under corruption" true (!ok_reads > 0);
  Alcotest.(check bool) "injected corruption forced retries" true
    ((Client.stats client).Client.retries > 0)

let test_server_put_and_stat () =
  let _, conn = loopback_pair () in
  let client = Client.connect conn in
  let payload = bytes_of_seed 61 90 in
  (match Client.put client payload with
  | Ok (id, fresh) ->
    Alcotest.(check int64) "content-addressed id" (Chunk.digest payload) id;
    Alcotest.(check bool) "first put fresh" true fresh
  | Error e -> Alcotest.fail (Fault.to_string e));
  (match Client.put client payload with
  | Ok (_, fresh) -> Alcotest.(check bool) "second put dedups" false fresh
  | Error e -> Alcotest.fail (Fault.to_string e));
  match Client.stat client with
  | Ok i ->
    Alcotest.(check int) "one chunk stored" 1 i.Proto.chunks;
    Alcotest.(check int) "stored bytes" 90 i.Proto.store_bytes
  | Error e -> Alcotest.fail (Fault.to_string e)

(* ---- Runtime over the store ---- *)

let build_hollow_image ?(n = 16) () =
  let p = Stencils.ldc2d ~n () in
  let src = Filename.temp_file "kondo_store_src" ".kh5" in
  Datafile.write_for ~path:src p;
  let spec =
    { Spec.empty with
      Spec.base = "scratch";
      data_deps = [ { Spec.src; dst = "/data" } ];
      param_space = p.Program.param_space }
  in
  let fetch path =
    let ic = open_in_bin path in
    let b = Bytes.create (in_channel_length ic) in
    really_input ic b 0 (Bytes.length b);
    close_in ic;
    b
  in
  let img = Image.build spec ~fetch in
  let tmp_deb = Filename.temp_file "kondo_store_deb" ".kh5" in
  let f = Kondo_h5.File.open_file src in
  Kondo_h5.Writer.write_debloated tmp_deb ~source:f
    ~keep:(fun _ -> Kondo_interval.Interval_set.empty);
  Kondo_h5.File.close f;
  let img = Image.replace_data img ~dst:"/data" (fetch tmp_deb) in
  Sys.remove tmp_deb;
  (p, src, img)

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let store_source_for client ~socket =
  let manifests = Hashtbl.create 4 in
  let manifest_for dataset =
    match Hashtbl.find_opt manifests dataset with
    | Some m -> Ok m
    | None -> (
      match Client.manifest client ~name:("#" ^ dataset) with
      | Ok m ->
        Hashtbl.add manifests dataset m;
        Ok m
      | Error _ as e -> e)
  in
  { Runtime.source_name = socket;
    store_fetch =
      (fun ~dst:_ ~dataset ~offset ~length ->
        match manifest_for dataset with
        | Error e -> Error e
        | Ok m -> Client.read_bytes client m ~offset ~length) }

let test_runtime_reads_through_store () =
  let p, src, img = build_hollow_image () in
  let server, conn = loopback_pair () in
  ignore (Server.add_kh5 server ~chunk_size:128 ~name:(Filename.basename src) src);
  let client = Client.connect ~cache:(Cache.create ~budget_bytes:65536 ()) conn in
  let store = store_source_for client ~socket:"loopback" in
  let rt = Runtime.boot ~store ~image:img ~dir:(fresh_dir "kondo_rts") () in
  for i = 0 to 15 do
    for j = 0 to 15 do
      let v = Runtime.read_element rt ~dst:"/data" ~dataset:p.Program.dataset [| i; j |] in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "element (%d,%d) served from the store" i j)
        (Datafile.fill [| i; j |])
        v
    done
  done;
  let s = Runtime.stats rt in
  Alcotest.(check int) "every read missed locally" 256 s.Runtime.misses;
  Alcotest.(check int) "every miss store-served" 256 s.Runtime.store_fetches;
  Alcotest.(check bool) "store bytes accounted" true (s.Runtime.store_bytes > 0);
  Alcotest.(check int) "no fallbacks" 0 s.Runtime.store_fallbacks;
  Alcotest.(check int) "file remote path unused" 0 s.Runtime.remote_fetches;
  Runtime.shutdown rt;
  Client.close client;
  Sys.remove src

let test_runtime_store_failure_falls_back_to_file () =
  let p, src, img = build_hollow_image () in
  let broken =
    { Runtime.source_name = "broken";
      store_fetch = (fun ~dst:_ ~dataset:_ ~offset:_ ~length:_ -> Error (Fault.Transient "down")) }
  in
  (* with the file fallback: served, and the fallback is accounted *)
  let rt =
    Runtime.boot ~remote:true ~store:broken ~image:img ~dir:(fresh_dir "kondo_rtf") ()
  in
  let v = Runtime.read_element rt ~dst:"/data" ~dataset:p.Program.dataset [| 2; 3 |] in
  Alcotest.(check (float 1e-9)) "file fallback value" (Datafile.fill [| 2; 3 |]) v;
  let s = Runtime.stats rt in
  Alcotest.(check int) "fallback counted" 1 s.Runtime.store_fallbacks;
  Alcotest.(check int) "served by the file path" 1 s.Runtime.remote_fetches;
  Alcotest.(check int) "not by the store" 0 s.Runtime.store_fetches;
  Runtime.shutdown rt;
  (* without the file fallback: a structured degrade, not a crash *)
  let rt = Runtime.boot ~store:broken ~image:img ~dir:(fresh_dir "kondo_rtg") () in
  (match Runtime.try_read_element rt ~dst:"/data" ~dataset:p.Program.dataset [| 2; 3 |] with
  | Error (Runtime.Degraded _) -> ()
  | Ok _ -> Alcotest.fail "read served with no working source"
  | Error exn -> Alcotest.fail ("unexpected error: " ^ Printexc.to_string exn));
  Alcotest.(check int) "degrade accounted" 1 (Runtime.stats rt).Runtime.degraded_reads;
  Runtime.shutdown rt;
  Sys.remove src

let test_runtime_stats_rendering () =
  let _, src, img = build_hollow_image () in
  let rt = Runtime.boot ~image:img ~dir:(fresh_dir "kondo_rtj") () in
  let s = Runtime.stats rt in
  let text = Format.asprintf "%a" Runtime.pp_stats s in
  List.iter
    (fun key -> Alcotest.(check bool) (key ^ " in pp_stats") true (contains text key))
    [ "reads"; "store_fetches"; "remote_fetches"; "corrupt_fetches" ];
  let json = Runtime.stats_to_json ~extra:[ ("client_cache_hits", 3) ] s in
  Alcotest.(check bool) "json has stats fields" true
    (String.length json > 0
    && json.[0] = '{'
    && json.[String.length json - 1] = '}');
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " in json") true (contains json needle))
    [ "\"store_fallbacks\": 0"; "\"client_cache_hits\": 3" ];
  Runtime.shutdown rt;
  Sys.remove src

(* ---- Registry through the block store ---- *)

let test_registry_over_block_store () =
  let _, src, img = build_hollow_image () in
  let mem = Registry.create () in
  let bs = Block_store.create () in
  let reg = Registry.create ~backend:(Block_store.registry_backend bs) () in
  let pushed_mem = Registry.push mem ~name:"img" img in
  let pushed_bs = Registry.push reg ~name:"img" img in
  Alcotest.(check int) "push size matches memory backend" pushed_mem pushed_bs;
  Alcotest.(check int) "chunk count matches" (Registry.chunk_count mem)
    (Registry.chunk_count reg);
  Alcotest.(check int) "stored bytes match" (Registry.stored_bytes mem)
    (Registry.stored_bytes reg);
  Alcotest.(check int) "registry chunks live in the block store"
    (Registry.chunk_count reg) (Block_store.count bs);
  let img_mem, xfer_mem = Registry.pull mem ~name:"img" ~have:Merkle.HashSet.empty in
  let img_bs, xfer_bs = Registry.pull reg ~name:"img" ~have:Merkle.HashSet.empty in
  Alcotest.(check int) "pull transfer matches" xfer_mem xfer_bs;
  Alcotest.(check bool) "pulled data identical" true
    (Image.data_content img_mem ~dst:"/data" = Image.data_content img_bs ~dst:"/data");
  Alcotest.(check bool) "pulled data matches the image" true
    (Image.data_content img_bs ~dst:"/data" = Image.data_content img ~dst:"/data");
  Sys.remove src

(* ---- Unix-domain socket transport ---- *)

let test_unix_socket_serving () =
  let dir = fresh_dir "kondo_sock" in
  let socket = Filename.concat dir "store.sock" in
  let server, _ = loopback_pair () in
  let blob = bytes_of_seed 71 3000 in
  let m = Server.add_blob server ~chunk_size:100 ~name:"blob" blob in
  let stop = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Server.serve_unix server ~socket ~stop:(fun () -> Atomic.get stop) ())
  in
  let deadline = 100 in
  let rec wait_socket n =
    if Sys.file_exists socket then ()
    else if n = 0 then Alcotest.fail "socket never appeared"
    else begin
      Unix.sleepf 0.05;
      wait_socket (n - 1)
    end
  in
  wait_socket deadline;
  let client = Client.connect (Transport.unix_connect socket) in
  (match Client.manifest client ~name:"" with
  | Ok m' -> Alcotest.(check int64) "manifest over the socket" m.Chunk.root m'.Chunk.root
  | Error e -> Alcotest.fail (Fault.to_string e));
  (match Client.read_bytes client m ~offset:123 ~length:1717 with
  | Ok b ->
    Alcotest.(check bool) "socket-served slice matches" true (b = Bytes.sub blob 123 1717)
  | Error e -> Alcotest.fail (Fault.to_string e));
  Client.close client;
  (* stop the accept loop: flip the flag, then wake it with a connection *)
  Atomic.set stop true;
  (try
     let wake = Transport.unix_connect socket in
     wake.Transport.close ()
   with Unix.Unix_error _ -> ());
  Domain.join srv

let suite =
  ( "store",
    [ Alcotest.test_case "chunk split tiles and verifies" `Quick test_chunk_split_tiles;
      Alcotest.test_case "chunk manifest roundtrips" `Quick test_chunk_manifest_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_chunk_offsets;
      Alcotest.test_case "proto request roundtrips" `Quick test_proto_request_roundtrip;
      Alcotest.test_case "proto response roundtrips" `Quick test_proto_response_roundtrip;
      Alcotest.test_case "block store basics" `Quick test_block_store_basics;
      Alcotest.test_case "block store persists across restarts" `Quick
        test_block_store_persistence;
      Alcotest.test_case "block store salvages every truncation" `Quick
        test_block_store_salvage_every_truncation;
      Alcotest.test_case "block store compaction" `Quick test_block_store_compact;
      QCheck_alcotest.to_alcotest qcheck_cache_budget;
      QCheck_alcotest.to_alcotest qcheck_cache_bookkeeping;
      Alcotest.test_case "cache coalesces concurrent gets" `Quick
        test_cache_coalesces_concurrent_gets;
      Alcotest.test_case "cache never caches errors" `Quick test_cache_never_caches_errors;
      Alcotest.test_case "client reads blobs over loopback" `Quick test_client_reads_blob;
      Alcotest.test_case "batch fan-out is jobs-invariant" `Quick
        test_client_batch_parallel_server;
      Alcotest.test_case "client and server caches hit" `Quick
        test_client_cache_and_server_cache_hits;
      Alcotest.test_case "corrupt chunk counted and retried" `Quick
        test_client_corrupt_chunk_retried;
      Alcotest.test_case "corrupt fault plan retried" `Quick
        test_client_corrupt_fault_plan_retried;
      Alcotest.test_case "put and stat" `Quick test_server_put_and_stat;
      Alcotest.test_case "runtime reads through the store" `Quick
        test_runtime_reads_through_store;
      Alcotest.test_case "store failure falls back to the file" `Quick
        test_runtime_store_failure_falls_back_to_file;
      Alcotest.test_case "runtime stats render" `Quick test_runtime_stats_rendering;
      Alcotest.test_case "registry over the block store" `Quick
        test_registry_over_block_store;
      Alcotest.test_case "unix socket serving" `Quick test_unix_socket_serving ] )
